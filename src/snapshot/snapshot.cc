#include "snapshot/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstring>
#include <fstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/binio.h"
#include "util/faultinject.h"

namespace sublet::snapshot {

static_assert(std::endian::native == std::endian::little,
              "snapshot bulk sections are raw little-endian arenas");

// ------------------------------------------------------------------ Buffer --

Buffer::Buffer(std::vector<std::uint8_t> bytes) : owned_(std::move(bytes)) {}

Buffer::Buffer(Buffer&& other) noexcept
    : owned_(std::move(other.owned_)),
      map_(std::exchange(other.map_, nullptr)),
      map_len_(std::exchange(other.map_len_, 0)) {}

Buffer& Buffer::operator=(Buffer&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, map_len_);
    owned_ = std::move(other.owned_);
    map_ = std::exchange(other.map_, nullptr);
    map_len_ = std::exchange(other.map_len_, 0);
  }
  return *this;
}

Buffer::~Buffer() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
}

std::span<const std::uint8_t> Buffer::bytes() const {
  if (map_ != nullptr) {
    return {static_cast<const std::uint8_t*>(map_), map_len_};
  }
  return owned_;
}

Expected<Buffer> Buffer::read_file(const std::string& path) {
  int injected = 0;
  if (fault::inject("snapshot.read", &injected)) {
    return fail_code("cannot read " + path + ": " + strerror(injected),
                     injected);
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return fail("cannot open " + path);
  auto size = static_cast<std::size_t>(in.tellg());
  std::vector<std::uint8_t> bytes(size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (!in) return fail("short read from " + path);
  return Buffer(std::move(bytes));
}

Expected<Buffer> Buffer::map_file(const std::string& path) {
  int injected = 0;
  if (fault::inject("snapshot.mmap", &injected)) {
    return fail_code("cannot map " + path + ": " + strerror(injected),
                     injected);
  }
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return fail("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return fail("cannot stat " + path);
  }
  auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return fail(path + " is empty");
  }
  void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) return fail("mmap failed for " + path);
  Buffer buffer;
  buffer.map_ = p;
  buffer.map_len_ = size;
  return buffer;
}

// ---------------------------------------------------------------- Snapshot --

namespace {

struct SectionView {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  bool present = false;
};

}  // namespace

namespace {

struct LoadMetrics {
  obs::Counter& loads;
  obs::Counter& load_failures;
};

LoadMetrics& load_metrics() {
  static LoadMetrics metrics{
      obs::MetricsRegistry::global().counter(
          "sublet_snapshot_loads_total", "Snapshot files opened and parsed"),
      obs::MetricsRegistry::global().counter(
          "sublet_snapshot_load_failures_total",
          "Snapshot opens rejected (I/O error, corruption, bad header)")};
  return metrics;
}

const bool g_load_metrics_registered = (load_metrics(), true);

}  // namespace

Expected<Snapshot> Snapshot::open(const std::string& path, Mode mode) {
  obs::ScopedSpan span("snapshot.load");
  auto buffer = mode == Mode::kMap ? Buffer::map_file(path)
                                   : Buffer::read_file(path);
  if (!buffer) {
    load_metrics().load_failures.add(1);
    return buffer.error();
  }
  auto snap = parse(std::move(*buffer));
  if (!snap) {
    load_metrics().load_failures.add(1);
    Error error = snap.error();
    error.source = path;
    return error;
  }
  load_metrics().loads.add(1);
  span.add_bytes(snap->file_bytes());
  span.add_records(snap->record_count());
  return snap;
}

Expected<Snapshot> Snapshot::from_bytes(std::vector<std::uint8_t> bytes) {
  return parse(Buffer(std::move(bytes)));
}

Snapshot Snapshot::from_parts(OwnedParts parts) {
  Snapshot snap;
  snap.version_ = kVersion;
  snap.parts_ = std::make_unique<OwnedParts>(std::move(parts));
  const OwnedParts& p = *snap.parts_;
  snap.records_ = {p.rows.data(), p.rows.size()};
  snap.string_blob_ = {p.string_blob.data(), p.string_blob.size()};
  snap.string_offsets_ = {p.string_offsets.data(), p.string_offsets.size()};
  snap.asn_pool_ = {p.asn_pool.data(), p.asn_pool.size()};
  snap.handle_pool_ = {p.handle_pool.data(), p.handle_pool.size()};
  return snap;
}

std::size_t Snapshot::file_bytes() const {
  if (parts_ == nullptr) return buffer_.bytes().size();
  return parts_->rows.size() * sizeof(RecordRow) +
         parts_->string_blob.size() +
         (parts_->string_offsets.size() + parts_->asn_pool.size() +
          parts_->handle_pool.size()) *
             sizeof(std::uint32_t);
}

Expected<Snapshot> Snapshot::parse(Buffer buffer) {
  const std::span<const std::uint8_t> file = buffer.bytes();
  if (file.size() < kHeaderSize) return fail("truncated snapshot header");
  ByteReader header(file.subspan(0, kHeaderSize));
  if (std::memcmp(header.bytes(sizeof(kMagic)).data(), kMagic,
                  sizeof(kMagic)) != 0) {
    return fail("bad snapshot magic");
  }
  const std::uint16_t version = header.u16();
  if (version != kVersion) {
    return fail("unsupported snapshot version " + std::to_string(version));
  }
  const std::uint16_t flags = header.u16();
  if ((flags & kFlagLittleEndian) == 0) {
    return fail("snapshot is not little-endian");
  }
  const std::uint32_t section_count = header.u32();
  const std::uint64_t payload_size = header.u64();
  const std::uint32_t expect_crc = header.u32();
  if (section_count != kSectionCount) {
    return fail("unexpected section count " + std::to_string(section_count));
  }
  const std::uint64_t table_bytes =
      std::uint64_t{section_count} * kSectionEntrySize;
  if (file.size() - kHeaderSize < table_bytes ||
      file.size() - kHeaderSize - table_bytes != payload_size) {
    return fail("snapshot payload size does not match the file");
  }
  const std::span<const std::uint8_t> rest = file.subspan(kHeaderSize);
  if (crc32(rest) != expect_crc) return fail("snapshot checksum mismatch");

  const std::span<const std::uint8_t> payload =
      rest.subspan(static_cast<std::size_t>(table_bytes));
  ByteReader table(rest.subspan(0, static_cast<std::size_t>(table_bytes)));
  SectionView sections[kSectionCount + 1];
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint32_t id = table.u32();
    table.u32();  // reserved
    const std::uint64_t offset = table.u64();
    const std::uint64_t length = table.u64();
    if (id == 0 || id > kSectionCount) {
      return fail("unknown snapshot section id " + std::to_string(id));
    }
    if (offset > payload_size || length > payload_size - offset) {
      return fail("snapshot section overruns the payload");
    }
    if (offset % kSectionAlignment != 0) {
      return fail("snapshot section is misaligned");
    }
    if (sections[id].present) {
      return fail("duplicate snapshot section id " + std::to_string(id));
    }
    sections[id] = SectionView{offset, length, true};
  }
  auto section = [&](SectionId id) {
    const SectionView& s = sections[static_cast<std::uint32_t>(id)];
    return payload.subspan(static_cast<std::size_t>(s.offset),
                           static_cast<std::size_t>(s.length));
  };
  for (std::uint32_t id = 1; id <= kSectionCount; ++id) {
    if (!sections[id].present) {
      return fail("missing snapshot section id " + std::to_string(id));
    }
  }

  ByteReader meta(section(SectionId::kMeta));
  MetaCounts counts;
  counts.records = meta.varint();
  counts.strings = meta.varint();
  counts.string_blob_bytes = meta.varint();
  counts.asn_pool = meta.varint();
  counts.handle_pool = meta.varint();
  counts.trie_node_bytes = meta.varint();
  counts.trie_values = meta.varint();
  if (!meta.ok()) return fail("corrupt snapshot meta section");

  // Cross-check every bulk section's byte length against the meta counts —
  // an oversized or undersized length is corruption, not a bigger payload.
  auto expect_len = [&](SectionId id, std::uint64_t want,
                        const char* what) -> std::optional<Error> {
    const SectionView& s = sections[static_cast<std::uint32_t>(id)];
    if (s.length != want) {
      return fail(std::string("snapshot ") + what +
                  " section length mismatch");
    }
    return std::nullopt;
  };
  if (auto e = expect_len(SectionId::kStringBlob, counts.string_blob_bytes,
                          "string blob")) {
    return *e;
  }
  if (auto e = expect_len(SectionId::kStringOffsets,
                          (counts.strings + 1) * sizeof(std::uint32_t),
                          "string offsets")) {
    return *e;
  }
  if (auto e = expect_len(SectionId::kAsnPool,
                          counts.asn_pool * sizeof(std::uint32_t),
                          "ASN pool")) {
    return *e;
  }
  if (auto e = expect_len(SectionId::kHandlePool,
                          counts.handle_pool * sizeof(std::uint32_t),
                          "handle pool")) {
    return *e;
  }
  if (auto e = expect_len(SectionId::kRecords,
                          counts.records * sizeof(RecordRow), "records")) {
    return *e;
  }
  if (auto e = expect_len(SectionId::kTrieNodes, counts.trie_node_bytes,
                          "trie nodes")) {
    return *e;
  }
  if (auto e = expect_len(SectionId::kTrieValues,
                          counts.trie_values * sizeof(std::uint32_t),
                          "trie values")) {
    return *e;
  }
  if (counts.strings == 0) return fail("snapshot string pool is empty");

  Snapshot snap;
  snap.buffer_ = std::move(buffer);
  snap.version_ = version;
  // Re-derive the views against the moved-into buffer (same addresses for
  // mmap and heap buffers — the move transfers ownership, not storage).
  const std::span<const std::uint8_t> base =
      snap.buffer_.bytes().subspan(kHeaderSize +
                                   static_cast<std::size_t>(table_bytes));
  auto view = [&](SectionId id) {
    const SectionView& s = sections[static_cast<std::uint32_t>(id)];
    return base.subspan(static_cast<std::size_t>(s.offset),
                        static_cast<std::size_t>(s.length));
  };
  auto records = view(SectionId::kRecords);
  snap.records_ = {reinterpret_cast<const RecordRow*>(records.data()),
                   static_cast<std::size_t>(counts.records)};
  auto blob = view(SectionId::kStringBlob);
  snap.string_blob_ = {reinterpret_cast<const char*>(blob.data()),
                       blob.size()};
  auto offsets = view(SectionId::kStringOffsets);
  snap.string_offsets_ = {
      reinterpret_cast<const std::uint32_t*>(offsets.data()),
      static_cast<std::size_t>(counts.strings + 1)};
  auto asns = view(SectionId::kAsnPool);
  snap.asn_pool_ = {reinterpret_cast<const std::uint32_t*>(asns.data()),
                    static_cast<std::size_t>(counts.asn_pool)};
  auto handles = view(SectionId::kHandlePool);
  snap.handle_pool_ = {reinterpret_cast<const std::uint32_t*>(handles.data()),
                       static_cast<std::size_t>(counts.handle_pool)};
  snap.trie_nodes_ = view(SectionId::kTrieNodes);
  snap.trie_values_ = view(SectionId::kTrieValues);

  // Validate cross-references so accessors can be unchecked on the hot
  // path: string offsets monotone and in-blob, record fields in-pool.
  if (snap.string_offsets_[0] != 0 ||
      snap.string_offsets_[counts.strings] != blob.size()) {
    return fail("snapshot string offsets do not span the blob");
  }
  for (std::size_t i = 0; i < counts.strings; ++i) {
    if (snap.string_offsets_[i] > snap.string_offsets_[i + 1]) {
      return fail("snapshot string offsets are not monotone");
    }
  }
  auto span_ok = [](std::uint32_t off, std::uint32_t count,
                    std::size_t pool) {
    return off <= pool && count <= pool - off;
  };
  for (const RecordRow& row : snap.records_) {
    if (row.prefix_len > 32 || row.root_len > 32 ||
        row.rir >= whois::kAllRirs.size() ||
        row.group > static_cast<std::uint8_t>(
                        leasing::InferenceGroup::kLeasedWithRoot)) {
      return fail("snapshot record has out-of-range fields");
    }
    if (row.holder_org >= counts.strings || row.netname >= counts.strings) {
      return fail("snapshot record references a missing string");
    }
    if (!span_ok(row.holder_asns_off, row.holder_asns_count,
                 snap.asn_pool_.size()) ||
        !span_ok(row.leaf_origins_off, row.leaf_origins_count,
                 snap.asn_pool_.size()) ||
        !span_ok(row.root_origins_off, row.root_origins_count,
                 snap.asn_pool_.size()) ||
        !span_ok(row.leaf_maint_off, row.leaf_maint_count,
                 snap.handle_pool_.size()) ||
        !span_ok(row.root_maint_off, row.root_maint_count,
                 snap.handle_pool_.size())) {
      return fail("snapshot record evidence span out of range");
    }
  }
  for (std::uint32_t id : snap.handle_pool_) {
    if (id >= counts.strings) {
      return fail("snapshot handle pool references a missing string");
    }
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(counts.trie_values);
       ++i) {
    const std::uint32_t rec = reinterpret_cast<const std::uint32_t*>(
        snap.trie_values_.data())[i];
    if (rec >= counts.records) {
      return fail("snapshot trie value references a missing record");
    }
  }
  return snap;
}

leasing::LeaseInference Snapshot::materialize(std::size_t idx) const {
  const RecordRow& row = records_[idx];
  leasing::LeaseInference r;
  r.prefix = prefix_of(row);
  r.root_prefix = root_prefix_of(row);
  r.rir = static_cast<whois::Rir>(row.rir);
  r.group = static_cast<leasing::InferenceGroup>(row.group);
  r.holder_org = std::string(string_at(row.holder_org));
  r.netname = std::string(string_at(row.netname));
  auto asns = [&](std::uint32_t off, std::uint32_t count) {
    std::vector<Asn> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      out.push_back(Asn(asn_pool_[off + i]));
    }
    return out;
  };
  auto handles = [&](std::uint32_t off, std::uint32_t count) {
    std::vector<std::string> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      out.emplace_back(string_at(handle_pool_[off + i]));
    }
    return out;
  };
  r.holder_asns = asns(row.holder_asns_off, row.holder_asns_count);
  r.leaf_origins = asns(row.leaf_origins_off, row.leaf_origins_count);
  r.root_origins = asns(row.root_origins_off, row.root_origins_count);
  r.leaf_maintainers = handles(row.leaf_maint_off, row.leaf_maint_count);
  r.root_maintainers = handles(row.root_maint_off, row.root_maint_count);
  return r;
}

Expected<PrefixTrie<std::uint32_t>> Snapshot::build_trie(
    TrieStride stride) const {
  return PrefixTrie<std::uint32_t>::from_arena(trie_nodes_, trie_values_,
                                               stride);
}

}  // namespace sublet::snapshot
