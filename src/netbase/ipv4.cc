#include "netbase/ipv4.h"

#include <algorithm>
#include <bit>

#include "util/strings.h"

namespace sublet {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t value = 0;
  int octets = 0;
  std::size_t i = 0;
  while (i < text.size()) {
    if (octets == 4) return std::nullopt;
    std::uint32_t octet = 0;
    std::size_t digits = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      octet = octet * 10 + static_cast<std::uint32_t>(text[i] - '0');
      if (octet > 255) return std::nullopt;
      ++digits;
      if (digits > 3) return std::nullopt;
      ++i;
    }
    if (digits == 0) return std::nullopt;
    value = (value << 8) | octet;
    ++octets;
    if (i < text.size()) {
      if (text[i] != '.') return std::nullopt;
      ++i;
      if (i == text.size()) return std::nullopt;  // trailing dot
    }
  }
  if (octets != 4) return std::nullopt;
  return Ipv4Addr(value);
}

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((value_ >> shift) & 0xFF);
  }
  return out;
}

std::optional<Prefix> Prefix::make(Ipv4Addr addr, int len) {
  if (len < 0 || len > 32) return std::nullopt;
  return Prefix(Ipv4Addr(addr.value() & mask_for(len)), len);
}

std::optional<Prefix> Prefix::parse(std::string_view text, bool canonicalize) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(trim(text.substr(0, slash)));
  if (!addr) return std::nullopt;
  auto len = parse_u32(trim(text.substr(slash + 1)));
  if (!len || *len > 32) return std::nullopt;
  auto canonical = make(*addr, static_cast<int>(*len));
  if (!canonical) return std::nullopt;
  if (!canonicalize && canonical->network() != *addr) return std::nullopt;
  return canonical;
}

std::string Prefix::to_string() const {
  return network_.to_string() + '/' + std::to_string(length_);
}

std::optional<AddrRange> AddrRange::parse(std::string_view text) {
  auto dash = text.find('-');
  if (dash == std::string_view::npos) return std::nullopt;
  auto first = Ipv4Addr::parse(trim(text.substr(0, dash)));
  auto last = Ipv4Addr::parse(trim(text.substr(dash + 1)));
  if (!first || !last || *last < *first) return std::nullopt;
  return AddrRange{*first, *last};
}

std::vector<Prefix> AddrRange::to_prefixes() const {
  std::vector<Prefix> out;
  if (!valid()) return out;
  std::uint64_t cur = first.value();
  const std::uint64_t end = static_cast<std::uint64_t>(last.value()) + 1;
  while (cur < end) {
    // Largest block that is both aligned at `cur` and fits in what remains.
    int align_bits = cur == 0 ? 32 : std::countr_zero(cur);
    std::uint64_t remaining = end - cur;
    int size_bits = 63 - std::countl_zero(remaining);  // floor(log2(remaining))
    int bits = std::min({align_bits, size_bits, 32});
    int len = 32 - bits;
    out.push_back(*Prefix::make(Ipv4Addr(static_cast<std::uint32_t>(cur)), len));
    cur += std::uint64_t{1} << bits;
  }
  return out;
}

std::string AddrRange::to_string() const {
  return first.to_string() + " - " + last.to_string();
}

}  // namespace sublet
