// The original one-node-per-bit prefix trie, kept verbatim as a reference
// implementation. Production code uses PrefixTrie (netbase/prefix_trie.h),
// the path-compressed arena trie; this copy exists so that
//  - differential tests can check the new trie against the old semantics
//    on random workloads, and
//  - bench_perf_pipeline can report old-vs-new build/lookup/memory numbers.
//
// It is a plain bit trie (one heap node per prefix bit, path not
// compressed): depth is bounded by 32 so lookups are O(32); every traversal
// goes through std::function. Do not use it in new code.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "netbase/ipv4.h"

namespace sublet {

template <typename T>
class LegacyPrefixTrie {
 public:
  LegacyPrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Insert or overwrite the value at `prefix`. Returns a reference to the
  /// stored value.
  T& insert(const Prefix& prefix, T value) {
    Node* node = descend_create(prefix);
    node->value = std::move(value);
    if (!node->has_value) {
      node->has_value = true;
      ++size_;
    }
    return *node->value;
  }

  /// Value stored exactly at `prefix`, or nullptr.
  T* find(const Prefix& prefix) {
    Node* node = descend(prefix);
    return node && node->has_value ? &*node->value : nullptr;
  }
  const T* find(const Prefix& prefix) const {
    return const_cast<LegacyPrefixTrie*>(this)->find(prefix);
  }

  /// Entry whose prefix covers `prefix` with the greatest length —
  /// longest-prefix match. Includes an exact match.
  std::optional<std::pair<Prefix, const T*>> most_specific_covering(
      const Prefix& prefix) const {
    std::optional<std::pair<Prefix, const T*>> best;
    walk_path(prefix, [&](const Prefix& p, const Node& n) {
      best = {p, &*n.value};
    });
    return best;
  }

  /// Entry whose prefix covers `prefix` with the smallest length.
  std::optional<std::pair<Prefix, const T*>> least_specific_covering(
      const Prefix& prefix) const {
    std::optional<std::pair<Prefix, const T*>> best;
    walk_path(prefix, [&](const Prefix& p, const Node& n) {
      if (!best) best = {p, &*n.value};
    });
    return best;
  }

  /// All entries covering `prefix`, least specific first (includes exact).
  std::vector<std::pair<Prefix, const T*>> all_covering(
      const Prefix& prefix) const {
    std::vector<std::pair<Prefix, const T*>> out;
    all_covering(prefix, out);
    return out;
  }

  /// Out-param variant mirroring PrefixTrie's, so differential tests can
  /// exercise both tries through the same call shape.
  void all_covering(const Prefix& prefix,
                    std::vector<std::pair<Prefix, const T*>>& out) const {
    out.clear();
    walk_path(prefix, [&](const Prefix& p, const Node& n) {
      out.emplace_back(p, &*n.value);
    });
  }

  /// All entries covered by `prefix` (strictly more specific; excludes the
  /// entry at `prefix` itself), in address order.
  std::vector<std::pair<Prefix, const T*>> descendants(
      const Prefix& prefix) const {
    std::vector<std::pair<Prefix, const T*>> out;
    const Node* node = const_cast<LegacyPrefixTrie*>(this)->descend(prefix);
    if (!node) return out;
    visit_subtree(node, prefix, [&](const Prefix& p, const T& v) {
      if (p != prefix) out.emplace_back(p, &v);
    });
    return out;
  }

  /// Entries with a value whose nearest valued ancestor does not exist.
  std::vector<std::pair<Prefix, const T*>> roots() const {
    std::vector<std::pair<Prefix, const T*>> out;
    collect_roots(root_.get(), Prefix{}, out);
    return out;
  }

  /// Entries with a value and no valued descendant — the leaves.
  std::vector<std::pair<Prefix, const T*>> leaves() const {
    std::vector<std::pair<Prefix, const T*>> out;
    collect_leaves(root_.get(), *Prefix::make(Ipv4Addr(0), 0), out);
    return out;
  }

  /// Visit every (prefix, value) entry in address order.
  void visit(const std::function<void(const Prefix&, const T&)>& fn) const {
    visit_subtree(root_.get(), *Prefix::make(Ipv4Addr(0), 0), fn);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Heap node count / footprint, for old-vs-new benchmark comparisons.
  /// (Undercounts real usage: each node is a separate allocation, so
  /// allocator headers and fragmentation come on top.)
  std::size_t node_count() const { return count_nodes(root_.get()); }
  std::size_t memory_bytes() const {
    return node_count() * sizeof(Node);
  }

 private:
  struct Node {
    std::unique_ptr<Node> child[2];
    std::optional<T> value;
    bool has_value = false;
  };

  static int bit_at(Ipv4Addr addr, int depth) {
    // depth 0 examines the most significant bit.
    return (addr.value() >> (31 - depth)) & 1u;
  }

  Node* descend(const Prefix& prefix) {
    Node* node = root_.get();
    for (int d = 0; d < prefix.length(); ++d) {
      node = node->child[bit_at(prefix.network(), d)].get();
      if (!node) return nullptr;
    }
    return node;
  }

  Node* descend_create(const Prefix& prefix) {
    Node* node = root_.get();
    for (int d = 0; d < prefix.length(); ++d) {
      auto& next = node->child[bit_at(prefix.network(), d)];
      if (!next) next = std::make_unique<Node>();
      node = next.get();
    }
    return node;
  }

  /// Call `fn` for every valued node on the path from the root down to (and
  /// including) `prefix`, least specific first.
  void walk_path(const Prefix& prefix,
                 const std::function<void(const Prefix&, const Node&)>& fn)
      const {
    const Node* node = root_.get();
    std::uint32_t bits = 0;
    for (int d = 0; d <= prefix.length(); ++d) {
      if (node->has_value) {
        fn(*Prefix::make(Ipv4Addr(bits), d), *node);
      }
      if (d == prefix.length()) break;
      int b = bit_at(prefix.network(), d);
      node = node->child[b].get();
      if (!node) break;
      if (b) bits |= 1u << (31 - d);
    }
  }

  static void visit_subtree(
      const Node* node, const Prefix& at,
      const std::function<void(const Prefix&, const T&)>& fn) {
    if (node->has_value) fn(at, *node->value);
    for (int b = 0; b < 2; ++b) {
      if (!node->child[b]) continue;
      std::uint32_t bits = at.network().value();
      if (b) bits |= 1u << (31 - at.length());
      visit_subtree(node->child[b].get(),
                    *Prefix::make(Ipv4Addr(bits), at.length() + 1), fn);
    }
  }

  /// Returns true if the subtree rooted at `node` contains any valued node.
  static bool collect_leaves(const Node* node, const Prefix& at,
                             std::vector<std::pair<Prefix, const T*>>& out) {
    bool below = false;
    std::size_t mark = out.size();
    for (int b = 0; b < 2; ++b) {
      if (!node->child[b]) continue;
      std::uint32_t bits = at.network().value();
      if (b) bits |= 1u << (31 - at.length());
      below |= collect_leaves(node->child[b].get(),
                              *Prefix::make(Ipv4Addr(bits), at.length() + 1),
                              out);
    }
    if (node->has_value && !below) {
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(mark),
                 {at, &*node->value});
    }
    return below || node->has_value;
  }

  void collect_roots(const Node* node, const Prefix& at,
                     std::vector<std::pair<Prefix, const T*>>& out) const {
    if (node->has_value) {
      out.emplace_back(at, &*node->value);
      return;  // everything below is covered by this root
    }
    for (int b = 0; b < 2; ++b) {
      if (!node->child[b]) continue;
      std::uint32_t bits = at.network().value();
      if (b) bits |= 1u << (31 - at.length());
      collect_roots(node->child[b].get(),
                    *Prefix::make(Ipv4Addr(bits), at.length() + 1), out);
    }
  }

  static std::size_t count_nodes(const Node* node) {
    std::size_t n = 1;
    for (int b = 0; b < 2; ++b) {
      if (node->child[b]) n += count_nodes(node->child[b].get());
    }
    return n;
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace sublet
