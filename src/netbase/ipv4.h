// IPv4 address, CIDR prefix, and address-range primitives.
//
// WHOIS inetnum objects use inclusive ranges ("213.210.0.0 - 213.210.63.255")
// while BGP and RPKI speak CIDR; AddrRange::to_prefixes() performs the
// minimal-cover conversion the paper's step 2 requires.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sublet {

/// An IPv4 address as a host-order 32-bit value. Strong type: never
/// implicitly convertible to/from integers.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}

  constexpr std::uint32_t value() const { return value_; }

  /// Parse dotted-quad. Rejects octets > 255, missing octets, junk.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix: network address + length 0..32. The network address is
/// always stored canonically (host bits zeroed) — enforced by make().
class Prefix {
 public:
  constexpr Prefix() = default;

  /// Canonicalizing factory; returns nullopt if len > 32.
  static std::optional<Prefix> make(Ipv4Addr addr, int len);

  /// Parse "a.b.c.d/len". Rejects non-canonical network addresses
  /// ("10.0.0.1/8") unless `canonicalize` is true.
  static std::optional<Prefix> parse(std::string_view text,
                                     bool canonicalize = false);

  constexpr Ipv4Addr network() const { return network_; }
  constexpr int length() const { return length_; }

  /// Netmask for this length, e.g. /24 -> 255.255.255.0.
  constexpr std::uint32_t mask() const { return mask_for(length_); }

  /// First / last address covered.
  constexpr Ipv4Addr first() const { return network_; }
  constexpr Ipv4Addr last() const {
    return Ipv4Addr(network_.value() | ~mask());
  }

  /// Number of addresses (2^(32-len)); /0 yields 2^32 which needs 64 bits.
  constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  /// True if `addr` falls inside this prefix.
  constexpr bool contains(Ipv4Addr addr) const {
    return (addr.value() & mask()) == network_.value();
  }

  /// True if `other` is equal to or more specific than this prefix.
  constexpr bool covers(const Prefix& other) const {
    return other.length_ >= length_ && contains(other.network_);
  }

  std::string to_string() const;

  /// Ordering: by network address, then by length (less specific first).
  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  constexpr Prefix(Ipv4Addr network, int length)
      : network_(network), length_(length) {}

  static constexpr std::uint32_t mask_for(int len) {
    return len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
  }

  Ipv4Addr network_;
  int length_ = 0;
};

/// Inclusive address range [first, last], as WHOIS inetnum objects use.
struct AddrRange {
  Ipv4Addr first;
  Ipv4Addr last;

  /// Parse "a.b.c.d - e.f.g.h" (whitespace around '-' optional).
  static std::optional<AddrRange> parse(std::string_view text);

  bool valid() const { return first <= last; }
  std::uint64_t size() const {
    return static_cast<std::uint64_t>(last.value()) - first.value() + 1;
  }

  /// Minimal set of CIDR prefixes exactly covering the range, in address
  /// order. A range that is itself CIDR-aligned yields one prefix.
  std::vector<Prefix> to_prefixes() const;

  std::string to_string() const;

  friend auto operator<=>(const AddrRange&, const AddrRange&) = default;
};

/// Hash support so Prefix can key unordered containers.
struct PrefixHash {
  std::size_t operator()(const Prefix& p) const {
    // Pack to a unique 64-bit key and mix.
    std::uint64_t key = (std::uint64_t{p.network().value()} << 6) |
                        static_cast<std::uint64_t>(p.length());
    key ^= key >> 33;
    key *= 0xFF51AFD7ED558CCDull;
    key ^= key >> 33;
    return static_cast<std::size_t>(key);
  }
};

}  // namespace sublet
