// Path-compressed binary radix (Patricia) trie keyed by CIDR prefixes,
// stored in one contiguous arena.
//
// This single structure backs both sides of the paper's pipeline:
//  - the WHOIS address-allocation tree (step 2: roots = portable blocks,
//    leaves = non-portable sub-allocations), and
//  - RIB lookups (step 4: exact match and least-specific covering origin).
//
// Layout (docs/PERF.md has the full story):
//  - Nodes live in one `std::vector<Node>` arena; children are 32-bit
//    indices, not pointers. A node covers a whole run of prefix bits
//    (`key` + `len`), so a /24 entry costs at most two nodes (one leaf plus
//    at most one fork), not 24 heap allocations as in the old
//    one-node-per-bit trie (kept as LegacyPrefixTrie for benchmarks).
//  - Values live in a parallel slot vector; nodes hold a slot index, so
//    pure branch nodes pay no per-node `std::optional<T>`.
//  - All traversals are templated on the callback, so walks inline instead
//    of bouncing through `std::function`.
//
// Construction is either incremental (`insert`, used by OriginTracker-style
// streaming callers and tests) or bulk (`freeze`, one pass over a sorted
// entry vector — used by AllocationTree after WHOIS parse). Both produce
// the same canonical structure: `roots()`, `leaves()` and `visit()` agree.
//
// Reference caveat: values live in a vector, so pointers/references
// returned by `insert`/`find` are invalidated by any later `insert` or
// `freeze`. Use them before the next mutation (all in-tree callers do).
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "netbase/ipv4.h"
#include "util/expected.h"

namespace sublet {

/// Whether freeze()/from_arena() should also build the DIR-24-8 stride
/// table (64 MiB of first-level array; serve-path adoption wants it, the
/// inference pipeline's short-lived tries do not).
enum class TrieStride { kOff, kBuild };

template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }  // arena slot 0 is the /0 root

  /// Sentinel handle returned by lpm_handle()/lookup_batch() when no entry
  /// covers the queried address.
  static constexpr std::uint32_t kNoEntry = 0xFFFFFFFFu;

  /// Pre-size the arena for `entries` prefixes (at most one fork per entry).
  void reserve(std::size_t entries) {
    nodes_.reserve(2 * entries + 1);
    values_.reserve(entries);
  }

  /// Bulk-build: sort the entries and construct the trie in one pass by
  /// maintaining the rightmost path as a stack — no per-entry root-down
  /// descent. Duplicate prefixes keep the last occurrence, matching
  /// repeated `insert` overwrite semantics.
  static PrefixTrie freeze(std::vector<std::pair<Prefix, T>> entries,
                           TrieStride stride = TrieStride::kOff) {
    std::stable_sort(
        entries.begin(), entries.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    PrefixTrie trie;
    trie.reserve(entries.size());
    std::uint32_t stack[34];  // rightmost path; depth <= 33 (len 0..32)
    int depth = 0;
    stack[0] = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i + 1 < entries.size() && entries[i + 1].first == entries[i].first) {
        continue;  // duplicate prefix: the last one wins
      }
      const std::uint32_t key = entries[i].first.network().value();
      const int len = entries[i].first.length();
      std::uint32_t popped = kNil;
      while (!trie.covers(trie.nodes_[stack[depth]], key, len)) {
        popped = stack[depth];
        --depth;
      }
      const std::uint32_t top = stack[depth];
      if (len_of(trie.nodes_[top]) == len) {  // only reachable via duplicates
        trie.assign(top, std::move(entries[i].second));
        continue;
      }
      if (popped == kNil) {
        // `top` is the most recent node; its branch toward `key` is free.
        const std::uint32_t leaf = trie.new_node(key, len);
        trie.nodes_[top].child[bit_at(key, len_of(trie.nodes_[top]))] = leaf;
        trie.assign(leaf, std::move(entries[i].second));
        stack[++depth] = leaf;
        continue;
      }
      // `popped` shares `cl` leading bits with the new entry; either they
      // split right at `top` or an internal fork is spliced in between.
      const int cl = common_len(trie.nodes_[popped].key, key,
                                std::min(len_of(trie.nodes_[popped]), len));
      const std::uint32_t leaf = trie.new_node(key, len);
      if (cl == len_of(trie.nodes_[top])) {
        trie.nodes_[top].child[bit_at(key, cl)] = leaf;
      } else {
        const std::uint32_t fork = trie.new_node(key & mask(cl), cl);
        trie.nodes_[fork].child[bit_at(trie.nodes_[popped].key, cl)] = popped;
        trie.nodes_[fork].child[bit_at(key, cl)] = leaf;
        trie.nodes_[top].child[bit_at(key, len_of(trie.nodes_[top]))] = fork;
        stack[++depth] = fork;
      }
      trie.assign(leaf, std::move(entries[i].second));
      stack[++depth] = leaf;
    }
    trie.build_jump_table();
    if (stride == TrieStride::kBuild) trie.build_stride_table();
    return trie;
  }

  /// Insert or overwrite the value at `prefix`. Returns a reference to the
  /// stored value (valid until the next insert/freeze).
  T& insert(const Prefix& prefix, T value) {
    jump_.clear();  // structure changes; the fast path would be stale
    stride24_ = {};  // drop (not clear) the stride table: release its 64 MiB
    stride8_ = {};
    const std::uint32_t key = prefix.network().value();
    const int len = prefix.length();
    std::uint32_t cur = 0;
    for (;;) {
      // Invariant: nodes_[cur] covers `prefix`.
      if (len_of(nodes_[cur]) == len) return assign(cur, std::move(value));
      const int b = bit_at(key, len_of(nodes_[cur]));
      const std::uint32_t c = nodes_[cur].child[b];
      if (c == kNil) {
        const std::uint32_t leaf = new_node(key, len);
        nodes_[cur].child[b] = leaf;
        return assign(leaf, std::move(value));
      }
      const int cl =
          common_len(nodes_[c].key, key, std::min(len_of(nodes_[c]), len));
      if (cl == len_of(nodes_[c])) {  // child covers prefix: keep descending
        cur = c;
        continue;
      }
      if (cl == len) {  // prefix covers child: splice a node above it
        const std::uint32_t mid = new_node(key, len);
        nodes_[mid].child[bit_at(nodes_[c].key, len)] = c;
        nodes_[cur].child[b] = mid;
        return assign(mid, std::move(value));
      }
      // Paths diverge inside the child's edge: fork at the common prefix.
      const std::uint32_t fork = new_node(key & mask(cl), cl);
      const std::uint32_t leaf = new_node(key, len);
      nodes_[fork].child[bit_at(nodes_[c].key, cl)] = c;
      nodes_[fork].child[bit_at(key, cl)] = leaf;
      nodes_[cur].child[b] = fork;
      return assign(leaf, std::move(value));
    }
  }

  /// Remove the value stored exactly at `prefix`. Returns false when no
  /// entry sits there. Like insert() this drops the derived tables; the
  /// node and its value slot stay in the arena (the slot is unreferenced
  /// until the next freeze), so removal is an O(depth) metadata edit —
  /// the catalog's delta apply leans on this to retire leaves without
  /// rebuilding the trie. An erased trie no longer round-trips through
  /// node_bytes()/value_bytes() (from_arena insists every slot is
  /// referenced); serialize by re-freezing instead.
  bool erase(const Prefix& prefix) {
    const std::uint32_t idx = locate(prefix);
    if (idx == kNil || slot_of(nodes_[idx]) == kNoSlot) return false;
    jump_.clear();
    stride24_ = {};
    stride8_ = {};
    nodes_[idx].meta = (nodes_[idx].meta & ~kSlotMask) | kNoSlot;
    --size_;
    return true;
  }

  /// Copy of the structural core (node arena + value slots) without the
  /// jump/stride tables — the cheap starting point for applying a batch of
  /// inserts/erases to a frozen trie: the 64 MiB stride table is never
  /// duplicated only to be dropped by the first mutation. Rebuild the
  /// tables on the copy once mutation stops.
  PrefixTrie core_copy() const {
    PrefixTrie out;
    out.nodes_ = nodes_;
    out.values_ = values_;
    out.size_ = size_;
    return out;
  }

  /// Copy `other`'s jump table verbatim instead of rebuilding it. Valid
  /// ONLY when this trie's structure is node-for-node identical to
  /// `other`'s — e.g. a core_copy() whose stored values were reassigned
  /// but that saw no insert/erase (the catalog's in-place-only delta
  /// applies): jump entries hold node indices, which such a copy
  /// preserves exactly.
  void adopt_jump_table(const PrefixTrie& other) { jump_ = other.jump_; }

  /// Value stored exactly at `prefix`, or nullptr.
  T* find(const Prefix& prefix) {
    if (!stride24_.empty()) {
      // Stride fast path: the deepest valued covering entry decides exact
      // matches too. Shallower than the query => nothing sits exactly at
      // the query (a valued node there would cover it); equal length =>
      // that node IS the exact match (covering at equal length means equal
      // keys). Only a *deeper* cover forces the Patricia walk, because an
      // unvalued-or-valued node may still sit exactly at the query prefix.
      const std::uint32_t e =
          stride_resolve(prefix.network().value(), prefix.length());
      if (e == kNil) return nullptr;
      const int el = len_of(nodes_[e]);
      if (el < prefix.length()) return nullptr;
      if (el == prefix.length()) return &values_[slot_of(nodes_[e])];
    }
    const std::uint32_t idx = locate(prefix);
    if (idx == kNil || slot_of(nodes_[idx]) == kNoSlot) return nullptr;
    return &values_[slot_of(nodes_[idx])];
  }
  const T* find(const Prefix& prefix) const {
    return const_cast<PrefixTrie*>(this)->find(prefix);
  }

  /// Entry whose prefix covers `prefix` with the greatest length —
  /// longest-prefix match. Includes an exact match. Returns nullopt if no
  /// entry covers it.
  std::optional<std::pair<Prefix, const T*>> most_specific_covering(
      const Prefix& prefix) const {
    const std::uint32_t key = prefix.network().value();
    const int len = prefix.length();
    if (!stride24_.empty()) {
      // DIR-24-8 fast path: one or two array loads. The stored entry is
      // the deepest valued node covering the address; it answers the query
      // outright unless it is deeper than the query length (then the true
      // answer is some shallower ancestor — fall through to the walk).
      const std::uint32_t e = stride_resolve(key, len);
      if (e == kNil) return std::nullopt;
      if (len_of(nodes_[e]) <= len) return entry_at(e);
    }
    std::uint32_t best = kNil;
    if (!jump_.empty() && len >= kJumpBits) {
      const JumpEntry& e = jump_[key >> (32 - kJumpBits)];
      best = e.deep;
      walk_below(e.start, key, len, [&](std::uint32_t idx) { best = idx; });
    } else {
      walk_path(key, len, [&](std::uint32_t idx) { best = idx; });
    }
    return entry_at(best);
  }

  /// Entry whose prefix covers `prefix` with the smallest length — the
  /// least-specific covering entry (paper step 4's root-origin fallback).
  std::optional<std::pair<Prefix, const T*>> least_specific_covering(
      const Prefix& prefix) const {
    const std::uint32_t key = prefix.network().value();
    const int len = prefix.length();
    std::uint32_t best = kNil;
    if (!jump_.empty() && len >= kJumpBits) {
      const JumpEntry& e = jump_[key >> (32 - kJumpBits)];
      best = e.shallow;  // least-specific covering at depth <= kJumpBits
      if (best == kNil) {
        walk_below(e.start, key, len, [&](std::uint32_t idx) {
          if (best == kNil) best = idx;
        });
      }
    } else {
      walk_path(key, len, [&](std::uint32_t idx) {
        if (best == kNil) best = idx;
      });
    }
    return entry_at(best);
  }

  /// All entries covering `prefix`, least specific first (includes exact).
  std::vector<std::pair<Prefix, const T*>> all_covering(
      const Prefix& prefix) const {
    std::vector<std::pair<Prefix, const T*>> out;
    all_covering(prefix, out);
    return out;
  }

  /// Out-param variant for hot paths: clears and refills `out`, so a caller
  /// with a reused scratch vector pays zero allocations once the vector has
  /// grown to its steady-state capacity.
  void all_covering(const Prefix& prefix,
                    std::vector<std::pair<Prefix, const T*>>& out) const {
    out.clear();
    walk_path(prefix.network().value(), prefix.length(),
              [&](std::uint32_t idx) {
                out.emplace_back(prefix_of(nodes_[idx]),
                                 &values_[slot_of(nodes_[idx])]);
              });
  }

  /// Precompute the level-compressed fast path for covering queries: one
  /// table bucket per top-`kJumpBits` bit pattern holding the deepest trie
  /// node at depth <= kJumpBits covering that bucket plus the first/last
  /// valued nodes on the path down to it. Covering walks on queries of
  /// length >= kJumpBits then start ~kJumpBits levels deep instead of at
  /// the root, skipping most of the pointer-chasing. `freeze()` calls this
  /// automatically; incremental builders (e.g. Rib) call it once the trie
  /// is final. Any later `insert` drops the table (queries fall back to the
  /// root walk) — rebuild when mutation stops.
  void build_jump_table() {
    jump_.assign(std::size_t{1} << kJumpBits, JumpEntry{});
    fill_jump(0, kNil, kNil);
  }

  // ---- DIR-24-8 stride table (docs/PERF.md) -----------------------------
  //
  // A flat 2^24-entry first-level array answers covering queries for every
  // address whose deepest match is <= /24 in a single load; buckets that
  // contain longer masks point at a second-level 256-slot chunk (one more
  // load). Entries are node handles into the arena — the trie stays the
  // single source of truth, the table is a read-only index over it.

  /// Precompute the stride table. Like the jump table this is a frozen-trie
  /// accelerator: any later `insert` drops it (rebuild when mutation
  /// stops). Costs 64 MiB for the first level plus ~1 KiB per bucket that
  /// holds >24-bit prefixes, which is why the inference pipeline's
  /// short-lived tries skip it (TrieStride::kOff) and the serve adoption
  /// path builds it (TrieStride::kBuild).
  void build_stride_table() {
    assert(nodes_.size() < kChunkFlag);
    stride24_.assign(std::size_t{1} << 24, kNil);
    stride8_.clear();
    fill_stride(0);
  }

  bool has_stride_table() const { return !stride24_.empty(); }

  /// Longest-prefix-match handle for a /32 address: at most two dependent
  /// loads, never a trie walk (a /32 query cannot be shadowed by a deeper
  /// entry). Returns kNoEntry when nothing covers the address. Requires
  /// has_stride_table().
  std::uint32_t lpm_handle(std::uint32_t addr) const {
    assert(has_stride_table());
    return stride_resolve(addr, 32);
  }

  /// Batched LPM over /32 addresses, software-prefetched: first-level lines
  /// are prefetched kPrefetchAhead keys ahead, and second-level chunk slots
  /// are prefetched in pass one and resolved in pass two, so a batch never
  /// stalls on a dependent cache miss the way a lookup-per-call loop does.
  /// Writes one handle (or kNoEntry) per address; allocation-free.
  /// Requires has_stride_table() and out.size() >= addrs.size().
  void lookup_batch(std::span<const std::uint32_t> addrs,
                    std::span<std::uint32_t> out) const {
    assert(has_stride_table() && out.size() >= addrs.size());
    // Distance and locality were tuned on an L2-cold uniform address
    // stream: 32 keys ahead buys enough lead time to cover an L2/L3 miss
    // at ~10ns/lookup, and locality 3 (keep in L1) beats the streaming
    // hints because the demand load follows within a few dozen iterations.
    constexpr std::size_t kPrefetchAhead = 32;
    const std::size_t n = addrs.size();
    std::size_t chunked = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kPrefetchAhead < n) {
        __builtin_prefetch(&stride24_[addrs[i + kPrefetchAhead] >> 8],
                           /*rw=*/0, /*locality=*/3);
      }
      const std::uint32_t e = stride24_[addrs[i] >> 8];
      out[i] = e;
      if (e >= kChunkFlag && e != kNil) {
        __builtin_prefetch(&stride8_[e & ~kChunkFlag].slot[addrs[i] & 0xFFu],
                           /*rw=*/0, /*locality=*/3);
        ++chunked;
      }
    }
    if (chunked == 0) return;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t e = out[i];
      if (e >= kChunkFlag && e != kNil) {
        out[i] = stride8_[e & ~kChunkFlag].slot[addrs[i] & 0xFFu];
      }
    }
  }

  /// Materialize the (prefix, value) behind a handle returned by
  /// lpm_handle()/lookup_batch(). The handle must not be kNoEntry.
  std::pair<Prefix, const T*> entry(std::uint32_t handle) const {
    return {prefix_of(nodes_[handle]), &values_[slot_of(nodes_[handle])]};
  }

  /// All entries covered by `prefix` (strictly more specific; excludes the
  /// entry at `prefix` itself), in address order.
  std::vector<std::pair<Prefix, const T*>> descendants(
      const Prefix& prefix) const {
    std::vector<std::pair<Prefix, const T*>> out;
    const std::uint32_t key = prefix.network().value();
    const int len = prefix.length();
    std::uint32_t cur = 0;
    while (len_of(nodes_[cur]) < len) {
      const std::uint32_t c =
          nodes_[cur].child[bit_at(key, len_of(nodes_[cur]))];
      if (c == kNil) return out;
      if (len_of(nodes_[c]) >= len) {
        // The edge to `c` crosses the query length; the whole subtree is
        // covered iff the child's key matches the query through `len` bits.
        if ((nodes_[c].key & mask(len)) != key) return out;
        cur = c;
        break;
      }
      if ((key & mask(len_of(nodes_[c]))) != nodes_[c].key) return out;
      cur = c;
    }
    visit_subtree(cur, [&](const Prefix& p, const T& v) {
      if (p != prefix) out.emplace_back(p, &v);
    });
    return out;
  }

  /// Entries with a value whose nearest valued ancestor does not exist —
  /// the roots of the allocation forest.
  std::vector<std::pair<Prefix, const T*>> roots() const {
    std::vector<std::pair<Prefix, const T*>> out;
    collect_roots(0, out);
    return out;
  }

  /// Entries with a value and no valued descendant — the leaves.
  std::vector<std::pair<Prefix, const T*>> leaves() const {
    std::vector<std::pair<Prefix, const T*>> out;
    collect_leaves(0, out);
    return out;
  }

  /// Visit every (prefix, value) entry in address order. `fn` is any
  /// callable taking (const Prefix&, const T&); it inlines.
  template <typename Fn>
  void visit(Fn&& fn) const {
    visit_subtree(0, fn);
  }

  /// Visit every stored value mutably, in arena (insertion) order — for
  /// freeze-time normalization passes that don't care about address order.
  template <typename Fn>
  void for_each_value(Fn&& fn) {
    for (T& value : values_) fn(value);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // ---- Raw-arena (de)serialization hooks (src/snapshot/) ----------------
  //
  // The arena is already one contiguous block of trivially copyable nodes
  // plus a parallel value vector, so a frozen trie round-trips through a
  // snapshot file as two bulk byte sections — no per-node parsing. Only
  // available when T itself is trivially copyable (the snapshot stores
  // record indices). The jump table is rebuilt on adoption, not stored.

  /// Raw bytes of the node arena (includes the root at index 0).
  std::span<const std::uint8_t> node_bytes() const {
    static_assert(std::is_trivially_copyable_v<Node>);
    return {reinterpret_cast<const std::uint8_t*>(nodes_.data()),
            nodes_.size() * sizeof(Node)};
  }

  /// Raw bytes of the value slot vector, parallel to the valued nodes.
  std::span<const std::uint8_t> value_bytes() const {
    static_assert(std::is_trivially_copyable_v<T>,
                  "arena serialization requires a trivially copyable T");
    return {reinterpret_cast<const std::uint8_t*>(values_.data()),
            values_.size() * sizeof(T)};
  }

  /// Rebuild a trie from arena bytes written by node_bytes()/value_bytes().
  /// The bytes are untrusted (they come from a file): every structural
  /// invariant that keeps traversals in-bounds and loop-free is checked —
  /// child indices in range, prefix lengths strictly increasing downward,
  /// canonical keys, value slots in range. Returns Error, never crashes.
  static Expected<PrefixTrie> from_arena(std::span<const std::uint8_t> nodes,
                                         std::span<const std::uint8_t> values,
                                         TrieStride stride = TrieStride::kOff) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "arena adoption requires a trivially copyable T");
    if (nodes.size() % sizeof(Node) != 0 || nodes.empty()) {
      return fail("trie node section is not a whole number of nodes");
    }
    if (values.size() % sizeof(T) != 0) {
      return fail("trie value section is not a whole number of values");
    }
    PrefixTrie trie;
    trie.nodes_.resize(nodes.size() / sizeof(Node));
    std::memcpy(trie.nodes_.data(), nodes.data(), nodes.size());
    trie.values_.resize(values.size() / sizeof(T));
    if (!values.empty()) {
      std::memcpy(trie.values_.data(), values.data(), values.size());
    }
    const std::uint32_t node_count =
        static_cast<std::uint32_t>(trie.nodes_.size());
    const std::uint32_t value_count =
        static_cast<std::uint32_t>(trie.values_.size());
    if (len_of(trie.nodes_[0]) != 0 || trie.nodes_[0].key != 0) {
      return fail("trie root is not the /0 node");
    }
    std::size_t valued = 0;
    for (std::uint32_t i = 0; i < node_count; ++i) {
      const Node& n = trie.nodes_[i];
      if (len_of(n) > 32) return fail("trie node has length > 32");
      if ((n.key & ~mask(len_of(n))) != 0) {
        return fail("trie node key has host bits set");
      }
      for (int side = 0; side < 2; ++side) {
        const std::uint32_t c = n.child[side];
        if (c == kNil) continue;
        if (c == 0 || c >= node_count) {
          return fail("trie child index out of range");
        }
        if (len_of(trie.nodes_[c]) <= len_of(n)) {
          return fail("trie child does not deepen the prefix");
        }
        if (bit_at(trie.nodes_[c].key, len_of(n)) != side) {
          return fail("trie child hangs off the wrong branch");
        }
      }
      if (slot_of(n) != kNoSlot) {
        if (slot_of(n) >= value_count) {
          return fail("trie value slot out of range");
        }
        ++valued;
      }
    }
    if (valued != value_count) {
      return fail("trie value count does not match valued nodes");
    }
    trie.size_ = valued;
    trie.build_jump_table();
    if (stride == TrieStride::kBuild) trie.build_stride_table();
    return trie;
  }

  /// Arena footprint, for benchmarks and capacity planning.
  std::size_t node_count() const { return nodes_.size(); }

  /// Per-structure footprint; STATS surfaces this breakdown so capacity
  /// planning sees where the bytes go (the stride table dominates once
  /// built: its first level alone is 64 MiB regardless of entry count).
  struct MemoryBreakdown {
    std::size_t node_bytes = 0;
    std::size_t value_bytes = 0;
    std::size_t jump_bytes = 0;
    std::size_t stride24_bytes = 0;
    std::size_t stride8_bytes = 0;
    std::size_t total() const {
      return node_bytes + value_bytes + jump_bytes + stride24_bytes +
             stride8_bytes;
    }
  };
  MemoryBreakdown memory_breakdown() const {
    return {nodes_.size() * sizeof(Node), values_.size() * sizeof(T),
            jump_.size() * sizeof(JumpEntry),
            stride24_.size() * sizeof(std::uint32_t),
            stride8_.size() * sizeof(StrideChunk)};
  }
  std::size_t memory_bytes() const { return memory_breakdown().total(); }

 private:
  static constexpr std::uint32_t kNil = kNoEntry;      // child sentinel
  static constexpr std::uint32_t kSlotMask = (1u << 26) - 1;
  static constexpr std::uint32_t kNoSlot = kSlotMask;   // "no value" slot

  /// Exactly 16 bytes and 16-aligned: four nodes per cache line, and a node
  /// never straddles a line boundary. The prefix length (0..32) is packed
  /// into the top 6 bits of `meta`; the value slot takes the low 26 bits
  /// (up to ~67M valued entries, far beyond RIR/RIB scale).
  struct alignas(16) Node {
    std::uint32_t key = 0;  // network bits (host bits zero)
    std::uint32_t child[2] = {kNil, kNil};
    std::uint32_t meta = kNoSlot;  // [31:26] length, [25:0] value slot
  };
  static_assert(sizeof(Node) == 16);

  static int len_of(const Node& n) { return static_cast<int>(n.meta >> 26); }
  static std::uint32_t slot_of(const Node& n) { return n.meta & kSlotMask; }

  /// Covering-query fast path: one bucket per top-kJumpBits bit pattern.
  /// 2^13 buckets x 12 bytes = 96 KiB — small next to the arena it
  /// accelerates, and shared by every query.
  static constexpr int kJumpBits = 13;
  struct JumpEntry {
    std::uint32_t start = 0;        // deepest depth<=kJumpBits covering node
    std::uint32_t shallow = kNil;   // first valued node on root..start path
    std::uint32_t deep = kNil;      // last valued node on root..start path
  };

  /// stride24_ entry encoding: kNil = no valued entry covers the bucket;
  /// bit 31 set (and != kNil) = stride8_ chunk index in the low bits;
  /// otherwise the handle of the deepest valued node (length <= 24)
  /// covering the whole /24 bucket.
  static constexpr std::uint32_t kChunkFlag = 0x80000000u;
  struct StrideChunk {
    std::uint32_t base = kNil;  // deepest valued <=24 cover of the bucket
    std::uint32_t slot[256];    // deepest valued cover per address (any len)
  };

  static int bit_at(std::uint32_t key, int pos) {
    // pos 0 examines the most significant bit; callers guarantee pos < 32.
    return (key >> (31 - pos)) & 1u;
  }

  static std::uint32_t mask(int len) {
    return len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
  }

  /// Length of the common leading bit run of `a` and `b`, capped at `cap`.
  static int common_len(std::uint32_t a, std::uint32_t b, int cap) {
    return std::min(std::countl_zero(a ^ b), cap);
  }

  static bool covers(const Node& n, std::uint32_t key, int len) {
    return len_of(n) <= len && (key & mask(len_of(n))) == n.key;
  }

  static Prefix prefix_of(const Node& n) {
    return *Prefix::make(Ipv4Addr(n.key), len_of(n));
  }

  std::uint32_t new_node(std::uint32_t key, int len) {
    nodes_.push_back(Node{key, {kNil, kNil},
                          (static_cast<std::uint32_t>(len) << 26) | kNoSlot});
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  T& assign(std::uint32_t idx, T value) {
    std::uint32_t slot = slot_of(nodes_[idx]);
    if (slot == kNoSlot) {
      slot = static_cast<std::uint32_t>(values_.size());
      assert(slot < kNoSlot);
      values_.push_back(std::move(value));
      nodes_[idx].meta = (nodes_[idx].meta & ~kSlotMask) | slot;
      ++size_;
    } else {
      values_[slot] = std::move(value);
    }
    return values_[slot];
  }

  std::optional<std::pair<Prefix, const T*>> entry_at(std::uint32_t idx) const {
    if (idx == kNil) return std::nullopt;
    return std::pair<Prefix, const T*>{prefix_of(nodes_[idx]),
                                       &values_[slot_of(nodes_[idx])]};
  }

  /// Index of the node holding exactly `prefix`, or kNil. Descends blindly
  /// by the query's bits and verifies the key once at the end (the classic
  /// Patricia trick) — one child load per step, no per-step key compare.
  std::uint32_t locate(const Prefix& prefix) const {
    const std::uint32_t key = prefix.network().value();
    const int len = prefix.length();
    std::uint32_t cur = 0;
    int cl = 0;  // root length
    if (!jump_.empty() && len >= kJumpBits) {
      // A node holding `prefix` exactly would sit in the start node's
      // subtree (every shallower covering node covers its whole bucket),
      // so the blind descent can begin there.
      cur = jump_[key >> (32 - kJumpBits)].start;
      cl = len_of(nodes_[cur]);
    }
    while (cl < len) {
      const std::uint32_t c = nodes_[cur].child[bit_at(key, cl)];
      if (c == kNil) return kNil;
      cur = c;
      cl = len_of(nodes_[cur]);
    }
    return (cl == len && nodes_[cur].key == key) ? cur : kNil;
  }

  /// Call `fn(node index)` for every valued node whose prefix covers the
  /// (key, len) query (including an exact match), least specific first.
  template <typename Fn>
  void walk_path(std::uint32_t key, int len, Fn&& fn) const {
    if (slot_of(nodes_[0]) != kNoSlot) fn(0);
    walk_below(0, key, len, fn);
  }

  /// Covering walk from `cur` downward: reports valued nodes strictly below
  /// `cur` whose prefix covers the query, in root-to-leaf order. `cur` must
  /// itself cover the query (callers start at the root or a jump-table
  /// node). The hot inner loop touches only the current node's cache line;
  /// callers that need the Prefix or value materialize them once from the
  /// index.
  template <typename Fn>
  void walk_below(std::uint32_t cur, std::uint32_t key, int len,
                  Fn&& fn) const {
    for (;;) {
      const Node& n = nodes_[cur];
      if (len_of(n) == len) return;
      const std::uint32_t c = n.child[bit_at(key, len_of(n))];
      if (c == kNil) return;
      const Node& cn = nodes_[c];
      const int cl = len_of(cn);
      // Divergence check: cn covers the query iff its key matches the
      // query's leading cl bits (cl >= 1 here, so the shift is defined).
      if (cl > len || ((key ^ cn.key) >> (32 - cl)) != 0) return;
      if (slot_of(cn) != kNoSlot) fn(c);
      cur = c;
    }
  }

  /// DFS over the depth <= kJumpBits top of the trie: each node overwrites
  /// its bucket range with itself as the walk start plus the valued-node
  /// summary of the path so far, so deeper nodes win.
  void fill_jump(std::uint32_t idx, std::uint32_t shallow,
                 std::uint32_t deep) {
    const Node& n = nodes_[idx];
    if (slot_of(n) != kNoSlot) {
      if (shallow == kNil) shallow = idx;
      deep = idx;
    }
    const std::size_t lo = n.key >> (32 - kJumpBits);
    const std::size_t count = std::size_t{1} << (kJumpBits - len_of(n));
    for (std::size_t b = lo; b < lo + count; ++b) {
      jump_[b] = JumpEntry{idx, shallow, deep};
    }
    for (int side = 0; side < 2; ++side) {
      const std::uint32_t c = n.child[side];
      if (c != kNil && len_of(nodes_[c]) <= kJumpBits) {
        fill_jump(c, shallow, deep);
      }
    }
  }

  /// Resolve the deepest valued node covering address `key` that can answer
  /// a covering query of length `len` from the stride table: at most two
  /// dependent loads. kNil means no valued entry covers the address at all.
  /// A non-kNil result deeper than `len` means the query is shadowed by a
  /// more specific entry — the caller must fall back to the trie walk (for
  /// len == 32 that can never happen).
  std::uint32_t stride_resolve(std::uint32_t key, int len) const {
    std::uint32_t e = stride24_[key >> 8];
    if (e >= kChunkFlag && e != kNil) {
      const StrideChunk& chunk = stride8_[e & ~kChunkFlag];
      e = len > 24 ? chunk.slot[key & 0xFFu] : chunk.base;
    }
    return e;
  }

  /// DFS fill for build_stride_table(). Pre-order guarantees every node is
  /// written after all its ancestors, so deeper (more specific) entries
  /// overwrite the sub-range their ancestors already covered:
  ///  - a valued node with length <= 24 covers whole /24 buckets and
  ///    range-fills the first level with its own handle;
  ///  - a node with length > 24 lives inside exactly one bucket; the first
  ///    such node materializes the bucket's chunk, seeding base and every
  ///    slot with the first level's current (deepest <=24) handle, and
  ///    valued ones then range-fill their slice of the 256 slots.
  /// No chunk can exist inside a <=24 node's range when it writes, because
  /// >24-bit nodes under it are all its descendants and visited later.
  void fill_stride(std::uint32_t idx) {
    const Node& n = nodes_[idx];
    if (len_of(n) <= 24) {
      if (slot_of(n) != kNoSlot) {
        std::fill_n(stride24_.begin() + (n.key >> 8),
                    std::size_t{1} << (24 - len_of(n)), idx);
      }
    } else {
      const std::size_t bucket = n.key >> 8;
      std::uint32_t e = stride24_[bucket];
      if (!(e & kChunkFlag) || e == kNil) {  // first >24 node in this bucket
        const auto chunk = static_cast<std::uint32_t>(stride8_.size());
        stride8_.push_back(StrideChunk{});
        stride8_.back().base = e;
        std::fill_n(stride8_.back().slot, 256, e);
        e = kChunkFlag | chunk;
        stride24_[bucket] = e;
      }
      if (slot_of(n) != kNoSlot) {
        std::fill_n(stride8_[e & ~kChunkFlag].slot + (n.key & 0xFFu),
                    std::size_t{1} << (32 - len_of(n)), idx);
      }
    }
    for (int side = 0; side < 2; ++side) {
      if (n.child[side] != kNil) fill_stride(n.child[side]);
    }
  }

  /// Pre-order (node, then 0-branch, then 1-branch) == address order: a
  /// node's prefix sorts before everything below it, and the whole 0-branch
  /// sorts before the 1-branch. Depth is bounded by 33, so recursion is
  /// safe.
  template <typename Fn>
  void visit_subtree(std::uint32_t idx, Fn&& fn) const {
    const Node& n = nodes_[idx];
    if (slot_of(n) != kNoSlot) fn(prefix_of(n), values_[slot_of(n)]);
    if (n.child[0] != kNil) visit_subtree(n.child[0], fn);
    if (n.child[1] != kNil) visit_subtree(n.child[1], fn);
  }

  void collect_roots(std::uint32_t idx,
                     std::vector<std::pair<Prefix, const T*>>& out) const {
    const Node& n = nodes_[idx];
    if (slot_of(n) != kNoSlot) {
      out.emplace_back(prefix_of(n), &values_[slot_of(n)]);
      return;  // everything below is covered by this root
    }
    if (n.child[0] != kNil) collect_roots(n.child[0], out);
    if (n.child[1] != kNil) collect_roots(n.child[1], out);
  }

  /// Returns true if the subtree at `idx` contains any valued node. A leaf
  /// is appended *after* its children are scanned, but that is still a
  /// plain push_back in address order: if the node qualifies, its subtree
  /// contributed no entries, so the append position equals the pre-order
  /// position (unlike the old trie's O(n) mid-vector insert).
  bool collect_leaves(std::uint32_t idx,
                      std::vector<std::pair<Prefix, const T*>>& out) const {
    const Node& n = nodes_[idx];
    bool below = false;
    if (n.child[0] != kNil) below |= collect_leaves(n.child[0], out);
    if (n.child[1] != kNil) below |= collect_leaves(n.child[1], out);
    const bool valued = slot_of(n) != kNoSlot;
    if (valued && !below) {
      out.emplace_back(prefix_of(n), &values_[slot_of(n)]);
    }
    return below || valued;
  }

  std::vector<Node> nodes_;
  std::vector<T> values_;
  std::vector<JumpEntry> jump_;  // empty until build_jump_table()
  std::vector<std::uint32_t> stride24_;  // empty until build_stride_table()
  std::vector<StrideChunk> stride8_;     // one chunk per bucket with >24 masks
  std::size_t size_ = 0;
};

}  // namespace sublet
