#include "netbase/prefix_set.h"

#include <algorithm>

namespace sublet {

void PrefixSet::add(const Prefix& prefix) {
  members_.push_back(prefix);
  merged_ = false;
}

const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
PrefixSet::intervals() const {
  if (!merged_) {
    std::sort(members_.begin(), members_.end());
    intervals_.clear();
    for (const Prefix& prefix : members_) {
      std::uint64_t start = prefix.first().value();
      std::uint64_t end = static_cast<std::uint64_t>(prefix.last().value()) + 1;
      if (!intervals_.empty() && start <= intervals_.back().second) {
        intervals_.back().second = std::max(intervals_.back().second, end);
      } else {
        intervals_.emplace_back(start, end);
      }
    }
    merged_ = true;
  }
  return intervals_;
}

bool PrefixSet::contains(Ipv4Addr addr) const {
  const auto& merged = intervals();
  std::uint64_t value = addr.value();
  auto it = std::upper_bound(
      merged.begin(), merged.end(), value,
      [](std::uint64_t v, const auto& iv) { return v < iv.first; });
  if (it == merged.begin()) return false;
  --it;
  return value < it->second;
}

bool PrefixSet::covers(const Prefix& prefix) const {
  const auto& merged = intervals();
  std::uint64_t start = prefix.first().value();
  std::uint64_t end = static_cast<std::uint64_t>(prefix.last().value()) + 1;
  auto it = std::upper_bound(
      merged.begin(), merged.end(), start,
      [](std::uint64_t v, const auto& iv) { return v < iv.first; });
  if (it == merged.begin()) return false;
  --it;
  return start >= it->first && end <= it->second;
}

std::uint64_t PrefixSet::address_count() const {
  std::uint64_t total = 0;
  for (const auto& [start, end] : intervals()) total += end - start;
  return total;
}

std::vector<Prefix> PrefixSet::aggregated() const {
  std::vector<Prefix> out;
  for (const auto& [start, end] : intervals()) {
    AddrRange range{Ipv4Addr(static_cast<std::uint32_t>(start)),
                    Ipv4Addr(static_cast<std::uint32_t>(end - 1))};
    for (const Prefix& prefix : range.to_prefixes()) out.push_back(prefix);
  }
  return out;
}

}  // namespace sublet
