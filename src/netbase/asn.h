// Autonomous System Number strong type.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sublet {

/// 32-bit ASN (RFC 6793). AS0 is valid and meaningful: an AS0 ROA marks a
/// prefix as not-to-be-originated (used between leases, see paper §6.5).
class Asn {
 public:
  constexpr Asn() = default;
  constexpr explicit Asn(std::uint32_t value) : value_(value) {}

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool is_as0() const { return value_ == 0; }

  /// Parse "64500" or "AS64500" (case-insensitive).
  static std::optional<Asn> parse(std::string_view text);

  /// "AS64500".
  std::string to_string() const { return "AS" + std::to_string(value_); }

  friend constexpr auto operator<=>(Asn, Asn) = default;

 private:
  std::uint32_t value_ = 0;
};

struct AsnHash {
  std::size_t operator()(Asn asn) const {
    std::uint64_t key = asn.value();
    key ^= key >> 33;
    key *= 0xFF51AFD7ED558CCDull;
    key ^= key >> 33;
    return static_cast<std::size_t>(key);
  }
};

}  // namespace sublet
