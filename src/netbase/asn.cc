#include "netbase/asn.h"

#include "util/strings.h"

namespace sublet {

std::optional<Asn> Asn::parse(std::string_view text) {
  text = trim(text);
  if (istarts_with(text, "AS")) text.remove_prefix(2);
  auto v = parse_u32(text);
  if (!v) return std::nullopt;
  return Asn(*v);
}

}  // namespace sublet
