// PrefixSet: a set of CIDR prefixes with union/aggregation semantics.
//
// Used wherever a *population* of prefixes is treated as address space:
// "0.9% of routed v4 space was leased" needs the union size with overlaps
// counted once, and exports are tidier after aggregation (adjacent and
// nested prefixes merged into the minimal equivalent set).
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/ipv4.h"

namespace sublet {

class PrefixSet {
 public:
  void add(const Prefix& prefix);

  /// True if `addr` is inside any member prefix.
  bool contains(Ipv4Addr addr) const;

  /// True if `prefix` is entirely covered by the set's union.
  bool covers(const Prefix& prefix) const;

  /// Number of distinct addresses in the union (overlaps counted once).
  std::uint64_t address_count() const;

  /// Minimal CIDR set equal to the union: nested prefixes absorbed,
  /// adjacent aligned siblings merged. Sorted by address.
  std::vector<Prefix> aggregated() const;

  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

 private:
  /// Merged, sorted [start, end) intervals over 64-bit address space.
  /// Built lazily on first query and cached until the next add() — the
  /// query methods used to rebuild (sort + merge) this vector per call.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>>& intervals()
      const;

  mutable std::vector<Prefix> members_;
  mutable std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals_;
  mutable bool merged_ = true;
};

}  // namespace sublet
