#include "leasing/report.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/strings.h"

namespace sublet::leasing {

namespace {

std::string join_asns(const std::vector<Asn>& asns) {
  std::vector<std::string> parts;
  parts.reserve(asns.size());
  for (Asn asn : asns) parts.push_back(std::to_string(asn.value()));
  return join(parts, " ");
}

Expected<std::vector<Asn>> parse_asns(std::string_view field,
                                      std::size_t line) {
  std::vector<Asn> out;
  for (std::string_view part : split_ws(field)) {
    auto asn = Asn::parse(part);
    if (!asn) return fail("bad ASN '" + std::string(part) + "'", "", line);
    out.push_back(*asn);
  }
  return out;
}

std::vector<std::string> parse_handles(std::string_view field) {
  std::vector<std::string> out;
  for (std::string_view part : split_ws(field)) out.emplace_back(part);
  return out;
}

}  // namespace

void write_inferences_csv(std::ostream& out,
                          const std::vector<LeaseInference>& inferences) {
  CsvWriter csv(out);
  csv.write_row({"prefix", "rir", "group", "leased", "root_prefix",
                 "holder_org", "holder_asns", "leaf_origins", "root_origins",
                 "facilitators", "netname"});
  for (const LeaseInference& r : inferences) {
    csv.write_row({
        r.prefix.to_string(),
        std::string(rir_name(r.rir)),
        std::string(group_name(r.group)),
        r.leased() ? "1" : "0",
        r.root_prefix.to_string(),
        r.holder_org,
        join_asns(r.holder_asns),
        join_asns(r.leaf_origins),
        join_asns(r.root_origins),
        join(r.leaf_maintainers, " "),
        r.netname,
    });
  }
}

void save_inferences_csv(const std::string& path,
                         const std::vector<LeaseInference>& inferences) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  write_inferences_csv(out, inferences);
}

Expected<std::vector<LeaseInference>> read_inferences_csv(std::istream& in) {
  std::vector<LeaseInference> out;
  std::string line;
  std::size_t line_no = 0;
  // read_csv_record keeps quoted fields intact across embedded newlines, so
  // org names and netnames containing commas, quotes, or line breaks
  // round-trip byte-for-byte through write_inferences_csv.
  while (read_csv_record(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    auto fields = parse_csv_line(line);
    if (line_no == 1 && !fields.empty() && fields[0] == "prefix") continue;
    if (fields.size() < 11) {
      return fail("expected 11 columns", "", line_no);
    }
    LeaseInference r;
    auto prefix = Prefix::parse(fields[0]);
    auto rir = whois::rir_from_name(fields[1]);
    auto group = group_from_name(fields[2]);
    if (!prefix || !rir || !group) {
      return fail("bad prefix/rir/group in '" + line + "'", "", line_no);
    }
    r.prefix = *prefix;
    r.rir = *rir;
    r.group = *group;
    if (auto root = Prefix::parse(fields[4])) r.root_prefix = *root;
    r.holder_org = fields[5];
    auto holder_asns = parse_asns(fields[6], line_no);
    if (!holder_asns) return holder_asns.error();
    r.holder_asns = std::move(*holder_asns);
    auto leaf_origins = parse_asns(fields[7], line_no);
    if (!leaf_origins) return leaf_origins.error();
    r.leaf_origins = std::move(*leaf_origins);
    auto root_origins = parse_asns(fields[8], line_no);
    if (!root_origins) return root_origins.error();
    r.root_origins = std::move(*root_origins);
    r.leaf_maintainers = parse_handles(fields[9]);
    r.netname = fields[10];
    out.push_back(std::move(r));
  }
  return out;
}

Expected<std::vector<LeaseInference>> load_inferences_csv(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return fail("cannot open " + path);
  return read_inferences_csv(in);
}

}  // namespace sublet::leasing
