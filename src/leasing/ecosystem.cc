#include "leasing/ecosystem.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/strings.h"

namespace sublet::leasing {

Ecosystem::Ecosystem(const std::vector<LeaseInference>& inferences,
                     const asgraph::As2Org* orgs)
    : orgs_(orgs) {
  for (const LeaseInference& inference : inferences) {
    if (inference.leased()) leases_.push_back(&inference);
  }
}

namespace {
std::vector<RankedParty> rank(const std::map<std::string, std::size_t>& counts,
                              std::size_t k) {
  std::vector<RankedParty> out;
  out.reserve(counts.size());
  for (const auto& [name, count] : counts) out.push_back({name, count});
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.name < b.name;  // deterministic tie-break
  });
  if (out.size() > k) out.resize(k);
  return out;
}
}  // namespace

std::vector<RankedParty> Ecosystem::top_holders(whois::Rir rir,
                                                std::size_t k) const {
  std::map<std::string, std::size_t> counts;
  for (const LeaseInference* lease : leases_) {
    if (lease->rir != rir || lease->holder_org.empty()) continue;
    ++counts[lease->holder_org];
  }
  return rank(counts, k);
}

std::vector<RankedParty> Ecosystem::top_facilitators(whois::Rir rir,
                                                     std::size_t k) const {
  std::map<std::string, std::size_t> counts;
  for (const LeaseInference* lease : leases_) {
    if (lease->rir != rir) continue;
    for (const std::string& mnt : lease->leaf_maintainers) {
      ++counts[to_lower(mnt)];
    }
  }
  return rank(counts, k);
}

std::vector<RankedParty> Ecosystem::top_originators(std::size_t k) const {
  std::map<std::string, std::size_t> counts;
  for (const LeaseInference* lease : leases_) {
    for (Asn origin : lease->leaf_origins) {
      std::string name = origin.to_string();
      if (orgs_) {
        const std::string& org_id = orgs_->org_of(origin);
        if (!org_id.empty()) name = orgs_->org_name(org_id);
      }
      ++counts[name];
    }
  }
  return rank(counts, k);
}

std::vector<Asn> Ecosystem::lease_originators() const {
  std::set<Asn> unique;
  for (const LeaseInference* lease : leases_) {
    unique.insert(lease->leaf_origins.begin(), lease->leaf_origins.end());
  }
  return {unique.begin(), unique.end()};
}

std::vector<LeaseRoles> Ecosystem::roles() const {
  std::vector<LeaseRoles> out;
  out.reserve(leases_.size());
  for (const LeaseInference* lease : leases_) {
    LeaseRoles roles;
    roles.holder = lease->holder_org;
    if (!lease->leaf_maintainers.empty()) {
      roles.facilitator = to_lower(lease->leaf_maintainers.front());
    }
    roles.originators = lease->leaf_origins;
    // An IP holder that facilitates its own leases (Cloud-Innovation-style,
    // §2.3/§6.3) — or leases directly with no broker: the leaf carries one
    // of the root block's own maintainer handles.
    for (const std::string& mnt : lease->root_maintainers) {
      if (to_lower(mnt) == roles.facilitator) {
        roles.self_facilitated = true;
        break;
      }
    }
    out.push_back(std::move(roles));
  }
  return out;
}

}  // namespace sublet::leasing
