#include "leasing/dataset.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/log.h"
#include "util/strings.h"
#include "whoisdb/parse.h"

namespace sublet::leasing {

namespace fs = std::filesystem;

const rpki::VrpSet* DatasetBundle::current_vrps() const {
  auto timestamps = rpki_archive.timestamps();
  if (timestamps.empty()) return nullptr;
  return rpki_archive.at(timestamps.back());
}

const whois::WhoisDb* DatasetBundle::db_for(whois::Rir rir) const {
  for (const whois::WhoisDb& db : whois) {
    if (db.rir() == rir) return &db;
  }
  return nullptr;
}

namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> out;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view view = trim(line);
    if (view.empty() || view.front() == '#') continue;
    out.emplace_back(view);
  }
  return out;
}

}  // namespace

DatasetBundle load_dataset(const std::string& dir) {
  if (!fs::is_directory(dir)) {
    throw std::runtime_error("dataset directory missing: " + dir);
  }
  DatasetBundle bundle;

  // WHOIS databases.
  for (whois::Rir rir : whois::kAllRirs) {
    std::string name = to_lower(rir_name(rir));
    std::string path = dir + "/whois/" + name + ".db";
    if (!fs::exists(path)) continue;
    bundle.whois.push_back(
        whois::load_whois_file(path, rir, &bundle.diagnostics));
    SUBLET_LOG(kInfo) << "loaded " << rir_name(rir) << " WHOIS: "
                      << bundle.whois.back().block_count() << " blocks";
  }
  if (bundle.whois.empty()) {
    throw std::runtime_error("no WHOIS databases under " + dir + "/whois");
  }

  // BGP collectors.
  std::string bgp_dir = dir + "/bgp";
  if (fs::is_directory(bgp_dir)) {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(bgp_dir)) {
      if (entry.path().extension() == ".mrt") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
    for (const std::string& path : files) {
      if (auto error = bundle.rib.add_file(path)) {
        bundle.diagnostics.push_back(*error);
      }
    }
    SUBLET_LOG(kInfo) << "RIB: " << bundle.rib.prefix_count()
                      << " prefixes from " << files.size() << " collectors";
  }

  // AS-level datasets.
  std::string rel_path = dir + "/asgraph/as-rel.txt";
  if (fs::exists(rel_path)) {
    bundle.as_rel =
        asgraph::AsRelationships::load(rel_path, &bundle.diagnostics);
  }
  std::string org_path = dir + "/asgraph/as2org.txt";
  if (fs::exists(org_path)) {
    bundle.as2org = asgraph::As2Org::load(org_path, &bundle.diagnostics);
  }

  // RPKI archive.
  std::string rpki_dir = dir + "/rpki";
  if (fs::is_directory(rpki_dir)) {
    bundle.rpki_archive =
        rpki::RpkiArchive::load_directory(rpki_dir, &bundle.diagnostics);
  }

  // Abuse lists.
  std::string drop_path = dir + "/lists/asn-drop.json";
  if (fs::exists(drop_path)) {
    bundle.drop = abuse::AsnSet::load_drop(drop_path, &bundle.diagnostics);
  }
  std::string hijacker_path = dir + "/lists/serial-hijackers.txt";
  if (fs::exists(hijacker_path)) {
    bundle.hijackers =
        abuse::AsnSet::load_plain(hijacker_path, &bundle.diagnostics);
  }

  std::string transfers_path = dir + "/lists/transfers.txt";
  if (fs::exists(transfers_path)) {
    bundle.transfers =
        transfers::TransferLog::load(transfers_path, &bundle.diagnostics);
  }

  std::string geo_dir = dir + "/geo";
  if (fs::is_directory(geo_dir)) {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(geo_dir)) {
      if (entry.path().extension() == ".csv") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
    for (const std::string& path : files) {
      std::string provider = fs::path(path).stem().string();
      bundle.geodbs.push_back(
          geo::GeoDb::load_csv(path, provider, &bundle.diagnostics));
    }
  }

  // Broker lists and evaluation ISP orgs.
  for (whois::Rir rir : whois::kAllRirs) {
    std::string path =
        dir + "/lists/brokers-" + to_lower(rir_name(rir)) + ".txt";
    if (fs::exists(path)) bundle.brokers[rir] = read_lines(path);
  }
  std::string isp_path = dir + "/lists/eval-isp-orgs.txt";
  if (fs::exists(isp_path)) {
    for (const std::string& line : read_lines(isp_path)) {
      auto fields = split(line, '|');
      if (fields.size() != 2) continue;
      auto rir = whois::rir_from_name(trim(fields[0]));
      if (!rir) continue;
      bundle.eval_isp_orgs[*rir].emplace_back(trim(fields[1]));
    }
  }
  return bundle;
}

}  // namespace sublet::leasing
