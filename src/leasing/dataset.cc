#include "leasing/dataset.h"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "mrt/rib_file.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "whoisdb/parse.h"

namespace sublet::leasing {

namespace fs = std::filesystem;

const rpki::VrpSet* DatasetBundle::current_vrps() const {
  auto timestamps = rpki_archive.timestamps();
  if (timestamps.empty()) return nullptr;
  return rpki_archive.at(timestamps.back());
}

const whois::WhoisDb* DatasetBundle::db_for(whois::Rir rir) const {
  for (const whois::WhoisDb& db : whois) {
    if (db.rir() == rir) return &db;
  }
  return nullptr;
}

namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> out;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view view = trim(line);
    if (view.empty() || view.front() == '#') continue;
    out.emplace_back(view);
  }
  return out;
}

std::vector<std::string> sorted_files_with_extension(
    const std::string& dir, const std::string& extension) {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == extension) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

DatasetBundle load_dataset(const std::string& dir, LoadOptions options) {
  if (!fs::is_directory(dir)) {
    throw std::runtime_error("dataset directory missing: " + dir);
  }
  unsigned threads = par::resolve_threads(options.threads);
  DatasetBundle bundle;
  obs::ScopedSpan load_span("dataset.load");
  // TaskGroup tasks run on pool threads; hand them the stage span id so
  // their spans nest under dataset.load in the trace.
  obs::SpanId load_id = load_span.id();

  // Every independent file loads as one task. Each task writes its own
  // result slot and diagnostic sink; after the join, slots merge in the
  // serial load order so the bundle (including diagnostics order) is
  // identical to a single-threaded load.
  par::TaskGroup group(threads);

  // WHOIS databases.
  constexpr std::size_t kRirCount = whois::kAllRirs.size();
  std::array<std::optional<whois::WhoisDb>, kRirCount> whois_dbs;
  std::array<std::vector<Error>, kRirCount> whois_diags;
  std::array<std::string, kRirCount> whois_paths;
  std::size_t whois_present = 0;
  for (std::size_t i = 0; i < kRirCount; ++i) {
    std::string path =
        dir + "/whois/" + to_lower(rir_name(whois::kAllRirs[i])) + ".db";
    if (!fs::exists(path)) continue;
    whois_paths[i] = std::move(path);
    ++whois_present;
  }
  // Databases are also chunk-parallel internally; split the budget so the
  // fan-out stays near `threads` total workers.
  unsigned per_db_threads = std::max<unsigned>(
      1, threads / static_cast<unsigned>(std::max<std::size_t>(
             whois_present, 1)));
  for (std::size_t i = 0; i < kRirCount; ++i) {
    if (whois_paths[i].empty()) continue;
    group.run([&, i] {
      obs::ScopedSpan task("dataset.whois", load_id);
      whois_dbs[i] = whois::load_whois_file(
          whois_paths[i], whois::kAllRirs[i], &whois_diags[i],
          per_db_threads);
      task.add_records(whois_dbs[i]->block_count());
    });
  }

  // BGP collectors: decode every MRT file concurrently, then union the
  // snapshots into the RIB in file order.
  std::string bgp_dir = dir + "/bgp";
  std::vector<std::string> bgp_files;
  if (fs::is_directory(bgp_dir)) {
    bgp_files = sorted_files_with_extension(bgp_dir, ".mrt");
  }
  std::vector<std::optional<Expected<mrt::RibSnapshot>>> snapshots(
      bgp_files.size());
  for (std::size_t i = 0; i < bgp_files.size(); ++i) {
    group.run([&, i] {
      obs::ScopedSpan task("dataset.mrt", load_id);
      snapshots[i] = mrt::read_rib_file(bgp_files[i]);
    });
  }

  // AS-level datasets.
  std::vector<Error> as_rel_diags, as2org_diags;
  std::string rel_path = dir + "/asgraph/as-rel.txt";
  if (fs::exists(rel_path)) {
    group.run([&] {
      bundle.as_rel = asgraph::AsRelationships::load(rel_path, &as_rel_diags);
    });
  }
  std::string org_path = dir + "/asgraph/as2org.txt";
  if (fs::exists(org_path)) {
    group.run(
        [&] { bundle.as2org = asgraph::As2Org::load(org_path, &as2org_diags); });
  }

  // RPKI archive.
  std::vector<Error> rpki_diags;
  std::string rpki_dir = dir + "/rpki";
  if (fs::is_directory(rpki_dir)) {
    group.run([&] {
      bundle.rpki_archive =
          rpki::RpkiArchive::load_directory(rpki_dir, &rpki_diags);
    });
  }

  // Abuse lists.
  std::vector<Error> drop_diags, hijacker_diags, transfer_diags;
  std::string drop_path = dir + "/lists/asn-drop.json";
  if (fs::exists(drop_path)) {
    group.run(
        [&] { bundle.drop = abuse::AsnSet::load_drop(drop_path, &drop_diags); });
  }
  std::string hijacker_path = dir + "/lists/serial-hijackers.txt";
  if (fs::exists(hijacker_path)) {
    group.run([&] {
      bundle.hijackers =
          abuse::AsnSet::load_plain(hijacker_path, &hijacker_diags);
    });
  }

  std::string transfers_path = dir + "/lists/transfers.txt";
  if (fs::exists(transfers_path)) {
    group.run([&] {
      bundle.transfers =
          transfers::TransferLog::load(transfers_path, &transfer_diags);
    });
  }

  // Geolocation snapshots, one task per provider CSV.
  std::string geo_dir = dir + "/geo";
  std::vector<std::string> geo_files;
  if (fs::is_directory(geo_dir)) {
    geo_files = sorted_files_with_extension(geo_dir, ".csv");
  }
  std::vector<std::optional<geo::GeoDb>> geodbs(geo_files.size());
  std::vector<std::vector<Error>> geo_diags(geo_files.size());
  for (std::size_t i = 0; i < geo_files.size(); ++i) {
    group.run([&, i] {
      geodbs[i] = geo::GeoDb::load_csv(
          geo_files[i], fs::path(geo_files[i]).stem().string(), &geo_diags[i]);
    });
  }

  group.wait();

  // Merge barrier: everything below replays the serial load order.
  for (std::size_t i = 0; i < kRirCount; ++i) {
    if (!whois_dbs[i]) continue;
    bundle.whois.push_back(std::move(*whois_dbs[i]));
    bundle.diagnostics.insert(bundle.diagnostics.end(),
                              whois_diags[i].begin(), whois_diags[i].end());
    SUBLET_LOG(kInfo) << "loaded " << rir_name(whois::kAllRirs[i])
                      << " WHOIS: " << bundle.whois.back().block_count()
                      << " blocks";
  }
  if (bundle.whois.empty()) {
    throw std::runtime_error("no WHOIS databases under " + dir + "/whois");
  }

  {
    obs::ScopedSpan rib_span("rib.load");
    std::size_t rib_snapshots = 0;
    for (auto& snapshot : snapshots) {
      if (!*snapshot) {
        bundle.diagnostics.push_back(snapshot->error());
      } else {
        bundle.rib.add_snapshot(**snapshot);
        ++rib_snapshots;
      }
    }
    // One sort/unique pass over all origin sets, instead of paying it
    // lazily under the first query (which may come from a classification
    // thread).
    bundle.rib.freeze();
    rib_span.add_records(bundle.rib.prefix_count());
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("sublet_rib_snapshots_total",
                "MRT RIB snapshots merged into the routing table")
        .add(rib_snapshots);
    reg.gauge("sublet_rib_prefixes",
              "Prefixes in the most recently loaded RIB")
        .set(static_cast<std::int64_t>(bundle.rib.prefix_count()));
  }
  if (!bgp_files.empty()) {
    SUBLET_LOG(kInfo) << "RIB: " << bundle.rib.prefix_count()
                      << " prefixes from " << bgp_files.size()
                      << " collectors";
  }

  for (auto* diags : {&as_rel_diags, &as2org_diags, &rpki_diags, &drop_diags,
                      &hijacker_diags, &transfer_diags}) {
    bundle.diagnostics.insert(bundle.diagnostics.end(), diags->begin(),
                              diags->end());
  }
  for (std::size_t i = 0; i < geo_files.size(); ++i) {
    bundle.geodbs.push_back(std::move(*geodbs[i]));
    bundle.diagnostics.insert(bundle.diagnostics.end(), geo_diags[i].begin(),
                              geo_diags[i].end());
  }

  // Broker lists and evaluation ISP orgs.
  for (whois::Rir rir : whois::kAllRirs) {
    std::string path =
        dir + "/lists/brokers-" + to_lower(rir_name(rir)) + ".txt";
    if (fs::exists(path)) bundle.brokers[rir] = read_lines(path);
  }
  std::string isp_path = dir + "/lists/eval-isp-orgs.txt";
  if (fs::exists(isp_path)) {
    for (const std::string& line : read_lines(isp_path)) {
      auto fields = split(line, '|');
      if (fields.size() != 2) continue;
      auto rir = whois::rir_from_name(trim(fields[0]));
      if (!rir) continue;
      bundle.eval_isp_orgs[*rir].emplace_back(trim(fields[1]));
    }
  }
  return bundle;
}

DatasetBundle load_dataset(const std::string& dir) {
  return load_dataset(dir, LoadOptions{});
}

}  // namespace sublet::leasing
