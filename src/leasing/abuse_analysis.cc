#include "leasing/abuse_analysis.h"

#include <set>

namespace sublet::leasing {

AbuseAnalysis::AbuseAnalysis(const std::vector<LeaseInference>& inferences,
                             const bgp::Rib& rib)
    : rib_(rib) {
  for (const LeaseInference& inference : inferences) {
    if (!inference.leased()) continue;
    leases_.push_back(&inference);
    leased_by_prefix_.emplace(inference.prefix, &inference);
  }
}

namespace {
bool any_listed(const std::vector<Asn>& asns, const abuse::AsnSet& listed) {
  for (Asn asn : asns) {
    if (listed.contains(asn)) return true;
  }
  return false;
}
}  // namespace

OverlapStats AbuseAnalysis::prefix_overlap(const abuse::AsnSet& listed) const {
  OverlapStats stats;
  stats.leased_total = leases_.size();
  for (const LeaseInference* lease : leases_) {
    if (any_listed(lease->leaf_origins, listed)) ++stats.leased_listed;
  }
  rib_.visit([&](const Prefix& prefix, const bgp::RouteInfo& info) {
    if (leased_by_prefix_.contains(prefix)) return;
    ++stats.nonleased_total;
    if (any_listed(info.origins, listed)) ++stats.nonleased_listed;
  });
  return stats;
}

OriginatorStats AbuseAnalysis::originator_overlap(
    const abuse::AsnSet& listed) const {
  OriginatorStats stats;
  std::set<Asn> originators;
  for (const LeaseInference* lease : leases_) {
    originators.insert(lease->leaf_origins.begin(),
                       lease->leaf_origins.end());
    ++stats.leased_prefixes_total;
    if (any_listed(lease->leaf_origins, listed)) {
      ++stats.leased_prefixes_by_listed;
    }
  }
  stats.originators_total = originators.size();
  for (Asn asn : originators) {
    if (listed.contains(asn)) ++stats.originators_listed;
  }
  return stats;
}

RoaStats AbuseAnalysis::roa_overlap(const rpki::VrpSet& vrps,
                                    const abuse::AsnSet& listed) const {
  RoaStats stats;
  std::set<rpki::Roa> leased_roas;
  for (const LeaseInference* lease : leases_) {
    auto covering = vrps.covering(lease->prefix);
    if (!covering.empty()) ++stats.leased_with_roa;
    leased_roas.insert(covering.begin(), covering.end());
  }
  stats.leased_roas_total = leased_roas.size();
  for (const rpki::Roa& roa : leased_roas) {
    if (listed.contains(roa.asn)) ++stats.leased_roas_listed;
  }

  std::set<rpki::Roa> nonleased_roas;
  rib_.visit([&](const Prefix& prefix, const bgp::RouteInfo&) {
    if (leased_by_prefix_.contains(prefix)) return;
    auto covering = vrps.covering(prefix);
    if (!covering.empty()) ++stats.nonleased_with_roa;
    nonleased_roas.insert(covering.begin(), covering.end());
  });
  stats.nonleased_roas_total = nonleased_roas.size();
  for (const rpki::Roa& roa : nonleased_roas) {
    if (listed.contains(roa.asn)) ++stats.nonleased_roas_listed;
  }
  return stats;
}

ValidityBreakdown AbuseAnalysis::validity_breakdown(
    const rpki::VrpSet& vrps) const {
  ValidityBreakdown out;
  auto tally = [&](rpki::Validity validity, bool leased) {
    switch (validity) {
      case rpki::Validity::kValid:
        (leased ? out.leased_valid : out.nonleased_valid) += 1;
        break;
      case rpki::Validity::kInvalid:
        (leased ? out.leased_invalid : out.nonleased_invalid) += 1;
        break;
      case rpki::Validity::kNotFound:
        (leased ? out.leased_notfound : out.nonleased_notfound) += 1;
        break;
    }
  };
  rib_.visit([&](const Prefix& prefix, const bgp::RouteInfo& info) {
    if (info.origins.empty()) return;
    bool leased = leased_by_prefix_.contains(prefix);
    tally(vrps.validate(prefix, info.origins.front()), leased);
  });
  return out;
}

}  // namespace sublet::leasing
