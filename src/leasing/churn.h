// Lease-market dynamics: diff two inference runs — paper §8's future work
// ("longitudinally assess IP leasing market dynamics").
//
// Short-term VPN leasing, BYOIP cycling, and blocklist-escape behavior all
// show up as churn between monthly measurement epochs: leases that start,
// end, or move to a different lessee.
#pragma once

#include <vector>

#include "leasing/types.h"

namespace sublet::leasing {

struct LeaseChurn {
  std::vector<Prefix> started;         ///< leased now, not in the old run
  std::vector<Prefix> ended;           ///< leased before, not now
  std::vector<Prefix> lessee_changed;  ///< leased in both, different origins
  std::vector<Prefix> stable;          ///< leased in both, same origins

  std::size_t total_before() const {
    return ended.size() + lessee_changed.size() + stable.size();
  }
  std::size_t total_after() const {
    return started.size() + lessee_changed.size() + stable.size();
  }
  /// Fraction of the old lease population that changed state.
  double churn_rate() const {
    std::size_t before = total_before();
    return before ? static_cast<double>(ended.size() +
                                        lessee_changed.size()) /
                        static_cast<double>(before)
                  : 0.0;
  }
};

/// Compare two epochs of inference results on prefix identity and lease
/// origin sets. Prefixes classified in only one run are considered
/// non-leased in the other (registry changes between epochs).
LeaseChurn diff_inferences(const std::vector<LeaseInference>& before,
                           const std::vector<LeaseInference>& after);

}  // namespace sublet::leasing
