// Abuse cross-referencing — paper §6.3 (serial hijackers) and §6.4
// (Spamhaus ASN-DROP, ROAs authorizing blocklisted ASes).
#pragma once

#include <vector>

#include "abuse/asn_lists.h"
#include "bgp/rib.h"
#include "leasing/types.h"
#include "rpki/roa.h"

namespace sublet::leasing {

/// Leased-vs-non-leased overlap with a blocklist, by prefix counts.
struct OverlapStats {
  std::size_t leased_total = 0;
  std::size_t leased_listed = 0;       ///< leased prefixes with listed origin
  std::size_t nonleased_total = 0;
  std::size_t nonleased_listed = 0;

  double leased_fraction() const {
    return leased_total ? static_cast<double>(leased_listed) / leased_total : 0;
  }
  double nonleased_fraction() const {
    return nonleased_total
               ? static_cast<double>(nonleased_listed) / nonleased_total
               : 0;
  }
  /// The paper's headline "five times more likely" ratio.
  double risk_ratio() const {
    double base = nonleased_fraction();
    return base > 0 ? leased_fraction() / base : 0;
  }
};

/// Originator-level overlap (§6.3): how many lease-originating ASes are on
/// the list, and what share of leased prefixes they originate.
struct OriginatorStats {
  std::size_t originators_total = 0;
  std::size_t originators_listed = 0;
  std::size_t leased_prefixes_total = 0;
  std::size_t leased_prefixes_by_listed = 0;
};

/// ROA-level overlap (§6.4): prefixes with ROAs, and ROAs containing listed
/// ASNs, split leased vs non-leased.
struct RoaStats {
  std::size_t leased_with_roa = 0;
  std::size_t leased_roas_total = 0;      ///< distinct ROAs covering leases
  std::size_t leased_roas_listed = 0;
  std::size_t nonleased_with_roa = 0;
  std::size_t nonleased_roas_total = 0;
  std::size_t nonleased_roas_listed = 0;
};

/// RFC 6811 validation-state distribution, leased vs non-leased (§6.4
/// extension: how RPKI-covered each population actually is).
struct ValidityBreakdown {
  std::size_t leased_valid = 0;
  std::size_t leased_invalid = 0;
  std::size_t leased_notfound = 0;
  std::size_t nonleased_valid = 0;
  std::size_t nonleased_invalid = 0;
  std::size_t nonleased_notfound = 0;

  std::size_t leased_total() const {
    return leased_valid + leased_invalid + leased_notfound;
  }
  std::size_t nonleased_total() const {
    return nonleased_valid + nonleased_invalid + nonleased_notfound;
  }
};

class AbuseAnalysis {
 public:
  /// `inferences` must cover every classified leaf; non-leased prefixes are
  /// everything in `rib` that is not an inferred lease.
  AbuseAnalysis(const std::vector<LeaseInference>& inferences,
                const bgp::Rib& rib);

  /// Prefix-level overlap with a blocklist (DROP or hijacker list).
  OverlapStats prefix_overlap(const abuse::AsnSet& listed) const;

  /// Originator-level overlap (§6.3).
  OriginatorStats originator_overlap(const abuse::AsnSet& listed) const;

  /// ROA overlap (§6.4).
  RoaStats roa_overlap(const rpki::VrpSet& vrps,
                       const abuse::AsnSet& listed) const;

  /// Per-route RFC 6811 validity (each routed prefix validated against its
  /// first observed origin), split leased vs non-leased.
  ValidityBreakdown validity_breakdown(const rpki::VrpSet& vrps) const;

 private:
  const bgp::Rib& rib_;
  std::vector<const LeaseInference*> leases_;
  std::unordered_map<Prefix, const LeaseInference*, PrefixHash> leased_by_prefix_;
};

}  // namespace sublet::leasing
