// Evaluation against a curated reference dataset — paper §5.3, §6.2, §A.
//
// Positives come from registered IP brokers: broker company names are
// matched (with normalization for legal-suffix variants) to WHOIS
// organisation objects, the orgs' maintainer handles collected, and every
// address block carrying one of those maintainers becomes a candidate
// positive; blocks where the broker itself provides connectivity are
// filtered out. Negatives are blocks of known residential ISPs originated
// in BGP by the ISPs' own ASNs.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/rib.h"
#include "leasing/types.h"
#include "whoisdb/alloc_tree.h"
#include "whoisdb/model.h"

namespace sublet::leasing {

/// Confusion matrix + the information-retrieval metrics of appendix A.
struct ConfusionMatrix {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;

  std::size_t total() const { return tp + fp + tn + fn; }
  double precision() const { return ratio(tp, tp + fp); }
  double recall() const { return ratio(tp, tp + fn); }
  double specificity() const { return ratio(tn, tn + fp); }
  double npv() const { return ratio(tn, tn + fn); }
  double accuracy() const { return ratio(tp + tn, total()); }

 private:
  static double ratio(std::size_t num, std::size_t den) {
    return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
  }
};

/// Labeled prefixes: true = actually leased.
struct ReferenceDataset {
  std::unordered_map<Prefix, bool, PrefixHash> labels;

  std::size_t positives() const;
  std::size_t negatives() const { return labels.size() - positives(); }
  void add(const Prefix& prefix, bool leased) { labels[prefix] = leased; }
};

/// Result of mapping registered brokers into one RIR's database.
struct BrokerMatch {
  std::vector<std::string> matched_org_ids;  ///< orgs found for brokers
  std::size_t direct_matches = 0;            ///< exact normalized-name hits
  std::size_t fuzzy_matches = 0;             ///< suffix-normalized hits
  std::size_t unmatched = 0;                 ///< brokers absent from the db
  std::vector<std::string> maintainers;      ///< the orgs' handles
  std::vector<Prefix> prefixes;              ///< blocks with those handles
  std::size_t filtered_not_leased = 0;       ///< broker-as-ISP blocks removed
};

/// Map broker company names to orgs and their maintained blocks (§5.3).
/// Candidate blocks are taken straight from the WHOIS database (so legacy
/// blocks — which the pipeline cannot classify — still become reference
/// positives, the paper's 138 legacy FNs). Portable blocks are skipped
/// (brokers holding their own portable space are not leasing it *from*
/// anyone at the granularity we label). A block is filtered out (broker
/// acting as ISP) when its BGP origin is one of the broker org's own
/// RIR-assigned ASNs. Hyper-specifics longer than `max_prefix_len` are
/// ignored, mirroring the pipeline's step 2.
BrokerMatch match_brokers(const whois::WhoisDb& db,
                          const std::vector<std::string>& broker_names,
                          const bgp::Rib& rib, int max_prefix_len = 24);

/// Negative labels: blocks of the given ISP orgs that are originated in BGP
/// by one of the org's own ASNs.
std::vector<Prefix> isp_negatives(const whois::WhoisDb& db,
                                  const std::vector<std::string>& isp_org_ids,
                                  const whois::AllocationTree& tree,
                                  const bgp::Rib& rib);

/// Score inferences against the reference: a labeled prefix missing from
/// `results` counts as predicted non-leased (this is how legacy blocks
/// become false negatives in the paper).
ConfusionMatrix evaluate(const std::vector<LeaseInference>& results,
                         const ReferenceDataset& reference);

}  // namespace sublet::leasing
