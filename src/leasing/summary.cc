#include "leasing/summary.h"

#include <sstream>

#include "leasing/abuse_analysis.h"
#include "leasing/ecosystem.h"
#include "leasing/pipeline.h"
#include "netbase/prefix_set.h"
#include "util/table.h"

namespace sublet::leasing {

std::string render_summary(const DatasetBundle& bundle,
                           const std::vector<LeaseInference>& results) {
  std::ostringstream out;

  // Per-RIR group breakdown.
  TextTable groups({"RIR", "Unused", "Aggregated", "ISP cust", "Leased g3",
                    "Delegated", "Leased g4", "Leased", "Total"});
  GroupCounts all;
  for (whois::Rir rir : whois::kAllRirs) {
    GroupCounts counts;
    for (const auto& r : results) {
      if (r.rir == rir) counts.add(r.group);
    }
    if (counts.total() == 0) continue;
    groups.add_row({std::string(rir_name(rir)), with_commas(counts.unused),
                    with_commas(counts.aggregated_customer),
                    with_commas(counts.isp_customer),
                    with_commas(counts.leased_g3),
                    with_commas(counts.delegated_customer),
                    with_commas(counts.leased_g4),
                    with_commas(counts.leased()),
                    with_commas(counts.total())});
  }
  for (const auto& r : results) all.add(r.group);
  out << "== Inference groups per region ==\n" << groups.to_string() << "\n";

  // Headline shares.
  std::size_t routed = bundle.rib.prefix_count();
  PrefixSet leased_space;
  for (const auto& r : results) {
    if (r.leased()) leased_space.add(r.prefix);
  }
  std::uint64_t routed_space = bundle.rib.routed_address_space();
  out << "Leased prefixes: " << with_commas(all.leased()) << " of "
      << with_commas(routed) << " routed ("
      << percent(routed ? static_cast<double>(all.leased()) / routed : 0)
      << ")\n";
  if (routed_space > 0) {
    out << "Leased address space: "
        << percent(static_cast<double>(leased_space.address_count()) /
                   static_cast<double>(routed_space))
        << " of routed space\n";
  }

  // Market leaders.
  Ecosystem eco(results, &bundle.as2org);
  out << "\n== Top holders ==\n";
  for (whois::Rir rir : whois::kAllRirs) {
    auto top = eco.top_holders(rir, 1);
    if (top.empty()) continue;
    std::string name = top[0].name;
    if (const whois::WhoisDb* db = bundle.db_for(rir)) {
      if (const whois::OrgRec* org = db->org(name)) {
        if (!org->name.empty()) name = org->name;
      }
    }
    out << "  " << rir_name(rir) << ": " << name << " ("
        << with_commas(top[0].count) << " leases)\n";
  }
  auto facilitators = eco.top_facilitators(whois::Rir::kRipe, 3);
  if (!facilitators.empty()) {
    out << "\n== Top RIPE facilitators ==\n";
    for (const auto& f : facilitators) {
      out << "  " << f.name << " (" << with_commas(f.count) << ")\n";
    }
  }

  // Abuse ratios, when lists are available.
  if (bundle.drop.size() > 0) {
    AbuseAnalysis analysis(results, bundle.rib);
    auto drop = analysis.prefix_overlap(bundle.drop);
    out << "\n== Abuse ==\n";
    out << "  DROP-originated: leased " << percent(drop.leased_fraction())
        << " vs non-leased " << percent(drop.nonleased_fraction()) << " ("
        << fixed(drop.risk_ratio(), 1) << "x)\n";
    if (bundle.hijackers.size() > 0) {
      auto hijack = analysis.prefix_overlap(bundle.hijackers);
      out << "  hijacker-originated: leased "
          << percent(hijack.leased_fraction()) << " vs non-leased "
          << percent(hijack.nonleased_fraction()) << "\n";
    }
  }
  return out.str();
}

}  // namespace sublet::leasing
