// Inference serialization — the released-artifact format.
//
// The paper publishes its inferred leases (appendix C); this module writes
// and reads the same kind of artifact: one CSV row per classified leaf with
// the verdict and the evidence columns, so downstream users (threat intel,
// operators) can consume inferences without running the pipeline.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "leasing/types.h"
#include "util/expected.h"

namespace sublet::leasing {

/// Write one row per inference:
///   prefix,rir,group,leased,root_prefix,holder_org,holder_asns,
///   leaf_origins,root_origins,facilitators,netname
void write_inferences_csv(std::ostream& out,
                          const std::vector<LeaseInference>& inferences);
void save_inferences_csv(const std::string& path,
                         const std::vector<LeaseInference>& inferences);

/// Read the artifact back. Unknown group names or bad prefixes yield an
/// Error (the artifact is machine-written; damage means the wrong file).
/// Quoted fields round-trip exactly, including embedded separators,
/// quotes, and newlines (group_from_name lives in leasing/types.h).
Expected<std::vector<LeaseInference>> read_inferences_csv(std::istream& in);
Expected<std::vector<LeaseInference>> load_inferences_csv(
    const std::string& path);

}  // namespace sublet::leasing
