#include "leasing/churn.h"

#include <algorithm>
#include <unordered_map>

namespace sublet::leasing {

LeaseChurn diff_inferences(const std::vector<LeaseInference>& before,
                           const std::vector<LeaseInference>& after) {
  std::unordered_map<Prefix, const LeaseInference*, PrefixHash> old_leases;
  for (const LeaseInference& r : before) {
    if (r.leased()) old_leases.emplace(r.prefix, &r);
  }

  LeaseChurn churn;
  std::unordered_map<Prefix, bool, PrefixHash> seen_old(old_leases.size());
  for (const LeaseInference& r : after) {
    if (!r.leased()) continue;
    auto it = old_leases.find(r.prefix);
    if (it == old_leases.end()) {
      churn.started.push_back(r.prefix);
      continue;
    }
    seen_old[r.prefix] = true;
    if (it->second->leaf_origins == r.leaf_origins) {
      churn.stable.push_back(r.prefix);
    } else {
      churn.lessee_changed.push_back(r.prefix);
    }
  }
  for (const auto& [prefix, inference] : old_leases) {
    if (!seen_old.contains(prefix)) churn.ended.push_back(prefix);
  }
  std::sort(churn.started.begin(), churn.started.end());
  std::sort(churn.ended.begin(), churn.ended.end());
  std::sort(churn.lessee_changed.begin(), churn.lessee_changed.end());
  std::sort(churn.stable.begin(), churn.stable.end());
  return churn;
}

}  // namespace sublet::leasing
