// Core types of the lease-inference pipeline (paper §5.2).
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/asn.h"
#include "netbase/ipv4.h"
#include "whoisdb/rir.h"

namespace sublet::leasing {

/// The six outcomes of the paper's step-5 decision procedure.
enum class InferenceGroup {
  kUnused,              ///< group 1: neither leaf nor root originated
  kAggregatedCustomer,  ///< group 2: only the root originated
  kIspCustomer,         ///< group 3, origin related to the holder
  kLeasedNoRoot,        ///< group 3, origin unrelated -> leased
  kDelegatedCustomer,   ///< group 4, origin related to holder or root origin
  kLeasedWithRoot,      ///< group 4, origin unrelated -> leased
};

constexpr bool is_leased(InferenceGroup group) {
  return group == InferenceGroup::kLeasedNoRoot ||
         group == InferenceGroup::kLeasedWithRoot;
}

constexpr std::string_view group_name(InferenceGroup group) {
  switch (group) {
    case InferenceGroup::kUnused: return "unused";
    case InferenceGroup::kAggregatedCustomer: return "aggregated-customer";
    case InferenceGroup::kIspCustomer: return "isp-customer";
    case InferenceGroup::kLeasedNoRoot: return "leased(g3)";
    case InferenceGroup::kDelegatedCustomer: return "delegated-customer";
    case InferenceGroup::kLeasedWithRoot: return "leased(g4)";
  }
  return "?";
}

/// Every enumerator, in declaration order. A new group must be added here
/// (and given a label) or the static_assert below fails to compile.
inline constexpr std::array<InferenceGroup, 6> kAllInferenceGroups = {
    InferenceGroup::kUnused,           InferenceGroup::kAggregatedCustomer,
    InferenceGroup::kIspCustomer,      InferenceGroup::kLeasedNoRoot,
    InferenceGroup::kDelegatedCustomer, InferenceGroup::kLeasedWithRoot};

/// Parse a group label written by group_name().
constexpr std::optional<InferenceGroup> group_from_name(
    std::string_view name) {
  for (InferenceGroup group : kAllInferenceGroups) {
    if (name == group_name(group)) return group;
  }
  return std::nullopt;
}

// Exhaustiveness: every enumerator has a real label (not the "?" fallback)
// and round-trips through group_from_name, so a future group can't silently
// serialize as "?" and fail to parse back. kAllInferenceGroups itself is
// kept complete by -Wswitch on the switches above: an unlisted enumerator
// shows up as an unhandled case the moment group_name() is touched.
static_assert(
    [] {
      for (InferenceGroup group : kAllInferenceGroups) {
        if (group_name(group) == "?") return false;
        if (group_from_name(group_name(group)) != group) return false;
      }
      return true;
    }(),
    "every InferenceGroup must round-trip through group_name/group_from_name");

/// Numeric group (1-4) as the paper's Table 1 reports it.
constexpr int group_number(InferenceGroup group) {
  switch (group) {
    case InferenceGroup::kUnused: return 1;
    case InferenceGroup::kAggregatedCustomer: return 2;
    case InferenceGroup::kIspCustomer:
    case InferenceGroup::kLeasedNoRoot: return 3;
    case InferenceGroup::kDelegatedCustomer:
    case InferenceGroup::kLeasedWithRoot: return 4;
  }
  return 0;
}

/// One classified leaf prefix with the evidence behind the verdict.
struct LeaseInference {
  Prefix prefix;                    ///< the leaf (lease candidate)
  whois::Rir rir = whois::Rir::kRipe;
  InferenceGroup group = InferenceGroup::kUnused;

  // Evidence (paper Figure 2's colored components).
  Prefix root_prefix;               ///< covering portable block
  std::string holder_org;           ///< root's org handle (IP holder, green)
  std::vector<Asn> holder_asns;     ///< RIR-assigned ASes of the holder
  std::vector<Asn> leaf_origins;    ///< leaf's BGP origins (originator, blue)
  std::vector<Asn> root_origins;    ///< root's BGP origins
  std::vector<std::string> leaf_maintainers;  ///< facilitator handle, purple
  std::vector<std::string> root_maintainers;  ///< the holder's handles
  std::string netname;

  bool leased() const { return is_leased(group); }
};

}  // namespace sublet::leasing
