// Maintainer-comparison baseline — Prehn et al., CoNEXT 2020 (§6.1).
//
// The prior method classifies an address block as leased when its
// maintainers differ from its parent block's maintainers. The paper argues
// this yields false positives (customers registering their own maintainer)
// and false negatives (holders leasing directly under their own
// maintainer), but detects inactive leases that the BGP-based method files
// under Unused. This module implements the baseline and the comparison.
#pragma once

#include <vector>

#include "leasing/types.h"
#include "whoisdb/alloc_tree.h"
#include "whoisdb/model.h"

namespace sublet::leasing {

/// One baseline verdict per leaf.
struct BaselineInference {
  Prefix prefix;
  whois::Rir rir = whois::Rir::kRipe;
  bool leased = false;  ///< maintainers differ from the parent block's
};

/// Classify every leaf of `db`'s allocation tree by maintainer comparison
/// against the nearest ancestor block (the parent in the allocation tree).
std::vector<BaselineInference> maintainer_baseline(
    const whois::WhoisDb& db, whois::AllocOptions options = {});

/// Agreement between the BGP-based method and the baseline on the same
/// leaf set.
struct MethodComparison {
  std::size_t both_leased = 0;
  std::size_t ours_only = 0;      ///< BGP method leased, baseline not
  std::size_t baseline_only = 0;  ///< baseline leased, BGP method not
  std::size_t neither = 0;
  /// Baseline-only verdicts where our method said Unused: the inactive
  /// leases the paper concedes the baseline catches.
  std::size_t baseline_only_unused = 0;

  std::size_t total() const {
    return both_leased + ours_only + baseline_only + neither;
  }
};

MethodComparison compare_methods(const std::vector<LeaseInference>& ours,
                                 const std::vector<BaselineInference>& prior);

}  // namespace sublet::leasing
