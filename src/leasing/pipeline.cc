#include "leasing/pipeline.h"

#include <array>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace sublet::leasing {

namespace {
// Shared "no origins" placeholder for leaves that are their own root. At
// namespace scope (not function-local static) so classify_leaf — the
// per-leaf hot path on every classification thread — skips the thread-safe
// initialization guard a local static would re-check on each call.
const std::vector<Asn> kNoOrigins;

/// Per-group classification counters, indexed by enumerator order.
obs::Counter& classify_counter(InferenceGroup group) {
  static std::array<obs::Counter*, kAllInferenceGroups.size()> counters = [] {
    std::array<obs::Counter*, kAllInferenceGroups.size()> out{};
    auto& reg = obs::MetricsRegistry::global();
    for (std::size_t i = 0; i < kAllInferenceGroups.size(); ++i) {
      out[i] = &reg.counter(
          obs::labeled("sublet_classify_leaves_total", "group",
                       group_name(kAllInferenceGroups[i])),
          "Classified leaf allocations by inference group");
    }
    return out;
  }();
  return *counters[static_cast<std::size_t>(group)];
}

/// Register the family at program start so a process that never classifies
/// (e.g. `sublet serve`) still exports it at zero.
const bool g_classify_metrics_registered = [] {
  classify_counter(InferenceGroup::kUnused);
  return true;
}();
}  // namespace

void GroupCounts::add(InferenceGroup group) {
  switch (group) {
    case InferenceGroup::kUnused: ++unused; break;
    case InferenceGroup::kAggregatedCustomer: ++aggregated_customer; break;
    case InferenceGroup::kIspCustomer: ++isp_customer; break;
    case InferenceGroup::kLeasedNoRoot: ++leased_g3; break;
    case InferenceGroup::kDelegatedCustomer: ++delegated_customer; break;
    case InferenceGroup::kLeasedWithRoot: ++leased_g4; break;
  }
}

Pipeline::Pipeline(const bgp::Rib& rib, const asgraph::AsGraph& graph,
                   PipelineOptions options)
    : rib_(rib), graph_(graph), options_(options) {}

LeaseInference Pipeline::classify_leaf(const whois::AllocEntry& leaf,
                                       const whois::AllocationTree& tree,
                                       const whois::WhoisDb& db) const {
  LeaseInference out;
  out.prefix = leaf.first;
  out.rir = db.rir();
  out.netname = leaf.second->netname;
  out.leaf_maintainers = leaf.second->maintainers;

  // Root of the leaf in the allocation tree (paper step 2).
  auto root = tree.root_of(leaf.first);
  if (root) {
    out.root_prefix = root->first;
    out.holder_org = root->second->org_id;
    out.root_maintainers = root->second->maintainers;
    // Step 3: the holder's RIR-assigned ASNs via the org join.
    if (!out.holder_org.empty()) {
      out.holder_asns = db.asns_for_org(out.holder_org);
    }
  }

  // Step 4: BGP origins. Leaves require an exact match; roots fall back to
  // the least-specific covering prefix (aggregated portable blocks).
  if (const bgp::RouteInfo* info = rib_.exact(leaf.first)) {
    out.leaf_origins = info->origins;
  }
  if (root) {
    if (const bgp::RouteInfo* info = rib_.exact(root->first)) {
      out.root_origins = info->origins;
    } else if (options_.root_covering_fallback) {
      if (auto hit = rib_.least_specific_covering(root->first)) {
        out.root_origins = hit->second->origins;
      }
    }
  }
  // A leaf that is its own root has no separate parent origination: treat
  // the root side as unoriginated so the leaf is judged on its own origin.
  bool leaf_is_root = root && root->first == leaf.first;
  const std::vector<Asn>& root_origins =
      leaf_is_root ? kNoOrigins : out.root_origins;

  // Step 5: the four-way decision.
  bool leaf_lit = !out.leaf_origins.empty();
  bool root_lit = !root_origins.empty();
  if (!leaf_lit && !root_lit) {
    out.group = InferenceGroup::kUnused;
  } else if (!leaf_lit && root_lit) {
    out.group = InferenceGroup::kAggregatedCustomer;
  } else if (leaf_lit && !root_lit) {
    bool related = false;
    for (Asn origin : out.leaf_origins) {
      if (graph_.related_to_any(origin, out.holder_asns)) {
        related = true;
        break;
      }
    }
    out.group = related ? InferenceGroup::kIspCustomer
                        : InferenceGroup::kLeasedNoRoot;
  } else {
    bool related = false;
    for (Asn origin : out.leaf_origins) {
      if (graph_.related_to_any(origin, out.holder_asns) ||
          graph_.related_to_any(origin, root_origins)) {
        related = true;
        break;
      }
    }
    out.group = related ? InferenceGroup::kDelegatedCustomer
                        : InferenceGroup::kLeasedWithRoot;
  }
  return out;
}

std::vector<LeaseInference> Pipeline::classify(const whois::WhoisDb& db) const {
  obs::ScopedSpan span("classify");
  auto tree = whois::AllocationTree::build(db, options_.alloc);
  SUBLET_LOG(kInfo) << rir_name(db.rir()) << ": " << tree.roots().size()
                    << " roots, " << tree.leaves().size() << " leaves ("
                    << tree.skipped_hyper_specific() << " hyper-specific, "
                    << tree.skipped_legacy() << " legacy skipped)";
  std::vector<whois::AllocEntry> candidates;
  candidates.reserve(tree.leaves().size());
  for (const auto& leaf : tree.leaves()) {
    // A leaf that is also a root is portable space with no sub-allocation:
    // there is no provider/customer split to judge, so it is not a lease
    // candidate (paper only classifies non-portable leaves).
    if (leaf.second->portability == whois::Portability::kPortable) continue;
    candidates.push_back(leaf);
  }
  // Each leaf only reads rib_/graph_/db/tree; parallel_map keeps the
  // documented leaf-address-order output, so results are byte-identical
  // to a serial run at any thread count.
  auto results = par::parallel_map(
      candidates,
      [&](const whois::AllocEntry& leaf) {
        return classify_leaf(leaf, tree, db);
      },
      options_.threads);
  // One aggregation pass instead of a relaxed add per leaf on the hot path.
  std::array<std::uint64_t, kAllInferenceGroups.size()> by_group{};
  for (const LeaseInference& inference : results) {
    ++by_group[static_cast<std::size_t>(inference.group)];
  }
  for (std::size_t i = 0; i < kAllInferenceGroups.size(); ++i) {
    if (by_group[i] != 0) classify_counter(kAllInferenceGroups[i]).add(by_group[i]);
  }
  span.add_records(results.size());
  return results;
}

GroupCounts Pipeline::count_groups(const std::vector<LeaseInference>& results) {
  GroupCounts counts;
  for (const auto& inference : results) counts.add(inference.group);
  return counts;
}

namespace {
std::string asn_list(const std::vector<Asn>& asns) {
  if (asns.empty()) return "(none)";
  std::vector<std::string> parts;
  parts.reserve(asns.size());
  for (Asn asn : asns) parts.push_back(asn.to_string());
  return join(parts, ", ");
}
}  // namespace

std::string Pipeline::explain(const Prefix& prefix,
                              const whois::WhoisDb& db) const {
  auto tree = whois::AllocationTree::build(db, options_.alloc);
  const whois::InetBlock* block = tree.find(prefix);
  if (!block) {
    return prefix.to_string() + ": not present in the " +
           std::string(rir_name(db.rir())) + " allocation tree\n";
  }
  auto inference = classify_leaf({prefix, block}, tree, db);

  std::ostringstream out;
  out << "Inference walkthrough for " << prefix.to_string() << " ("
      << rir_name(db.rir()) << ")\n";
  out << "  [1] WHOIS leaf: netname=" << (block->netname.empty() ? "-" : block->netname)
      << " status='" << block->status << "' ("
      << portability_name(block->portability) << ")\n";
  out << "      maintainers (facilitator): "
      << (inference.leaf_maintainers.empty()
              ? "(none)"
              : join(inference.leaf_maintainers, ", "))
      << "\n";
  out << "  [2] allocation tree root: " << inference.root_prefix.to_string()
      << " held by org " << (inference.holder_org.empty() ? "(none)" : inference.holder_org)
      << "\n";
  out << "  [3] holder's RIR-assigned ASNs: " << asn_list(inference.holder_asns)
      << "\n";
  out << "  [4] BGP origins: leaf=" << asn_list(inference.leaf_origins)
      << " root=" << asn_list(inference.root_origins) << "\n";
  out << "  [5] verdict: group " << group_number(inference.group) << " — "
      << group_name(inference.group)
      << (inference.leased() ? "  ** LEASED **" : "") << "\n";
  return out.str();
}

}  // namespace sublet::leasing
