// Dataset bundle: everything the pipeline consumes, loaded from one
// directory laid out the way the simulator (or a real-data fetcher) emits:
//
//   <dir>/whois/{ripe,arin,apnic,afrinic,lacnic}.db
//   <dir>/bgp/*.mrt                 one TABLE_DUMP_V2 file per collector
//   <dir>/rpki/vrps-<ts>.csv        dated VRP snapshots
//   <dir>/asgraph/as-rel.txt        CAIDA serial-1
//   <dir>/asgraph/as2org.txt        CAIDA flat as2org
//   <dir>/lists/asn-drop.json       Spamhaus ASN-DROP (JSON Lines)
//   <dir>/lists/serial-hijackers.txt
//   <dir>/lists/brokers-<rir>.txt   registered broker company names
//   <dir>/lists/eval-isp-orgs.txt   "<RIR>|<org-id>" negative-label orgs
//
// Missing optional pieces load as empty; missing WHOIS entirely is an
// error. The simulator's ground-truth file lives outside this bundle on
// purpose (simnet/ground_truth.h) so the classifier can never see it.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "abuse/asn_lists.h"
#include "asgraph/as2org.h"
#include "asgraph/as_rel.h"
#include "bgp/rib.h"
#include "geo/geodb.h"
#include "rpki/archive.h"
#include "transfers/transfer_log.h"
#include "whoisdb/model.h"

namespace sublet::leasing {

struct DatasetBundle {
  std::vector<whois::WhoisDb> whois;  ///< one per RIR found on disk
  bgp::Rib rib;                       ///< union of all collectors
  asgraph::AsRelationships as_rel;
  asgraph::As2Org as2org;
  rpki::RpkiArchive rpki_archive;
  abuse::AsnSet drop;
  abuse::AsnSet hijackers;
  transfers::TransferLog transfers;  ///< RIR-reported transfers, if present
  std::vector<geo::GeoDb> geodbs;    ///< geolocation snapshots, if present
  std::map<whois::Rir, std::vector<std::string>> brokers;
  std::map<whois::Rir, std::vector<std::string>> eval_isp_orgs;
  std::vector<Error> diagnostics;     ///< non-fatal per-record problems

  /// The measurement-window VRP set: the archive's latest snapshot (empty
  /// set if there is no RPKI data).
  const rpki::VrpSet* current_vrps() const;

  const whois::WhoisDb* db_for(whois::Rir rir) const;
};

struct LoadOptions {
  /// Worker threads for the bundle load: the five WHOIS databases, the
  /// per-collector RIB files, and the auxiliary datasets load as
  /// concurrent tasks. 0 = process default (--threads), 1 = serial legacy
  /// order. Results and diagnostics order are identical either way.
  unsigned threads = 0;
};

/// Load a bundle. Throws std::runtime_error when the directory is missing
/// or contains no WHOIS databases.
DatasetBundle load_dataset(const std::string& dir, LoadOptions options);
DatasetBundle load_dataset(const std::string& dir);

}  // namespace sublet::leasing
