#include "leasing/baseline.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "util/strings.h"

namespace sublet::leasing {

namespace {
std::set<std::string> maintainer_set(const whois::InetBlock& block) {
  std::set<std::string> out;
  for (const std::string& mnt : block.maintainers) out.insert(to_lower(mnt));
  return out;
}
}  // namespace

std::vector<BaselineInference> maintainer_baseline(
    const whois::WhoisDb& db, whois::AllocOptions options) {
  auto tree = whois::AllocationTree::build(db, options);
  std::vector<BaselineInference> out;
  out.reserve(tree.leaves().size());
  for (const auto& [prefix, block] : tree.leaves()) {
    if (block->portability == whois::Portability::kPortable) continue;
    BaselineInference inference;
    inference.prefix = prefix;
    inference.rir = db.rir();
    // Compare against the root (nearest portable ancestor) — Prehn et al.
    // compare to the parent block; in our forests the root is the
    // allocation the provider received, which carries their maintainer.
    auto root = tree.root_of(prefix);
    if (root && root->first != prefix) {
      auto leaf_mnts = maintainer_set(*block);
      auto root_mnts = maintainer_set(*root->second);
      std::vector<std::string> common;
      std::set_intersection(leaf_mnts.begin(), leaf_mnts.end(),
                            root_mnts.begin(), root_mnts.end(),
                            std::back_inserter(common));
      inference.leased = common.empty() && !leaf_mnts.empty();
    }
    out.push_back(inference);
  }
  return out;
}

MethodComparison compare_methods(const std::vector<LeaseInference>& ours,
                                 const std::vector<BaselineInference>& prior) {
  std::unordered_map<Prefix, const LeaseInference*, PrefixHash> by_prefix;
  for (const LeaseInference& inference : ours) {
    by_prefix.emplace(inference.prefix, &inference);
  }
  MethodComparison cmp;
  for (const BaselineInference& baseline : prior) {
    auto it = by_prefix.find(baseline.prefix);
    bool ours_leased = it != by_prefix.end() && it->second->leased();
    bool ours_unused = it != by_prefix.end() &&
                       it->second->group == InferenceGroup::kUnused;
    if (ours_leased && baseline.leased) {
      ++cmp.both_leased;
    } else if (ours_leased) {
      ++cmp.ours_only;
    } else if (baseline.leased) {
      ++cmp.baseline_only;
      if (ours_unused) ++cmp.baseline_only_unused;
    } else {
      ++cmp.neither;
    }
  }
  return cmp;
}

}  // namespace sublet::leasing
