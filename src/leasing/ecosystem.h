// Leasing-ecosystem analysis — paper §6.3 and the Figure 1 role taxonomy.
//
// For every inferred lease the three business parties are identifiable from
// the inference evidence: the IP holder (root org), the facilitator (leaf
// maintainer), and the originator (leaf BGP origin). This module ranks
// them per RIR and assigns Figure 1 roles.
#pragma once

#include <string>
#include <vector>

#include "asgraph/as2org.h"
#include "leasing/types.h"

namespace sublet::leasing {

/// A ranked (name, lease count) row.
struct RankedParty {
  std::string name;
  std::size_t count = 0;
};

/// Figure 1 roles of one lease.
struct LeaseRoles {
  std::string holder;                ///< IP holder org handle
  std::string facilitator;           ///< leaf maintainer ("" = direct lease)
  std::vector<Asn> originators;      ///< BGP origin ASes
  bool self_facilitated = false;     ///< holder facilitates its own leasing
};

class Ecosystem {
 public:
  /// `orgs` (optional) supplies human-readable names for holder handles and
  /// originator ASes. Referenced data must outlive the Ecosystem.
  Ecosystem(const std::vector<LeaseInference>& inferences,
            const asgraph::As2Org* orgs = nullptr);

  /// Top IP holders by number of inferred leases (Table 3).
  std::vector<RankedParty> top_holders(whois::Rir rir, std::size_t k) const;

  /// Top facilitators = most frequent leaf maintainers of leases.
  std::vector<RankedParty> top_facilitators(whois::Rir rir,
                                            std::size_t k) const;

  /// Top originators = most frequent lease origin ASes (global).
  std::vector<RankedParty> top_originators(std::size_t k) const;

  /// All distinct originator ASes of leases (for hijacker overlap, §6.3).
  std::vector<Asn> lease_originators() const;

  /// Role assignment per lease (Figure 1).
  std::vector<LeaseRoles> roles() const;

  std::size_t lease_count() const { return leases_.size(); }

 private:
  std::vector<const LeaseInference*> leases_;
  const asgraph::As2Org* orgs_;
};

}  // namespace sublet::leasing
