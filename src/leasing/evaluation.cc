#include "leasing/evaluation.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "util/strings.h"

namespace sublet::leasing {

std::size_t ReferenceDataset::positives() const {
  std::size_t count = 0;
  for (const auto& [prefix, leased] : labels) {
    if (leased) ++count;
  }
  return count;
}

BrokerMatch match_brokers(const whois::WhoisDb& db,
                          const std::vector<std::string>& broker_names,
                          const bgp::Rib& rib, int max_prefix_len) {
  BrokerMatch out;

  // Index orgs by exact lowercase name and by normalized name.
  std::unordered_map<std::string, const whois::OrgRec*> by_exact;
  std::unordered_map<std::string, const whois::OrgRec*> by_normalized;
  for (const whois::OrgRec* org : db.all_orgs()) {
    if (org->name.empty()) continue;
    by_exact.emplace(to_lower(org->name), org);
    by_normalized.emplace(normalize_org_name(org->name), org);
  }

  std::set<std::string> maintainer_set;
  std::set<std::string> broker_org_ids;
  for (const std::string& name : broker_names) {
    const whois::OrgRec* org = nullptr;
    auto exact = by_exact.find(to_lower(name));
    if (exact != by_exact.end()) {
      org = exact->second;
      ++out.direct_matches;
    } else {
      auto fuzzy = by_normalized.find(normalize_org_name(name));
      if (fuzzy != by_normalized.end()) {
        org = fuzzy->second;
        ++out.fuzzy_matches;
      }
    }
    if (!org) {
      ++out.unmatched;
      continue;
    }
    out.matched_org_ids.push_back(org->id);
    broker_org_ids.insert(to_lower(org->id));
    for (const std::string& mnt : org->maintainers) {
      maintainer_set.insert(to_lower(mnt));
    }
  }
  out.maintainers.assign(maintainer_set.begin(), maintainer_set.end());

  // Broker ASNs, for the broker-as-ISP filter.
  std::unordered_set<std::uint32_t> broker_asns;
  for (const std::string& org_id : out.matched_org_ids) {
    for (Asn asn : db.asns_for_org(org_id)) broker_asns.insert(asn.value());
  }

  // Blocks whose maintainers intersect the broker maintainer set. Scanning
  // the raw database (not the allocation tree) keeps legacy blocks in the
  // reference even though the pipeline cannot classify them.
  for (const whois::InetBlock& block : db.blocks()) {
    if (block.portability == whois::Portability::kPortable) continue;
    bool managed = false;
    for (const std::string& mnt : block.maintainers) {
      if (maintainer_set.contains(to_lower(mnt))) {
        managed = true;
        break;
      }
    }
    if (!managed) continue;
    for (const Prefix& prefix : block.range.to_prefixes()) {
      if (prefix.length() > max_prefix_len) continue;
      // Manual filter modeled mechanically: a broker-maintained block whose
      // BGP origin is a broker ASN is the broker acting as ISP, not a lease.
      bool broker_originated = false;
      if (const bgp::RouteInfo* info = rib.exact(prefix)) {
        for (Asn origin : info->origins) {
          if (broker_asns.contains(origin.value())) {
            broker_originated = true;
            break;
          }
        }
      }
      if (broker_originated) {
        ++out.filtered_not_leased;
        continue;
      }
      out.prefixes.push_back(prefix);
    }
  }
  return out;
}

std::vector<Prefix> isp_negatives(const whois::WhoisDb& db,
                                  const std::vector<std::string>& isp_org_ids,
                                  const whois::AllocationTree& tree,
                                  const bgp::Rib& rib) {
  std::vector<Prefix> out;
  for (const std::string& org_id : isp_org_ids) {
    std::unordered_set<std::uint32_t> isp_asns;
    for (Asn asn : db.asns_for_org(org_id)) isp_asns.insert(asn.value());
    if (isp_asns.empty()) continue;
    std::string org_lower = to_lower(org_id);

    for (const auto& [prefix, block] : tree.leaves()) {
      if (to_lower(block->org_id) != org_lower) continue;
      const bgp::RouteInfo* info = rib.exact(prefix);
      if (!info) continue;
      bool own_origin = std::any_of(
          info->origins.begin(), info->origins.end(),
          [&](Asn origin) { return isp_asns.contains(origin.value()); });
      if (own_origin) out.push_back(prefix);
    }
  }
  return out;
}

ConfusionMatrix evaluate(const std::vector<LeaseInference>& results,
                         const ReferenceDataset& reference) {
  std::unordered_map<Prefix, bool, PrefixHash> predicted;
  for (const LeaseInference& inference : results) {
    predicted[inference.prefix] = inference.leased();
  }
  ConfusionMatrix matrix;
  for (const auto& [prefix, actual_leased] : reference.labels) {
    auto it = predicted.find(prefix);
    bool predicted_leased = it != predicted.end() && it->second;
    if (actual_leased) {
      predicted_leased ? ++matrix.tp : ++matrix.fn;
    } else {
      predicted_leased ? ++matrix.fp : ++matrix.tn;
    }
  }
  return matrix;
}

}  // namespace sublet::leasing
