// Lease-period reconstruction from RPKI + BGP history — paper Figure 3.
//
// The historical record of a leased prefix shows which AS held it when:
// ROAs and BGP originations for the lessee's AS during a lease, AS0 ROAs
// published by the facilitator between leases. This module merges the two
// histories into per-AS activity spans and segments the lease periods.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/origin_tracker.h"
#include "netbase/asn.h"
#include "netbase/ipv4.h"
#include "rpki/archive.h"

namespace sublet::leasing {

/// A dated observation of one prefix from one data source.
struct TimelineEvent {
  enum class Source { kRpki, kBgp };
  std::uint32_t timestamp = 0;
  Source source = Source::kRpki;
  Asn asn;

  friend auto operator<=>(const TimelineEvent&,
                          const TimelineEvent&) = default;
};

/// One inferred lease period: the prefix was held/used by `asn` in
/// [start, end]. AS0 spans mark inter-lease quarantine.
struct LeasePeriod {
  std::uint32_t start = 0;
  std::uint32_t end = 0;
  Asn asn;
  bool is_as0_gap() const { return asn.is_as0(); }

  friend auto operator<=>(const LeasePeriod&, const LeasePeriod&) = default;
};

/// BGP origination history of one prefix: (timestamp, origins) samples,
/// ascending. Produced by replaying dated RIB snapshots.
using OriginHistory = std::vector<std::pair<std::uint32_t, std::vector<Asn>>>;

class LeaseTimeline {
 public:
  /// Merge ROA history from `archive` and BGP history for `prefix` over
  /// [from, to] into a sorted event list.
  static std::vector<TimelineEvent> collect(const Prefix& prefix,
                                            const rpki::RpkiArchive& archive,
                                            const OriginHistory& bgp,
                                            std::uint32_t from,
                                            std::uint32_t to);

  /// Segment events into per-AS periods: consecutive events for the same
  /// AS (from either source) extend its period; a different AS opens a new
  /// one. Sampling gaps longer than `max_gap` close the current period.
  static std::vector<LeasePeriod> segment(
      const std::vector<TimelineEvent>& events,
      std::uint32_t max_gap = 0xFFFFFFFFu);

  /// Render the figure as rows of "ASN  [RPKI ####  ] [BGP ####]" spans —
  /// an ASCII Figure 3.
  static std::string render(const std::vector<TimelineEvent>& events,
                            std::uint32_t from, std::uint32_t to,
                            int columns = 72);

  /// Build an OriginHistory from a replayed BGP update stream — the
  /// real-data path: `replay_updates_file()` then this.
  static OriginHistory history_from_tracker(const bgp::OriginTracker& tracker,
                                            const Prefix& prefix);
};

}  // namespace sublet::leasing
