// One-call measurement summary: the Table-1-style overview an operator
// wants from `sublet report` without stitching the analyses together.
#pragma once

#include <string>
#include <vector>

#include "leasing/dataset.h"
#include "leasing/types.h"

namespace sublet::leasing {

/// Render a per-RIR group breakdown, the headline leased shares, the top
/// holders/facilitators, and (when the bundle carries the lists) the abuse
/// ratios — as a monospace report.
std::string render_summary(const DatasetBundle& bundle,
                           const std::vector<LeaseInference>& results);

}  // namespace sublet::leasing
