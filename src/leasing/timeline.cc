#include "leasing/timeline.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace sublet::leasing {

OriginHistory LeaseTimeline::history_from_tracker(
    const bgp::OriginTracker& tracker, const Prefix& prefix) {
  OriginHistory out;
  const std::vector<bgp::OriginEvent>* events = tracker.history(prefix);
  if (!events) return out;
  for (const bgp::OriginEvent& event : *events) {
    out.emplace_back(event.timestamp, event.origins);
  }
  return out;
}

std::vector<TimelineEvent> LeaseTimeline::collect(
    const Prefix& prefix, const rpki::RpkiArchive& archive,
    const OriginHistory& bgp, std::uint32_t from, std::uint32_t to) {
  std::vector<TimelineEvent> events;
  for (const auto& [ts, asns] : archive.roa_history(prefix, from, to)) {
    for (Asn asn : asns) {
      events.push_back({ts, TimelineEvent::Source::kRpki, asn});
    }
  }
  for (const auto& [ts, origins] : bgp) {
    if (ts < from || ts > to) continue;
    for (Asn asn : origins) {
      events.push_back({ts, TimelineEvent::Source::kBgp, asn});
    }
  }
  std::sort(events.begin(), events.end());
  return events;
}

std::vector<LeasePeriod> LeaseTimeline::segment(
    const std::vector<TimelineEvent>& events, std::uint32_t max_gap) {
  std::vector<LeasePeriod> periods;
  for (const TimelineEvent& event : events) {
    if (!periods.empty() && periods.back().asn == event.asn &&
        event.timestamp - periods.back().end <= max_gap) {
      periods.back().end = std::max(periods.back().end, event.timestamp);
      continue;
    }
    // A different AS (or a long silence) starts a new period; close the
    // previous one at its last observation.
    periods.push_back({event.timestamp, event.timestamp, event.asn});
  }
  return periods;
}

std::string LeaseTimeline::render(const std::vector<TimelineEvent>& events,
                                  std::uint32_t from, std::uint32_t to,
                                  int columns) {
  if (to <= from || columns < 8) return "(empty timeline)\n";

  // Row per ASN in first-seen order, matching the figure's y-axis.
  std::vector<Asn> order;
  std::map<Asn, std::pair<std::string, std::string>> rows;  // rpki, bgp lanes
  for (const TimelineEvent& event : events) {
    if (!rows.contains(event.asn)) {
      order.push_back(event.asn);
      rows[event.asn] = {std::string(static_cast<std::size_t>(columns), ' '),
                         std::string(static_cast<std::size_t>(columns), ' ')};
    }
    double frac = static_cast<double>(event.timestamp - from) /
                  static_cast<double>(to - from);
    int col = std::min(columns - 1, static_cast<int>(frac * columns));
    auto& [rpki_lane, bgp_lane] = rows[event.asn];
    if (event.source == TimelineEvent::Source::kRpki) {
      rpki_lane[static_cast<std::size_t>(col)] = '#';
    } else {
      bgp_lane[static_cast<std::size_t>(col)] = '=';
    }
  }

  std::ostringstream out;
  out << "ASN        lane  " << std::string(static_cast<std::size_t>(columns), '-')
      << "\n";
  for (Asn asn : order) {
    const auto& [rpki_lane, bgp_lane] = rows[asn];
    out << std::left;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%-10u", asn.value());
    out << buf << " RPKI |" << rpki_lane << "|\n";
    out << "           BGP  |" << bgp_lane << "|\n";
  }
  out << "                 (# = ROA present, = = BGP origination; AS0 rows "
         "mark inter-lease quarantine)\n";
  return out.str();
}

}  // namespace sublet::leasing
