// The lease-inference pipeline — paper §5.1-§5.2, steps 1-5.
//
// Inputs: one parsed WHOIS database per RIR, a (multi-collector) BGP RIB,
// and the AS-level relatedness graph. Output: one LeaseInference per leaf
// of each RIR's allocation tree.
//
// Decision procedure per leaf (paper step 5):
//   no leaf origin, no root origin  -> unused
//   no leaf origin, root origin     -> aggregated customer
//   leaf origin, no root origin     -> ISP customer if related to the
//                                      holder's RIR-assigned ASes, else
//                                      LEASED (group 3)
//   both origins                    -> delegated customer if related to the
//                                      holder ASes or the root origin, else
//                                      LEASED (group 4)
#pragma once

#include <string>
#include <vector>

#include "asgraph/as_graph.h"
#include "bgp/rib.h"
#include "leasing/types.h"
#include "whoisdb/alloc_tree.h"
#include "whoisdb/model.h"

namespace sublet::leasing {

struct PipelineOptions {
  whois::AllocOptions alloc;  ///< hyper-specific filter, legacy handling
  /// Step 4's root-origin fallback: when the root prefix has no exact BGP
  /// match, use its least-specific covering prefix (holders aggregating
  /// consecutive portable blocks). Ablation knob.
  bool root_covering_fallback = true;
  /// Worker threads for classify(): 0 = process default (--threads),
  /// 1 = serial. Leaf classification only reads the RIB, the AS graph and
  /// the WhoisDb, and the output contract (leaf address order) is kept
  /// byte-identical across thread counts.
  unsigned threads = 0;
};

/// Per-RIR classification summary (one Table 1 column).
struct GroupCounts {
  std::size_t unused = 0;
  std::size_t aggregated_customer = 0;
  std::size_t isp_customer = 0;
  std::size_t leased_g3 = 0;
  std::size_t delegated_customer = 0;
  std::size_t leased_g4 = 0;

  std::size_t leased() const { return leased_g3 + leased_g4; }
  std::size_t total() const {
    return unused + aggregated_customer + isp_customer + leased_g3 +
           delegated_customer + leased_g4;
  }
  void add(InferenceGroup group);
};

class Pipeline {
 public:
  /// The referenced inputs must outlive the pipeline.
  Pipeline(const bgp::Rib& rib, const asgraph::AsGraph& graph,
           PipelineOptions options = {});

  /// Classify every leaf of `db`'s allocation tree. Results are appended
  /// in leaf address order.
  std::vector<LeaseInference> classify(const whois::WhoisDb& db) const;

  /// Classify a single leaf given its allocation tree (used by explain and
  /// the incremental API).
  LeaseInference classify_leaf(const whois::AllocEntry& leaf,
                               const whois::AllocationTree& tree,
                               const whois::WhoisDb& db) const;

  /// Figure-2-style narration of why a prefix received its verdict.
  std::string explain(const Prefix& prefix, const whois::WhoisDb& db) const;

  static GroupCounts count_groups(const std::vector<LeaseInference>& results);

 private:
  const bgp::Rib& rib_;
  const asgraph::AsGraph& graph_;
  PipelineOptions options_;
};

}  // namespace sublet::leasing
