#include "util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <queue>
#include <thread>

namespace sublet::par {

namespace {

unsigned hardware_threads() {
  unsigned n = std::thread::hardware_concurrency();
  return n ? n : 1;
}

std::atomic<unsigned>& default_threads_slot() {
  static std::atomic<unsigned> value{hardware_threads()};
  return value;
}

}  // namespace

unsigned default_threads() { return default_threads_slot().load(); }

void set_default_threads(unsigned n) {
  default_threads_slot().store(n ? n : hardware_threads());
}

unsigned resolve_threads(unsigned requested) {
  return requested ? requested : default_threads();
}

std::size_t recommended_chunk(std::size_t n, unsigned threads) {
  unsigned t = resolve_threads(threads);
  std::size_t chunks = static_cast<std::size_t>(t) * 4;
  std::size_t chunk = (n + chunks - 1) / chunks;
  return chunk ? chunk : 1;
}

// ------------------------------------------------------------ ThreadPool --

struct ThreadPool::State {
  std::mutex mu;
  std::condition_variable work_cv;   // workers sleep here
  std::condition_variable idle_cv;   // wait() sleeps here
  std::queue<std::function<void()>> queue;
  std::size_t in_flight = 0;  // queued + currently running
  bool stop = false;
};

ThreadPool::ThreadPool(unsigned threads) : state_(std::make_unique<State>()) {
  unsigned t = resolve_threads(threads);
  if (t <= 1) return;  // inline mode: submit() runs tasks directly
  workers_.reserve(t);
  for (unsigned i = 0; i < t; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->stop = true;
  }
  state_->work_cv.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // serial mode: run inline, in submission order
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->queue.push(std::move(task));
    ++state_->in_flight;
  }
  state_->work_cv.notify_one();
}

void ThreadPool::wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->idle_cv.wait(lock, [&] { return state_->in_flight == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(state_->mu);
      state_->work_cv.wait(
          lock, [&] { return state_->stop || !state_->queue.empty(); });
      if (state_->queue.empty()) return;  // stop requested, queue drained
      task = std::move(state_->queue.front());
      state_->queue.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (--state_->in_flight == 0) state_->idle_cv.notify_all();
    }
  }
}

// ---------------------------------------------------------- parallel_for --

void parallel_for(std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  unsigned threads) {
  if (n == 0) return;
  unsigned t = resolve_threads(threads);
  if (chunk == 0) chunk = recommended_chunk(n, t);
  if (t <= 1 || n <= chunk) {
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      fn(begin, std::min(begin + chunk, n));
    }
    return;
  }

  ThreadPool pool(t);
  std::mutex error_mu;
  std::exception_ptr error;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    std::size_t end = std::min(begin + chunk, n);
    pool.submit([&, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
    });
  }
  pool.wait();
  if (error) std::rethrow_exception(error);
}

// ------------------------------------------------------------- TaskGroup --

TaskGroup::TaskGroup(unsigned threads) : pool_(threads) {}

TaskGroup::~TaskGroup() {
  // Tasks reference captured state owned by the caller: never let them
  // outlive the group, even when wait() was skipped because of an
  // exception further up the stack.
  pool_.wait();
}

void TaskGroup::run(std::function<void()> task) {
  pool_.submit([this, task = std::move(task)] {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (!error_) error_ = std::current_exception();
    }
  });
}

void TaskGroup::wait() {
  pool_.wait();
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    std::swap(error, error_);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace sublet::par
