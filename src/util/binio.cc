#include "util/binio.h"

#include <array>

namespace sublet {

namespace {

// Slicing-by-8 CRC-32: table[0] is the classic byte-at-a-time table;
// table[k][b] is the CRC of byte b followed by k zero bytes. Eight input
// bytes are then folded per step instead of one, which matters because the
// snapshot loader checksums the whole payload on open (docs/SERVING.md).
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kCrc =
    make_crc_tables();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t crc) {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    // Little-endian load of the first word, folded with the running CRC.
    std::uint32_t lo = c ^ (static_cast<std::uint32_t>(p[0]) |
                            static_cast<std::uint32_t>(p[1]) << 8 |
                            static_cast<std::uint32_t>(p[2]) << 16 |
                            static_cast<std::uint32_t>(p[3]) << 24);
    c = kCrc[7][lo & 0xFFu] ^ kCrc[6][(lo >> 8) & 0xFFu] ^
        kCrc[5][(lo >> 16) & 0xFFu] ^ kCrc[4][lo >> 24] ^ kCrc[3][p[4]] ^
        kCrc[2][p[5]] ^ kCrc[1][p[6]] ^ kCrc[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = kCrc[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace sublet
