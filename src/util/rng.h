// Deterministic RNG for the synthetic-Internet generator.
//
// simnet must be reproducible across runs, platforms, and standard-library
// versions, so we carry our own generator (std::mt19937 streams differ in
// distribution implementations across libstdc++ versions).
#pragma once

#include <cstdint>

namespace sublet {

/// splitmix64: used to seed and to derive independent substreams.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, deterministic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) {
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool chance(double p) { return next_double() < p; }

  /// Derive an independent child stream (stable for a given label).
  Rng fork(std::uint64_t label) {
    std::uint64_t mix = s_[0] ^ (label * 0x9E3779B97F4A7C15ull);
    return Rng(splitmix64(mix));
  }

  /// Zipf-like heavy-tail sample in [0, n): rank r with weight 1/(r+1)^alpha.
  /// Cheap inverse-transform approximation, good enough for market skew.
  std::uint64_t next_zipf(std::uint64_t n, double alpha = 1.0);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace sublet
