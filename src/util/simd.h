// Compile-time-dispatched SIMD primitives for columnar aggregation
// (docs/PERF.md "SIMD STATS").
//
// The serving layer keeps RecordRow fields it aggregates over in plain
// columnar arrays (one u8 per record for group/RIR, u64 for address
// counts, u32 for origin ASNs); these primitives give the STATS verb a
// vectorized pass over those columns. Backend is chosen once at compile
// time: SSE2 on x86-64 (baseline, no -m flags needed), NEON on ARM,
// scalar everywhere else. The `_scalar` variants are always compiled and
// always callable so differential tests can pin the SIMD results
// bit-for-bit, and building with -DSUBLET_FORCE_SCALAR=ON (CMake option)
// forces the dispatching wrappers onto the scalar path on any
// architecture — that configuration runs as its own ctest variant.
//
// All sums are exact integer arithmetic, so "bit-for-bit identical to
// scalar" is a hard guarantee, not a tolerance.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

#if !defined(SUBLET_FORCE_SCALAR)
#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define SUBLET_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__) || defined(__aarch64__)
#define SUBLET_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace sublet::simd {

/// Which backend the dispatching wrappers use in this build.
constexpr const char* backend_name() {
#if defined(SUBLET_SIMD_SSE2)
  return "sse2";
#elif defined(SUBLET_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

constexpr bool vectorized() {
#if defined(SUBLET_SIMD_SSE2) || defined(SUBLET_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

// ---- reference implementations (always compiled) --------------------------

/// Number of elements equal to `target`.
inline std::uint64_t count_eq_u8_scalar(std::span<const std::uint8_t> keys,
                                        std::uint8_t target) {
  std::uint64_t total = 0;
  for (std::uint8_t k : keys) total += (k == target);
  return total;
}

inline std::uint64_t count_eq_u32_scalar(std::span<const std::uint32_t> keys,
                                         std::uint32_t target) {
  std::uint64_t total = 0;
  for (std::uint32_t k : keys) total += (k == target);
  return total;
}

/// Sum of values[i] over every i with keys[i] == target (wrapping u64
/// arithmetic, same as the vector paths). keys and values are parallel.
inline std::uint64_t masked_sum_u64_scalar(std::span<const std::uint8_t> keys,
                                           std::uint8_t target,
                                           std::span<const std::uint64_t> values) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] == target) total += values[i];
  }
  return total;
}

// ---- dispatching wrappers -------------------------------------------------

inline std::uint64_t count_eq_u8(std::span<const std::uint8_t> keys,
                                 std::uint8_t target) {
#if defined(SUBLET_SIMD_SSE2)
  const std::uint8_t* p = keys.data();
  std::size_t n = keys.size();
  std::uint64_t total = 0;
  const __m128i needle = _mm_set1_epi8(static_cast<char>(target));
  while (n >= 16) {
    // Each compare lane is 0xFF (-1) on match; subtracting accumulates a
    // per-lane match count, safe for up to 255 blocks before a u8 lane
    // could overflow, then one psadbw folds the 16 lanes into two u16s.
    const std::size_t blocks = std::min<std::size_t>(n / 16, 255);
    __m128i acc = _mm_setzero_si128();
    for (std::size_t b = 0; b < blocks; ++b) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
      acc = _mm_sub_epi8(acc, _mm_cmpeq_epi8(v, needle));
      p += 16;
    }
    n -= blocks * 16;
    const __m128i sums = _mm_sad_epu8(acc, _mm_setzero_si128());
    total += static_cast<std::uint32_t>(_mm_cvtsi128_si32(sums));
    total += static_cast<std::uint32_t>(
        _mm_cvtsi128_si32(_mm_srli_si128(sums, 8)));
  }
  for (; n > 0; --n, ++p) total += (*p == target);
  return total;
#elif defined(SUBLET_SIMD_NEON)
  const std::uint8_t* p = keys.data();
  std::size_t n = keys.size();
  std::uint64_t total = 0;
  const uint8x16_t needle = vdupq_n_u8(target);
  while (n >= 16) {
    const std::size_t blocks = std::min<std::size_t>(n / 16, 255);
    uint8x16_t acc = vdupq_n_u8(0);
    for (std::size_t b = 0; b < blocks; ++b) {
      acc = vsubq_u8(acc, vceqq_u8(vld1q_u8(p), needle));
      p += 16;
    }
    n -= blocks * 16;
    const uint64x2_t folded = vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(acc)));
    total += vgetq_lane_u64(folded, 0) + vgetq_lane_u64(folded, 1);
  }
  for (; n > 0; --n, ++p) total += (*p == target);
  return total;
#else
  return count_eq_u8_scalar(keys, target);
#endif
}

inline std::uint64_t count_eq_u32(std::span<const std::uint32_t> keys,
                                  std::uint32_t target) {
#if defined(SUBLET_SIMD_SSE2)
  const std::uint32_t* p = keys.data();
  std::size_t n = keys.size();
  std::uint64_t total = 0;
  const __m128i needle = _mm_set1_epi32(static_cast<int>(target));
  while (n >= 4) {
    // 32-bit lanes: 2^31 blocks would be needed to overflow, so one
    // accumulator covers any realistic column without re-folding.
    const std::size_t blocks = n / 4;
    __m128i acc = _mm_setzero_si128();
    for (std::size_t b = 0; b < blocks; ++b) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
      acc = _mm_sub_epi32(acc, _mm_cmpeq_epi32(v, needle));
      p += 4;
    }
    n -= blocks * 4;
    alignas(16) std::uint32_t lanes[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
    total += std::uint64_t{lanes[0]} + lanes[1] + lanes[2] + lanes[3];
  }
  for (; n > 0; --n, ++p) total += (*p == target);
  return total;
#elif defined(SUBLET_SIMD_NEON)
  const std::uint32_t* p = keys.data();
  std::size_t n = keys.size();
  std::uint64_t total = 0;
  const uint32x4_t needle = vdupq_n_u32(target);
  while (n >= 4) {
    const std::size_t blocks = n / 4;
    uint32x4_t acc = vdupq_n_u32(0);
    for (std::size_t b = 0; b < blocks; ++b) {
      acc = vsubq_u32(acc, vceqq_u32(vld1q_u32(p), needle));
      p += 4;
    }
    n -= blocks * 4;
    const uint64x2_t folded = vpaddlq_u32(acc);
    total += vgetq_lane_u64(folded, 0) + vgetq_lane_u64(folded, 1);
  }
  for (; n > 0; --n, ++p) total += (*p == target);
  return total;
#else
  return count_eq_u32_scalar(keys, target);
#endif
}

inline std::uint64_t masked_sum_u64(std::span<const std::uint8_t> keys,
                                    std::uint8_t target,
                                    std::span<const std::uint64_t> values) {
#if defined(SUBLET_SIMD_SSE2)
  const std::size_t n = keys.size();
  std::uint64_t total = 0;
  __m128i acc = _mm_setzero_si128();
  const __m128i needle = _mm_set1_epi8(static_cast<char>(target));
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys.data() + i));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(v, needle));
    if (mask == 0) continue;  // a sparse group skips 16 records per test
    if (mask == 0xFFFF) {
      // Dense run (one group dominating a region): add all 16 values with
      // wide loads instead of 16 scalar adds.
      for (int j = 0; j < 16; j += 2) {
        acc = _mm_add_epi64(
            acc, _mm_loadu_si128(
                     reinterpret_cast<const __m128i*>(values.data() + i + j)));
      }
    } else {
      for (int m = mask; m != 0; m &= m - 1) {
        total += values[i + static_cast<std::size_t>(std::countr_zero(
                             static_cast<unsigned>(m)))];
      }
    }
  }
  alignas(16) std::uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  total += lanes[0] + lanes[1];
  for (; i < n; ++i) {
    if (keys[i] == target) total += values[i];
  }
  return total;
#elif defined(SUBLET_SIMD_NEON) && defined(__aarch64__)
  const std::size_t n = keys.size();
  std::uint64_t total = 0;
  uint64x2_t acc = vdupq_n_u64(0);
  const uint8x16_t needle = vdupq_n_u8(target);
  std::size_t i = 0;
  alignas(16) std::uint8_t matched[16];
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t eq = vceqq_u8(vld1q_u8(keys.data() + i), needle);
    if (vmaxvq_u8(eq) == 0) continue;
    if (vminvq_u8(eq) == 0xFF) {
      for (int j = 0; j < 16; j += 2) {
        acc = vaddq_u64(acc, vld1q_u64(values.data() + i + j));
      }
    } else {
      vst1q_u8(matched, eq);
      for (int j = 0; j < 16; ++j) {
        if (matched[j]) total += values[i + static_cast<std::size_t>(j)];
      }
    }
  }
  total += vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i < n; ++i) {
    if (keys[i] == target) total += values[i];
  }
  return total;
#else
  return masked_sum_u64_scalar(keys, target, values);
#endif
}

}  // namespace sublet::simd
