// Fixed-width text tables for bench/report output.
//
// Every bench binary prints its table/figure in the same layout the paper
// uses, so EXPERIMENTS.md can be filled by copy-paste.
#pragma once

#include <string>
#include <vector>

namespace sublet {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// A simple monospace table: header row, separator, data rows, with columns
/// sized to their widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Per-column alignment; defaults to left for col 0, right otherwise.
  void set_align(std::size_t col, Align align);

  void add_row(std::vector<std::string> row);

  /// Render to a string, `indent` spaces before every line.
  std::string to_string(int indent = 0) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> align_;
};

/// Format helpers used throughout reports.
std::string with_commas(std::uint64_t n);          ///< 47318 -> "47,318"
std::string percent(double ratio, int decimals = 1);  ///< 0.041 -> "4.1%"
std::string fixed(double v, int decimals = 2);

}  // namespace sublet
