// CSV/TSV reading and writing.
//
// The pipeline's intermediate artifacts (inferred leases, ground truth,
// evaluation labels) are exchanged as delimiter-separated files, mirroring
// the paper's released artifacts. Quoting follows RFC 4180 for CSV; TSV is
// written raw and must not contain tabs/newlines in fields.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace sublet {

/// Streaming writer. Rows are flushed as they are written.
class CsvWriter {
 public:
  /// `sep` is ',' for CSV or '\t' for TSV. Does not own the stream.
  explicit CsvWriter(std::ostream& out, char sep = ',');

  /// Write one row; fields are quoted if they contain sep/quote/newline.
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
  char sep_;
};

/// Parse one CSV record honoring RFC 4180 quoting. The record may contain
/// embedded newlines inside quoted fields when read via read_csv_record.
std::vector<std::string> parse_csv_line(std::string_view line, char sep = ',');

/// Read one logical CSV record from `in` into `record`, continuing across
/// physical lines while a quoted field is open (RFC 4180 §2.6), so fields
/// written by CsvWriter round-trip even when they contain newlines. The
/// stored record has no trailing newline; a bare '\r' before each joined
/// line break is kept (it is field content). Returns false at EOF with no
/// data. An unterminated quote at EOF yields the partial record as-is.
bool read_csv_record(std::istream& in, std::string& record, char sep = ',');

/// Read an entire delimiter-separated file into rows. Skips blank lines and
/// lines starting with '#'. Throws std::runtime_error if unreadable.
std::vector<std::vector<std::string>> read_delimited_file(
    const std::string& path, char sep = ',');

}  // namespace sublet
