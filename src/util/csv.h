// CSV/TSV reading and writing.
//
// The pipeline's intermediate artifacts (inferred leases, ground truth,
// evaluation labels) are exchanged as delimiter-separated files, mirroring
// the paper's released artifacts. Quoting follows RFC 4180 for CSV; TSV is
// written raw and must not contain tabs/newlines in fields.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace sublet {

/// Streaming writer. Rows are flushed as they are written.
class CsvWriter {
 public:
  /// `sep` is ',' for CSV or '\t' for TSV. Does not own the stream.
  explicit CsvWriter(std::ostream& out, char sep = ',');

  /// Write one row; fields are quoted if they contain sep/quote/newline.
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
  char sep_;
};

/// Parse one CSV line honoring RFC 4180 quoting. Multi-line quoted fields
/// are not supported (none of our artifacts use them).
std::vector<std::string> parse_csv_line(std::string_view line, char sep = ',');

/// Read an entire delimiter-separated file into rows. Skips blank lines and
/// lines starting with '#'. Throws std::runtime_error if unreadable.
std::vector<std::vector<std::string>> read_delimited_file(
    const std::string& path, char sep = ',');

}  // namespace sublet
