#include "util/jsonw.h"

#include <cstdio>

namespace sublet {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  out_ += buf;
  return *this;
}

}  // namespace sublet
