// Minimal JSON reader (the write side lives in util/jsonw.h).
//
// The codebase emits JSON everywhere but only three consumers need to
// read it back — `sublet top` (rendering INSPECT dumps), the soak
// harness (embedding slow-request evidence in failed-SLO reports), and
// the INSPECT wire tests — so this is a small recursive-descent parser
// producing an immutable value tree, not a streaming API or a DOM with
// editing. Strict enough for our own output (RFC 8259 escapes, nesting
// depth capped), tolerant of nothing else.
//
//   auto doc = JsonValue::parse(text);
//   if (!doc) ...;
//   for (const JsonValue& shard : (*doc)["shards"].items()) {
//     std::uint64_t fd = shard["connections"][0]["fd"].as_u64();
//   }
//
// Lookup never fails: a missing key / out-of-range index / wrong-type
// access returns a null value (as_* then yields the fallback), so render
// code can chain accessors without checking at every step.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/expected.h"

namespace sublet {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  /// Parse one complete JSON document; trailing non-whitespace is an
  /// error. Nesting past 64 levels is rejected (stack safety).
  static Expected<JsonValue> parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  /// Object member by key; null value if not an object / key absent.
  const JsonValue& operator[](std::string_view key) const;
  /// Array element by index; null value if not an array / out of range.
  const JsonValue& operator[](std::size_t index) const;
  /// True when this is an object containing `key`.
  bool has(std::string_view key) const;

  std::size_t size() const;  ///< array/object element count, else 0

  /// Array elements (empty for non-arrays) — `for (auto& v : x.items())`.
  const std::vector<JsonValue>& items() const;
  /// Object members in document order (empty for non-objects).
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  double as_double(double fallback = 0.0) const;
  std::uint64_t as_u64(std::uint64_t fallback = 0) const;
  std::int64_t as_i64(std::int64_t fallback = 0) const;
  bool as_bool(bool fallback = false) const;
  const std::string& as_string() const;  ///< empty for non-strings

 private:
  struct Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace sublet
