#include "util/faultinject.h"

#if SUBLET_FAULT_INJECTION

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/strings.h"

namespace sublet::fault {

namespace {

struct Site {
  int error = EIO;
  std::uint64_t skip = 0;
  std::int64_t times = -1;  ///< remaining injections; -1 = unbounded
  std::uint64_t trips = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Site> sites;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives static-dtor order
  return *r;
}

/// Number of armed sites; inject()'s fast path is one relaxed load of this.
std::atomic<std::size_t> g_armed{0};

std::once_flag g_env_once;

/// Symbolic errno names the env grammar accepts (plus raw numbers).
int parse_errno(std::string_view name) {
  static const std::unordered_map<std::string_view, int> kNames = {
      {"EIO", EIO},           {"EMFILE", EMFILE},
      {"ENFILE", ENFILE},     {"ECONNABORTED", ECONNABORTED},
      {"EAGAIN", EAGAIN},     {"ETIMEDOUT", ETIMEDOUT},
      {"ECONNRESET", ECONNRESET}, {"ECONNREFUSED", ECONNREFUSED},
      {"ENOMEM", ENOMEM},     {"ENOSPC", ENOSPC},
      {"EINTR", EINTR},       {"EPIPE", EPIPE},
  };
  auto it = kNames.find(name);
  if (it != kNames.end()) return it->second;
  if (name == "KILL") return kCrash;  // crash point: SIGKILL at the site
  if (auto number = parse_u32(name)) return static_cast<int>(*number);
  return 0;
}

}  // namespace

bool inject(const char* site, int* injected_errno) {
  std::call_once(g_env_once, [] { load_env(); });
  if (g_armed.load(std::memory_order_relaxed) == 0) return false;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return false;
  Site& s = it->second;
  if (s.skip > 0) {
    --s.skip;
    return false;
  }
  if (s.times == 0) return false;
  if (s.times > 0) --s.times;
  ++s.trips;
  if (s.error == kCrash) {
    // Crash point: die exactly here, as an external SIGKILL would — no
    // destructors, no atexit, no buffered-I/O flush.
    ::kill(::getpid(), SIGKILL);
    ::_exit(137);  // unreachable unless SIGKILL delivery is deferred
  }
  if (injected_errno != nullptr) *injected_errno = s.error;
  return true;
}

void arm(const std::string& site, int error, std::uint64_t skip,
         std::int64_t times) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  Site& s = reg.sites[site];
  s.error = error;
  s.skip = skip;
  s.times = times;
  g_armed.store(reg.sites.size(), std::memory_order_relaxed);
}

void disarm(const std::string& site) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.sites.erase(site);
  g_armed.store(reg.sites.size(), std::memory_order_relaxed);
}

void disarm_all() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.sites.clear();
  g_armed.store(0, std::memory_order_relaxed);
}

std::uint64_t trip_count(const std::string& site) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.trips;
}

std::size_t load_env(const char* var) {
  const char* value = std::getenv(var);
  if (value == nullptr || *value == '\0') return 0;
  return load_spec(value);
}

std::size_t load_spec(std::string_view spec) {
  std::size_t armed = 0;
  for (std::string_view entry : split(spec, ',')) {
    entry = trim(entry);
    if (entry.empty()) continue;
    std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    std::string site(trim(entry.substr(0, eq)));
    std::vector<std::string_view> fields = split(entry.substr(eq + 1), ':');
    if (fields.empty()) continue;
    int error = parse_errno(trim(fields[0]));
    if (error == 0) continue;
    std::int64_t times = -1;
    std::uint64_t skip = 0;
    if (fields.size() > 1) {
      auto t = parse_u32(trim(fields[1]));
      if (!t) continue;
      times = *t;
    }
    if (fields.size() > 2) {
      auto s = parse_u32(trim(fields[2]));
      if (!s) continue;
      skip = *s;
    }
    arm(site, error, skip, times);
    ++armed;
  }
  return armed;
}

}  // namespace sublet::fault

#endif  // SUBLET_FAULT_INJECTION
