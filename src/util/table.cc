#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace sublet {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)), align_(header_.size(), Align::kRight) {
  if (!align_.empty()) align_[0] = Align::kLeft;
}

void TextTable::set_align(std::size_t col, Align align) {
  if (col < align_.size()) align_[col] = align;
}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string(int indent) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::string pad(static_cast<std::size_t>(indent), ' ');
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    out += pad;
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      std::size_t fill = width[c] - cell.size();
      if (c) out += "  ";
      if (align_[c] == Align::kRight) out.append(fill, ' ');
      out += cell;
      if (align_[c] == Align::kLeft && c + 1 < header_.size()) {
        out.append(fill, ' ');
      }
    }
    out += '\n';
  };

  std::string out;
  emit_row(header_, out);
  out += pad;
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string with_commas(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string percent(double ratio, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, ratio * 100.0);
  return buf;
}

std::string fixed(double v, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace sublet
