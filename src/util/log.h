// Minimal leveled logger.
//
// Parsers log per-record diagnostics at kDebug, pipeline stage summaries at
// kInfo, and recoverable data problems at kWarn. There is intentionally no
// kFatal: fatal conditions throw.
#pragma once

#include <sstream>
#include <string>

namespace sublet {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; defaults to kWarn so library users are quiet
/// by default. Benches/examples raise it to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
/// Stream-style log statement: destructor emits the line.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace sublet

#define SUBLET_LOG(level) ::sublet::detail::LogMessage(::sublet::LogLevel::level)
