// Minimal leveled logger with an opt-in structured (JSON) output format
// (docs/OBSERVABILITY.md).
//
// Parsers log per-record diagnostics at kDebug, pipeline stage summaries at
// kInfo, and recoverable data problems at kWarn. There is intentionally no
// kFatal: fatal conditions throw.
//
// Two formats, selected process-wide:
//  - kText (default): the historical "[LEVEL] message" stderr lines;
//  - kJson: one JSON object per line with ts/level/component/msg plus any
//    key=value fields attached via .kv(). Also enabled by setting the
//    SUBLET_LOG_JSON environment variable to anything but "" or "0".
//
// Existing SUBLET_LOG(level) call sites are unchanged; SUBLET_LOGC adds a
// component tag and .kv("key", value) structured fields:
//
//   SUBLET_LOGC(kInfo, "serve").kv("port", port) << "listening";
//
// Every line is emitted with a single write(2) so concurrent ThreadPool
// workers never interleave partial lines.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sublet {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

enum class LogFormat { kText = 0, kJson = 1 };

/// Process-wide minimum level; defaults to kWarn so library users are quiet
/// by default. Benches/examples raise it to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Process-wide output format. The initial value honors SUBLET_LOG_JSON.
void set_log_format(LogFormat format);
LogFormat log_format();

/// Emit one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

/// Structured emission: `component` may be empty; `fields` are appended as
/// key=value (text) or extra JSON members (json), in call order.
void log_structured(
    LogLevel level, std::string_view component, const std::string& message,
    const std::vector<std::pair<std::string, std::string>>& fields);

namespace detail {
/// Stream-style log statement: destructor emits the line.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogMessage() {
    if (component_.empty() && fields_.empty()) {
      log_line(level_, stream_.str());
    } else {
      log_structured(level_, component_, stream_.str(), fields_);
    }
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  /// Attach one structured field. Values are stringified with the same
  /// stream formatting as the message body.
  template <typename T>
  LogMessage& kv(std::string_view key, const T& value) {
    std::ostringstream s;
    s << value;
    fields_.emplace_back(std::string(key), s.str());
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::vector<std::pair<std::string, std::string>> fields_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace sublet

#define SUBLET_LOG(level) ::sublet::detail::LogMessage(::sublet::LogLevel::level)
#define SUBLET_LOGC(level, component) \
  ::sublet::detail::LogMessage(::sublet::LogLevel::level, component)
