// Fault-injection harness for robustness testing (docs/ROBUSTNESS.md).
//
// Syscall-adjacent code declares named failure points:
//
//   int err = 0;
//   if (fault::inject("serve.accept", &err)) { fd = -1; errno = err; }
//   else fd = ::accept(listen_fd, nullptr, nullptr);
//
// Tests arm a point programmatically (arm / ScopedFault) or via the
// SUBLET_FAULTS environment variable:
//
//   SUBLET_FAULTS="serve.accept=EMFILE:3,snapshot.read=EIO:1:2"
//                       site   = errno [: times [: skip]]
//
// `times` is how many calls fail (-1 / omitted = every call), `skip` lets
// the first N calls through first. Armed sites count their trips so tests
// can assert a point actually fired (trip_count).
//
// Crash points: arming a site with `kCrash` (env token "KILL") makes the
// process raise SIGKILL the moment the site trips — the deterministic way
// to die *between* two specific I/O steps. The kill-restart tests and the
// soak harness's mid-append chaos both use this to leave exactly the
// artifacts a machine crash would (a published epoch file with no index,
// a torn `catalog.idx.tmp`, ...).
//
// When the build disables SUBLET_FAULT_INJECTION (release deployments),
// every function here is an inline no-op returning "no fault" and the
// branches at the failure points fold away.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sublet::fault {

/// Sentinel "errno" for crash points: a site armed with kCrash raises
/// SIGKILL instead of reporting a failure (never a valid errno value).
inline constexpr int kCrash = -0x0C'DEAD;

#if SUBLET_FAULT_INJECTION

/// True when the harness is compiled in (tests skip themselves otherwise).
constexpr bool enabled() { return true; }

/// Should the failure point `site` fail right now? When true, the armed
/// errno value is stored through `injected_errno` (if non-null) and the
/// site's trip count advances. One relaxed atomic load when nothing is
/// armed — safe on hot paths.
bool inject(const char* site, int* injected_errno);

/// Arm `site`: after letting `skip` calls through, fail `times` calls
/// (-1 = every call) with `error`. Re-arming an armed site replaces it
/// but keeps its accumulated trip count.
void arm(const std::string& site, int error, std::uint64_t skip = 0,
         std::int64_t times = -1);

/// Disarm one site / every site (trip counts are discarded).
void disarm(const std::string& site);
void disarm_all();

/// How many times `site` actually injected a failure since it was armed.
std::uint64_t trip_count(const std::string& site);

/// Parse `SUBLET_FAULTS` (or the named variable) and arm each entry.
/// Returns the number of sites armed; unparseable entries are skipped.
/// The first inject() call runs this automatically, once per process.
std::size_t load_env(const char* var = "SUBLET_FAULTS");

/// Arm sites from a spec string in the SUBLET_FAULTS grammar
/// (`site=errno[:times[:skip]]`, comma-separated) without touching the
/// environment — how the soak harness schedules mid-run fault storms.
/// Returns the number of sites armed.
std::size_t load_spec(std::string_view spec);

/// RAII arming for tests: arms in the constructor, disarms that one site
/// in the destructor.
class ScopedFault {
 public:
  ScopedFault(std::string site, int error, std::uint64_t skip = 0,
              std::int64_t times = -1)
      : site_(std::move(site)) {
    arm(site_, error, skip, times);
  }
  ~ScopedFault() { disarm(site_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  std::uint64_t trips() const { return trip_count(site_); }

 private:
  std::string site_;
};

#else  // SUBLET_FAULT_INJECTION off: everything is a no-op.

constexpr bool enabled() { return false; }
inline bool inject(const char*, int*) { return false; }
inline void arm(const std::string&, int, std::uint64_t = 0,
                std::int64_t = -1) {}
inline void disarm(const std::string&) {}
inline void disarm_all() {}
inline std::uint64_t trip_count(const std::string&) { return 0; }
inline std::size_t load_env(const char* = "SUBLET_FAULTS") { return 0; }
inline std::size_t load_spec(std::string_view) { return 0; }

class ScopedFault {
 public:
  ScopedFault(std::string, int, std::uint64_t = 0, std::int64_t = -1) {}
  std::uint64_t trips() const { return 0; }
};

#endif

}  // namespace sublet::fault
