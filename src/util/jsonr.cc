#include "util/jsonr.h"

#include <cmath>
#include <cstdlib>

namespace sublet {

namespace {

const JsonValue& null_value() {
  static const JsonValue* kNull = new JsonValue();
  return *kNull;
}

const std::vector<JsonValue>& empty_array() {
  static const auto* kEmpty = new std::vector<JsonValue>();
  return *kEmpty;
}

const std::vector<std::pair<std::string, JsonValue>>& empty_object() {
  static const auto* kEmpty =
      new std::vector<std::pair<std::string, JsonValue>>();
  return *kEmpty;
}

const std::string& empty_string() {
  static const std::string* kEmpty = new std::string();
  return *kEmpty;
}

}  // namespace

struct JsonValue::Parser {
  std::string_view text;
  std::size_t at = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 64;

  bool done() const { return at >= text.size(); }
  char peek() const { return text[at]; }

  void skip_ws() {
    while (!done() && (text[at] == ' ' || text[at] == '\t' ||
                       text[at] == '\n' || text[at] == '\r')) {
      ++at;
    }
  }

  bool consume(char c) {
    if (done() || text[at] != c) return false;
    ++at;
    return true;
  }

  Expected<JsonValue> error(std::string_view what) const {
    return fail("json parse error at byte " + std::to_string(at) + ": " +
                std::string(what));
  }

  Expected<std::string> parse_string() {
    if (!consume('"')) {
      return fail("json parse error at byte " + std::to_string(at) +
                  ": expected string");
    }
    std::string out;
    while (!done()) {
      char c = text[at++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) break;  // raw control byte
      if (c != '\\') {
        out += c;
        continue;
      }
      if (done()) break;
      char esc = text[at++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (at + 4 > text.size()) {
            return fail("json parse error: truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[at++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("json parse error: bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs — absent
          // from our own emitter's output — decode as two 3-byte units).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("json parse error: bad escape");
      }
    }
    return fail("json parse error: unterminated string");
  }

  Expected<JsonValue> parse_value() {
    skip_ws();
    if (done()) return error("unexpected end of input");
    if (++depth > kMaxDepth) return error("nesting too deep");
    struct DepthGuard {
      int& d;
      ~DepthGuard() { --d; }
    } guard{depth};
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      ++at;
      v.type_ = Type::kObject;
      skip_ws();
      if (consume('}')) return v;
      for (;;) {
        skip_ws();
        auto key = parse_string();
        if (!key) return key.error();
        skip_ws();
        if (!consume(':')) return error("expected ':'");
        auto member = parse_value();
        if (!member) return member.error();
        v.object_.emplace_back(std::move(*key), std::move(*member));
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) return v;
        return error("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++at;
      v.type_ = Type::kArray;
      skip_ws();
      if (consume(']')) return v;
      for (;;) {
        auto item = parse_value();
        if (!item) return item.error();
        v.array_.push_back(std::move(*item));
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) return v;
        return error("expected ',' or ']'");
      }
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s) return s.error();
      v.type_ = Type::kString;
      v.string_ = std::move(*s);
      return v;
    }
    if (text.compare(at, 4, "true") == 0) {
      at += 4;
      v.type_ = Type::kBool;
      v.bool_ = true;
      return v;
    }
    if (text.compare(at, 5, "false") == 0) {
      at += 5;
      v.type_ = Type::kBool;
      return v;
    }
    if (text.compare(at, 4, "null") == 0) {
      at += 4;
      return v;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      const std::size_t start = at;
      if (consume('-')) {}
      while (!done() && peek() >= '0' && peek() <= '9') ++at;
      if (consume('.')) {
        while (!done() && peek() >= '0' && peek() <= '9') ++at;
      }
      if (!done() && (peek() == 'e' || peek() == 'E')) {
        ++at;
        if (!done() && (peek() == '+' || peek() == '-')) ++at;
        while (!done() && peek() >= '0' && peek() <= '9') ++at;
      }
      const std::string token(text.substr(start, at - start));
      char* end = nullptr;
      const double parsed = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || !std::isfinite(parsed)) {
        return error("bad number");
      }
      v.type_ = Type::kNumber;
      v.number_ = parsed;
      return v;
    }
    return error("unexpected character");
  }
};

Expected<JsonValue> JsonValue::parse(std::string_view text) {
  Parser parser{text};
  auto value = parser.parse_value();
  if (!value) return value;
  parser.skip_ws();
  if (!parser.done()) return parser.error("trailing content");
  return value;
}

const JsonValue& JsonValue::operator[](std::string_view key) const {
  if (type_ == Type::kObject) {
    for (const auto& [k, v] : object_) {
      if (k == key) return v;
    }
  }
  return null_value();
}

const JsonValue& JsonValue::operator[](std::size_t index) const {
  if (type_ == Type::kArray && index < array_.size()) return array_[index];
  return null_value();
}

bool JsonValue::has(std::string_view key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

std::size_t JsonValue::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

const std::vector<JsonValue>& JsonValue::items() const {
  return type_ == Type::kArray ? array_ : empty_array();
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  return type_ == Type::kObject ? object_ : empty_object();
}

double JsonValue::as_double(double fallback) const {
  return type_ == Type::kNumber ? number_ : fallback;
}

std::uint64_t JsonValue::as_u64(std::uint64_t fallback) const {
  if (type_ != Type::kNumber || number_ < 0) return fallback;
  return static_cast<std::uint64_t>(number_);
}

std::int64_t JsonValue::as_i64(std::int64_t fallback) const {
  if (type_ != Type::kNumber) return fallback;
  return static_cast<std::int64_t>(number_);
}

bool JsonValue::as_bool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

const std::string& JsonValue::as_string() const {
  return type_ == Type::kString ? string_ : empty_string();
}

}  // namespace sublet
