#include "util/strings.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace sublet {

namespace {
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool istarts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  return value;
}

std::optional<std::uint32_t> parse_u32(std::string_view s) {
  auto v = parse_u64(s);
  if (!v || *v > UINT32_MAX) return std::nullopt;
  return static_cast<std::uint32_t>(*v);
}

std::string normalize_org_name(std::string_view name) {
  // Lowercase, keep only alphanumerics as word characters.
  std::vector<std::string> words;
  std::string cur;
  for (char raw : name) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      cur.push_back(static_cast<char>(std::tolower(c)));
    } else if (!cur.empty()) {
      words.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) words.push_back(std::move(cur));

  // Merge runs of single-letter tokens so dotted abbreviations compare equal
  // to their plain forms: "L.T.D." -> [l,t,d] -> "ltd".
  std::vector<std::string> merged;
  for (std::size_t i = 0; i < words.size();) {
    if (words[i].size() == 1) {
      std::size_t j = i;
      std::string run;
      while (j < words.size() && words[j].size() == 1) run += words[j++];
      if (run.size() > 1) {
        merged.push_back(std::move(run));
        i = j;
        continue;
      }
    }
    merged.push_back(std::move(words[i]));
    ++i;
  }
  words = std::move(merged);

  // Drop trailing legal-entity suffixes, possibly several ("co ltd").
  static constexpr std::array<std::string_view, 16> kSuffixes = {
      "ltd", "limited", "llc", "inc", "incorporated", "gmbh", "sa", "srl",
      "bv",  "ab",      "as",  "co",  "corp",         "plc",  "pte", "fzco"};
  while (!words.empty()) {
    const std::string& last = words.back();
    bool is_suffix = std::find(kSuffixes.begin(), kSuffixes.end(), last) !=
                     kSuffixes.end();
    if (!is_suffix) break;
    if (words.size() == 1) break;  // never reduce a name to nothing
    words.pop_back();
  }

  std::string out;
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (i) out.push_back(' ');
    out += words[i];
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace sublet
