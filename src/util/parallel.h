// Shared-memory parallelism primitives for the pipeline's hot paths.
//
// Everything here is built on one fixed-size ThreadPool. Three primitives
// cover the codebase's needs:
//
//  - parallel_for(n, chunk, fn): partition [0, n) into contiguous chunks
//    and invoke fn(begin, end) concurrently. With an effective thread
//    count of 1 the chunks run serially in order — the exact legacy path.
//  - parallel_map(items, fn): apply fn to every element and return the
//    results *in input order*, regardless of which worker finished first.
//    This is what keeps classification output byte-identical across
//    thread counts.
//  - TaskGroup: heterogeneous fan-out (load five WHOIS files and N RIB
//    files at once). With one thread, tasks run inline at submission time
//    in submission order.
//
// Thread-count convention: every primitive takes `threads`, where 0 means
// "use the process-wide default" (set_default_threads / --threads; initial
// value hardware_concurrency) and 1 means strictly serial — no worker
// threads are created at all. The first exception thrown by any chunk or
// task is captured and rethrown from the calling thread after all work
// has drained; further exceptions are discarded.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sublet::par {

/// Worker count used when a primitive is called with threads == 0.
/// Initially std::thread::hardware_concurrency() (at least 1).
unsigned default_threads();

/// Override the process-wide default. 0 resets to hardware_concurrency.
void set_default_threads(unsigned n);

/// Resolve a requested count: 0 -> default_threads(), otherwise n.
unsigned resolve_threads(unsigned requested);

/// Chunk size that gives each worker a few chunks to load-balance over:
/// ceil(n / (threads * 4)), at least 1.
std::size_t recommended_chunk(std::size_t n, unsigned threads);

/// Fixed pool of worker threads draining one task queue.
class ThreadPool {
 public:
  /// Spawns resolve_threads(threads) workers. When that resolves to 1, no
  /// worker threads are created and submitted tasks run inline inside
  /// submit(), in submission order — the exact legacy execution.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Effective thread count: 1 in inline (serial) mode, else the number
  /// of worker threads.
  unsigned size() const {
    return workers_.empty() ? 1u : static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a task. With zero workers the task runs inline immediately.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait();

 private:
  struct State;
  void worker_loop();

  std::unique_ptr<State> state_;
  std::vector<std::thread> workers_;
};

/// Invoke fn(begin, end) over [0, n) partitioned into chunks of at most
/// `chunk` indices (0 = recommended_chunk). Rethrows the first exception.
void parallel_for(std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  unsigned threads = 0);

/// Heterogeneous fan-out: run() any number of independent tasks, then
/// wait() for all of them. wait() rethrows the first task exception.
class TaskGroup {
 public:
  explicit TaskGroup(unsigned threads = 0);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> task);

  /// Drain all tasks; rethrows the first captured exception.
  void wait();

 private:
  ThreadPool pool_;
  std::mutex error_mu_;
  std::exception_ptr error_;
};

/// Order-preserving map: out[i] == fn(items[i]). The result type only
/// needs to be move-constructible. Serial (and allocation-identical to a
/// plain loop) when the effective thread count is 1.
template <typename In, typename Fn>
auto parallel_map(const std::vector<In>& items, Fn fn, unsigned threads = 0)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const In&>>> {
  using Out = std::decay_t<std::invoke_result_t<Fn&, const In&>>;
  std::vector<Out> out;
  unsigned t = resolve_threads(threads);
  if (t <= 1 || items.size() <= 1) {
    out.reserve(items.size());
    for (const In& item : items) out.push_back(fn(item));
    return out;
  }
  std::vector<std::optional<Out>> slots(items.size());
  parallel_for(
      items.size(), recommended_chunk(items.size(), t),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) slots[i].emplace(fn(items[i]));
      },
      t);
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace sublet::par
