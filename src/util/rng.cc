#include "util/rng.h"

#include <cmath>

namespace sublet {

std::uint64_t Rng::next_zipf(std::uint64_t n, double alpha) {
  if (n <= 1) return 0;
  // Inverse-transform on the continuous approximation of the Zipf CDF:
  // P(X <= x) ~ H(x)/H(n) with H(x) = x^(1-alpha) for alpha != 1, ln(x) else.
  double u = next_double();
  double x;
  if (alpha == 1.0) {
    x = std::exp(u * std::log(static_cast<double>(n)));
  } else {
    double h_n = std::pow(static_cast<double>(n), 1.0 - alpha);
    x = std::pow(u * (h_n - 1.0) + 1.0, 1.0 / (1.0 - alpha));
  }
  auto rank = static_cast<std::uint64_t>(x) - (x >= 1.0 ? 1 : 0);
  return rank >= n ? n - 1 : rank;
}

}  // namespace sublet
