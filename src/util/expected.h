// Minimal Expected<T> result type for per-record parse outcomes.
//
// The library's convention (see DESIGN.md §3): exceptions signal I/O and
// programming errors; Expected carries recoverable per-record failures so a
// malformed WHOIS object or MRT record can be diagnosed without aborting a
// multi-gigabyte parse.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace sublet {

/// Error payload: a human-readable message plus optional source location
/// (file/line of the *input being parsed*, not of the C++ source).
struct Error {
  std::string message;
  std::string source;      ///< e.g. input filename, or empty
  std::size_t line = 0;    ///< 1-based line in `source`, 0 = unknown
  int code = 0;            ///< optional errno-style code, 0 = unset

  /// Render as "source:line: message" (pieces omitted when absent).
  std::string to_string() const {
    std::string out;
    if (!source.empty()) {
      out += source;
      if (line > 0) out += ':' + std::to_string(line);
      out += ": ";
    }
    out += message;
    return out;
  }
};

/// Holds either a value or an Error. Cheap, move-friendly, no heap beyond
/// what T and the error strings need.
template <typename T>
class Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Expected(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  bool has_value() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return has_value(); }

  T& value() & {
    assert(has_value());
    return std::get<T>(data_);
  }
  const T& value() const& {
    assert(has_value());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(has_value());
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    assert(!has_value());
    return std::get<Error>(data_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Value or a fallback when this holds an error.
  T value_or(T fallback) const& {
    return has_value() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Convenience factory so call sites read `return fail("bad prefix")`.
inline Error fail(std::string message, std::string source = {},
                  std::size_t line = 0) {
  return Error{std::move(message), std::move(source), line};
}

/// Factory for errors a caller dispatches on: `code` is errno-style (e.g.
/// ETIMEDOUT from a client deadline) so callers can branch without string
/// matching.
inline Error fail_code(std::string message, int code) {
  return Error{std::move(message), {}, 0, code};
}

}  // namespace sublet
