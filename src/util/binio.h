// Little-endian byte-buffer I/O for the snapshot format.
//
// mrt/bytes.h speaks the network's big-endian dialect; artifacts we design
// ourselves (src/snapshot/) are little-endian so sections can be bulk-read
// straight into in-memory arenas on the machines we run on. The reader is
// bounds-checked like mrt::BufReader: corruption sets a sticky failure flag
// instead of throwing, and callers turn ok()==false into an Error.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sublet {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`, continuing from
/// `crc` so large payloads can be checksummed in pieces. Start from 0.
std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t crc = 0);

/// Appending little-endian writer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_int(v); }
  void u32(std::uint32_t v) { append_int(v); }
  void u64(std::uint64_t v) { append_int(v); }

  /// LEB128 variable-length unsigned integer (1..10 bytes).
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void string(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Zero-pad so the next write lands on an `alignment`-byte boundary.
  void pad_to(std::size_t alignment) {
    while (buf_.size() % alignment != 0) buf_.push_back(0);
  }

  /// Overwrite a previously written u32 at `offset` (for back-patching).
  void patch_u32(std::size_t offset, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_[offset + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  std::size_t size() const { return buf_.size(); }
  std::span<const std::uint8_t> data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  template <typename T>
  void append_int(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a byte span (non-owning).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return !failed_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

  std::uint8_t u8() { return read_int<std::uint8_t>(); }
  std::uint16_t u16() { return read_int<std::uint16_t>(); }
  std::uint32_t u32() { return read_int<std::uint32_t>(); }
  std::uint64_t u64() { return read_int<std::uint64_t>(); }

  /// LEB128 decode; fails on truncation or encodings longer than 10 bytes.
  std::uint64_t varint() {
    std::uint64_t value = 0;
    for (int shift = 0; shift < 70; shift += 7) {
      if (failed_ || remaining() == 0) {
        failed_ = true;
        return 0;
      }
      std::uint8_t byte = data_[pos_++];
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
    }
    failed_ = true;  // unterminated encoding
    return 0;
  }

  /// Read `n` raw bytes; returns empty span and sets failure on underrun.
  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (failed_ || remaining() < n) {
      failed_ = true;
      return {};
    }
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::string string(std::size_t n) {
    auto b = bytes(n);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

  void skip(std::size_t n) { (void)bytes(n); }

 private:
  template <typename T>
  T read_int() {
    auto b = bytes(sizeof(T));
    if (b.size() != sizeof(T)) return T{};
    T value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      value |= static_cast<T>(static_cast<T>(b[i]) << (8 * i));
    }
    return value;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace sublet
