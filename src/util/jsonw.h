// Minimal JSON emission shared by the serving wire protocol and the
// structured logger (docs/SERVING.md, docs/OBSERVABILITY.md).
//
// Emitted payloads are single-line JSON objects; the codebase only ever
// *writes* JSON, so a tiny append-only builder is all that is needed (no
// parser, no DOM). Lived in src/serve/ until the observability layer also
// needed it; serve/json.h re-exports the old names.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sublet {

/// Escape per RFC 8259: quote, backslash, and control characters.
std::string json_escape(std::string_view s);

/// Append-only single-line JSON object/array builder. Keys and values are
/// emitted in call order; the caller is responsible for nesting balance.
class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array(std::string_view key) {
    return this->key(key).open('[');
  }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view k) {
    comma();
    out_ += '"';
    out_ += json_escape(k);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    out_ += '"';
    out_ += json_escape(v);
    out_ += '"';
    return *this;
  }
  // Without this, a string literal converts to bool (the built-in pointer
  // conversion beats the string_view user conversion) and "X" comes out as
  // `true`.
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(double v);

  /// Verbatim append of pre-rendered JSON (e.g. a number with custom
  /// precision). The caller guarantees `raw` is valid JSON in context.
  JsonWriter& raw_value(std::string_view raw) {
    comma();
    out_ += raw;
    return *this;
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  JsonWriter& open(char c) {
    comma();
    out_ += c;
    first_ = true;
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    first_ = false;
    return *this;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // value follows its key directly
    }
    if (!first_ && !out_.empty()) out_ += ',';
    first_ = false;
  }

  std::string out_;
  bool first_ = true;
  bool pending_value_ = false;
};

}  // namespace sublet
