// Small string helpers shared across parsers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sublet {

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Split on a single character; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Split on runs of ASCII whitespace; never yields empty fields.
std::vector<std::string_view> split_ws(std::string_view s);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// Parse an unsigned decimal integer; rejects junk, overflow, empty input.
std::optional<std::uint64_t> parse_u64(std::string_view s);

/// Parse an unsigned decimal that must fit in 32 bits.
std::optional<std::uint32_t> parse_u32(std::string_view s);

/// True if `s` starts with `prefix`, ignoring ASCII case.
bool istarts_with(std::string_view s, std::string_view prefix);

/// Normalize an organization name for fuzzy matching: lowercase, strip
/// punctuation, collapse whitespace, and drop legal-entity suffixes
/// (ltd, llc, inc, gmbh, ...). Used when mapping registered-broker company
/// names to WHOIS organisation objects (§6.2 of the paper: "LTD vs L.T.D.").
std::string normalize_org_name(std::string_view name);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace sublet
