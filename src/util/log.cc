#include "util/log.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/jsonw.h"

namespace sublet {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

LogFormat initial_format() {
  const char* env = std::getenv("SUBLET_LOG_JSON");
  if (env && *env && std::string_view(env) != "0") return LogFormat::kJson;
  return LogFormat::kText;
}

std::atomic<LogFormat> g_format{initial_format()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

const char* level_name_lower(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

/// UTC wall-clock timestamp with millisecond precision, RFC 3339 shaped.
std::string timestamp_utc() {
  using namespace std::chrono;
  auto now = system_clock::now();
  auto secs = time_point_cast<seconds>(now);
  auto millis =
      duration_cast<milliseconds>(now - secs).count();
  std::time_t t = system_clock::to_time_t(now);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[80];  // worst-case tm fields stay within the format's 78 bytes
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(millis));
  return buf;
}

/// One write(2) for the whole line: concurrent loggers (ThreadPool
/// workers, the server's accept loop) never interleave partial lines the
/// way a multi-part fprintf could. Short writes are continued — for the
/// line lengths logging produces they effectively never happen on a
/// console, file, or pipe.
void emit(std::string line) {
  line += '\n';
  const char* data = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    ssize_t n = ::write(STDERR_FILENO, data, left);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // stderr is gone; nothing sensible to do
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
}

bool passes(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level.load());
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_format(LogFormat format) { g_format.store(format); }
LogFormat log_format() { return g_format.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (!passes(level)) return;
  log_structured(level, {}, message, {});
}

void log_structured(
    LogLevel level, std::string_view component, const std::string& message,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  if (!passes(level)) return;
  if (g_format.load() == LogFormat::kJson) {
    JsonWriter json;
    json.begin_object();
    json.key("ts").value(timestamp_utc());
    json.key("level").value(level_name_lower(level));
    if (!component.empty()) json.key("component").value(component);
    json.key("msg").value(message);
    for (const auto& [key, value] : fields) {
      json.key(key).value(value);
    }
    json.end_object();
    emit(json.take());
    return;
  }
  std::string line = "[";
  line += level_name(level);
  line += "] ";
  if (!component.empty()) {
    line += component;
    line += ": ";
  }
  line += message;
  for (const auto& [key, value] : fields) {
    line += ' ';
    line += key;
    line += '=';
    line += value;
  }
  emit(std::move(line));
}

}  // namespace sublet
