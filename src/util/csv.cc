#include "util/csv.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace sublet {

CsvWriter::CsvWriter(std::ostream& out, char sep) : out_(out), sep_(sep) {}

namespace {
bool needs_quoting(std::string_view field, char sep) {
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}
}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << sep_;
    const std::string& f = fields[i];
    if (needs_quoting(f, sep_)) {
      out_ << '"';
      for (char c : f) {
        if (c == '"') out_ << '"';
        out_ << c;
      }
      out_ << '"';
    } else {
      out_ << f;
    }
  }
  out_ << '\n';
}

std::vector<std::string> parse_csv_line(std::string_view line, char sep) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"' && cur.empty()) {
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

namespace {
/// True if `text` ends inside an open quoted field.
bool quote_open(std::string_view text, char sep) {
  bool in_quotes = false;
  std::string cur;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          ++i;
        } else {
          in_quotes = false;
        }
      }
      cur.push_back(c);
    } else if (c == '"' && cur.empty()) {
      in_quotes = true;
    } else if (c == sep) {
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  return in_quotes;
}
}  // namespace

bool read_csv_record(std::istream& in, std::string& record, char sep) {
  record.clear();
  std::string line;
  if (!std::getline(in, line)) return false;
  for (;;) {
    record += line;
    if (!quote_open(record, sep)) break;
    if (!std::getline(in, line)) break;  // unterminated quote at EOF
    record += '\n';  // the break was field content
  }
  // A CR from a CRLF line ending is transport, not content: quoted fields
  // carry their CRs mid-record (the closing quote follows them), so a
  // trailing CR here can only come from the line terminator.
  if (!record.empty() && record.back() == '\r') record.pop_back();
  return true;
}

std::vector<std::vector<std::string>> read_delimited_file(
    const std::string& path, char sep) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    rows.push_back(parse_csv_line(line, sep));
  }
  return rows;
}

}  // namespace sublet
