#include "loadgen/scenario.h"

#include <algorithm>

#include "util/strings.h"

namespace sublet::loadgen {

const char* chaos_name(ChaosKind kind) {
  switch (kind) {
    case ChaosKind::kAppend: return "append";
    case ChaosKind::kReload: return "reload";
    case ChaosKind::kFaults: return "faults";
    case ChaosKind::kKillAppend: return "killappend";
    case ChaosKind::kKillServer: return "killserver";
    case ChaosKind::kChurn: return "churn";
    case ChaosKind::kSlowReader: return "slowreader";
  }
  return "?";
}

std::string ChaosEvent::to_string() const {
  std::string out = chaos_name(kind);
  out += '@';
  out += std::to_string(at_ms);
  if (!arg.empty()) {
    out += ':';
    out += arg;
  }
  return out;
}

Expected<std::vector<ChaosEvent>> parse_scenario(std::string_view spec) {
  std::vector<ChaosEvent> events;
  for (std::string_view token : split(spec, ';')) {
    token = trim(token);
    if (token.empty()) continue;
    const std::size_t at = token.find('@');
    if (at == std::string_view::npos || at == 0) {
      return fail("scenario event '" + std::string(token) +
                  "' is not kind@at_ms[:arg]");
    }
    const std::string_view kind_text = trim(token.substr(0, at));
    std::string_view rest = token.substr(at + 1);
    ChaosEvent event;
    // Everything after the first ':' is the argument verbatim — a faults
    // spec legitimately contains more ':' of its own.
    if (const std::size_t colon = rest.find(':');
        colon != std::string_view::npos) {
      event.arg = std::string(trim(rest.substr(colon + 1)));
      rest = rest.substr(0, colon);
    }
    auto ms = parse_u64(trim(rest));
    if (!ms) {
      return fail("scenario event '" + std::string(token) +
                  "' has a bad timestamp");
    }
    event.at_ms = *ms;
    bool known = false;
    for (ChaosKind kind :
         {ChaosKind::kAppend, ChaosKind::kReload, ChaosKind::kFaults,
          ChaosKind::kKillAppend, ChaosKind::kKillServer, ChaosKind::kChurn,
          ChaosKind::kSlowReader}) {
      if (kind_text == chaos_name(kind)) {
        event.kind = kind;
        known = true;
        break;
      }
    }
    if (!known) {
      return fail("unknown scenario event kind '" + std::string(kind_text) +
                  "'");
    }
    events.push_back(std::move(event));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at_ms < b.at_ms;
                   });
  return events;
}

std::string canonical_scenario(const std::vector<ChaosEvent>& events) {
  std::string out;
  for (const ChaosEvent& event : events) {
    if (!out.empty()) out += ';';
    out += event.to_string();
  }
  return out;
}

}  // namespace sublet::loadgen
