#include "loadgen/worldcache.h"

#include <filesystem>
#include <fstream>
#include <utility>

#include "catalog/catalog.h"
#include "leasing/report.h"
#include "simnet/config.h"
#include "simnet/timeline_scenario.h"

namespace sublet::loadgen {

namespace {

namespace fs = std::filesystem;

std::string cache_dir_for(const SoakWorldSpec& spec,
                          const std::string& cache_root) {
  const auto permille = static_cast<long long>(spec.scale * 1000.0 + 0.5);
  return cache_root + "/sublet-soak-v1-" + std::to_string(spec.seed) + "-" +
         std::to_string(permille) + "-" + std::to_string(spec.epochs) + "-" +
         std::to_string(spec.pending);
}

std::vector<PendingEpoch> pending_for(const SoakWorldSpec& spec,
                                      const std::string& dir) {
  std::vector<PendingEpoch> pending;
  for (std::size_t k = 0; k < spec.pending; ++k) {
    const std::size_t index = spec.epochs + k;
    PendingEpoch entry;
    entry.timestamp =
        spec.start + static_cast<std::uint32_t>(index) * spec.step;
    entry.csv_path = dir + "/pending-" + std::to_string(index) + ".csv";
    pending.push_back(std::move(entry));
  }
  return pending;
}

}  // namespace

Expected<SoakWorld> ensure_soak_world(const SoakWorldSpec& spec,
                                      const std::string& cache_root) {
  if (spec.epochs == 0) return fail("soak world needs at least one epoch");
  SoakWorld world;
  world.dir = cache_dir_for(spec, cache_root);
  world.catalog_dir = world.dir + "/catalog";
  world.pending = pending_for(spec, world.dir);
  const std::string marker = world.dir + "/.complete";
  std::error_code ec;
  if (fs::exists(marker, ec)) return world;

  // (Re)build from scratch: a half-built cache (no marker) is garbage.
  fs::remove_all(world.dir, ec);
  fs::create_directories(world.dir, ec);
  if (ec) {
    return fail("cannot create soak cache dir " + world.dir + ": " +
                ec.message());
  }

  sim::WorldConfig config;
  config.seed = spec.seed;
  config.scale = spec.scale;
  sim::EpochSeriesOptions series_options;
  series_options.start = spec.start;
  series_options.step = spec.step;
  series_options.epochs = spec.epochs + spec.pending;
  sim::EpochSeries series = sim::build_epoch_series(config, series_options);

  for (std::size_t k = 0; k < spec.epochs; ++k) {
    auto entry =
        k == 0 ? catalog::catalog_init(world.catalog_dir, series.timestamps[k],
                                       std::move(series.inferences[k]))
               : catalog::catalog_append(world.catalog_dir,
                                         series.timestamps[k],
                                         std::move(series.inferences[k]));
    if (!entry) return entry.error();
  }
  for (std::size_t k = 0; k < spec.pending; ++k) {
    const std::size_t index = spec.epochs + k;
    leasing::save_inferences_csv(world.pending[k].csv_path,
                                 series.inferences[index]);
  }
  std::ofstream(marker) << "ok\n";
  if (!fs::exists(marker, ec)) {
    return fail("cannot write soak cache marker " + marker);
  }
  return world;
}

Expected<std::string> clone_catalog(const SoakWorld& world,
                                    const std::string& dest_dir) {
  std::error_code ec;
  fs::remove_all(dest_dir, ec);
  fs::create_directories(dest_dir, ec);
  if (ec) {
    return fail("cannot create run catalog dir " + dest_dir + ": " +
                ec.message());
  }
  // `recursive` is load-bearing: with only `overwrite_existing` set,
  // fs::copy skips the directory-content branch and clones nothing.
  fs::copy(world.catalog_dir, dest_dir,
           fs::copy_options::recursive | fs::copy_options::overwrite_existing,
           ec);
  if (ec) {
    return fail("cannot clone catalog " + world.catalog_dir + " -> " +
                dest_dir + ": " + ec.message());
  }
  return dest_dir;
}

}  // namespace sublet::loadgen
