#include "loadgen/report.h"

#include <cstdio>

#include "util/jsonw.h"

namespace sublet::loadgen {

namespace {

/// JsonWriter::value(double) rounds to one decimal — fine for latencies,
/// lossy for knobs like world_scale=0.02 whose exact value the
/// reproduce-from-report workflow depends on.
std::string precise(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const char* verb_name(LoadVerb verb) {
  switch (verb) {
    case LoadVerb::kExact: return "exact";
    case LoadVerb::kLpm: return "lpm";
    case LoadVerb::kMlpm: return "mlpm";
    case LoadVerb::kLpmBatch: return "lpm_batch";
    case LoadVerb::kExactBatch: return "exact_batch";
    case LoadVerb::kAt: return "at";
    case LoadVerb::kHistory: return "history";
    case LoadVerb::kStats: return "stats";
    case LoadVerb::kMetrics: return "metrics";
  }
  return "?";
}

bool is_point_verb(LoadVerb verb) {
  switch (verb) {
    case LoadVerb::kExact:
    case LoadVerb::kLpm:
    case LoadVerb::kLpmBatch:
    case LoadVerb::kExactBatch:
    case LoadVerb::kAt:
      return true;
    case LoadVerb::kMlpm:
    case LoadVerb::kHistory:
    case LoadVerb::kStats:
    case LoadVerb::kMetrics:
      return false;
  }
  return false;
}

std::string LoadReport::deterministic_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("seed").value(seed);
  json.key("scenario").value(scenario);
  json.key("workers").value(static_cast<std::uint64_t>(workers));
  json.key("duration_ms").value(duration_ms);
  json.key("qps").raw_value(precise(qps));
  json.key("zipf_alpha").raw_value(precise(zipf_alpha));
  json.key("world_seed").value(world_seed);
  json.key("world_scale").raw_value(precise(world_scale));
  json.key("records").value(records);
  json.key("schedule_digest").value(schedule_digest);
  json.key("planned").begin_object();
  for (std::size_t v = 0; v < kVerbCount; ++v) {
    json.key(verb_name(static_cast<LoadVerb>(v))).value(planned[v]);
  }
  json.end_object();
  json.end_object();
  return json.take();
}

std::string LoadReport::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("deterministic").raw_value(deterministic_json());
  json.key("verbs").begin_object();
  for (std::size_t v = 0; v < kVerbCount; ++v) {
    const VerbReport& verb = verbs[v];
    json.key(verb_name(static_cast<LoadVerb>(v))).begin_object();
    json.key("completed").value(verb.completed);
    json.key("errors").value(verb.errors);
    json.key("p50_us").value(verb.p50_us);
    json.key("p99_us").value(verb.p99_us);
    json.end_object();
  }
  json.end_object();
  json.key("total_requests").value(total_requests);
  json.key("total_lookups").value(total_lookups);
  json.key("spot_checks").value(spot_checks);
  json.key("wrong_answers").value(wrong_answers);
  json.key("injected_errors").value(injected_errors);
  json.key("uninjected_errors").value(uninjected_errors);
  json.key("elapsed_ms").value(elapsed_ms);
  json.key("achieved_qps").value(achieved_qps);
  json.key("lookups_per_s").value(lookups_per_s);
  json.key("chaos").begin_object();
  json.key("events_run").value(chaos.events_run);
  json.key("appends").value(chaos.appends);
  json.key("reloads").value(chaos.reloads);
  json.key("fault_storms").value(chaos.fault_storms);
  json.key("kills").value(chaos.kills);
  json.key("churn_conns").value(chaos.churn_conns);
  json.key("slow_readers").value(chaos.slow_readers);
  json.key("outbuf_overflows").value(chaos.outbuf_overflows);
  json.end_object();
  json.key("slo").begin_object();
  json.key("p99_bound_us").value(slo.p99_bound_us);
  json.key("heavy_p99_bound_us").value(slo.heavy_p99_bound_us);
  json.key("p99_ok").value(slo.p99_ok);
  json.key("zero_wrong_answers").value(slo.zero_wrong_answers);
  json.key("zero_uninjected_errors").value(slo.zero_uninjected_errors);
  json.key("pass").value(slo.pass);
  json.end_object();
  if (!slo.pass) {
    // Failed runs carry the flight-recorder evidence scraped via INSPECT
    // right before shutdown — worst requests first.
    json.begin_array("slow_requests");
    for (const SlowRequestEvidence& ev : slow_requests) {
      json.begin_object();
      json.key("shard").value(static_cast<std::uint64_t>(ev.shard));
      json.key("seq").value(ev.seq);
      json.key("verb").value(ev.verb);
      json.key("status").value(ev.status);
      json.key("read_us").value(ev.read_us);
      json.key("parse_us").value(ev.parse_us);
      json.key("engine_us").value(ev.engine_us);
      json.key("write_us").value(ev.write_us);
      json.key("total_us").value(ev.total_us);
      if (!ev.detail.empty()) json.key("detail").value(ev.detail);
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();
  return json.take();
}

}  // namespace sublet::loadgen
