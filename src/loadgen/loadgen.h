// Multi-threaded open-loop load driver + chaos harness
// (docs/ROBUSTNESS.md "Soak & chaos").
//
// run_load() replays seed-keyed Zipf-distributed query traffic over the
// server's full verb surface — EXACT / LPM / MLPM / AT / HISTORY / STATS /
// METRICS text verbs plus pipelined LPM_BATCH and EXACT_BATCH binary
// frames — against a catalog-mode QueryServer it either hosts in-process
// or forks as a child (`server_argv`). The request schedule is fully
// precomputed from the seed before the first byte is sent: two runs with
// the same (seed, scenario, load shape) replay the identical request
// sequence, summarized by the report's `schedule_digest`.
//
// While workers drive traffic, a scenario (loadgen/scenario.h) schedules
// chaos on a deterministic timeline: catalog appends + RELOADs, fault
// storms through util/faultinject.h, connection churn, slow readers that
// pipeline requests without ever reading (tripping the server's
// per-connection output cap), and a SIGKILL of an appender process in the
// middle of a catalog append — followed by reopen-and-verify, exercising
// the catalog's crash-leftover sweep.
//
// A sampled fraction of requests is differentially spot-checked against
// the driver's own Catalog materialization of the pinned epoch, so "zero
// wrong answers" in the SLO contract is a real end-to-end assertion, not
// a status-code count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "loadgen/report.h"
#include "loadgen/worldcache.h"
#include "util/expected.h"

namespace sublet::loadgen {

struct LoadOptions {
  std::uint64_t seed = 1;
  unsigned workers = 4;
  std::uint64_t duration_ms = 10'000;
  double qps = 2000.0;  ///< aggregate target across all workers
  double zipf_alpha = 1.0;
  std::size_t batch_size = 256;     ///< addresses per binary frame
  std::size_t pipeline_depth = 4;   ///< frames per LPM_BATCH burst
  std::string scenario;             ///< chaos timeline (loadgen/scenario.h)

  /// World to serve: built/cached via ensure_soak_world unless
  /// `catalog_dir` points at an existing catalog (which the run will
  /// clone into its scratch dir before any chaos append mutates it).
  SoakWorldSpec world;
  std::string catalog_dir;

  /// Non-empty: fork `server_argv + [serve flags]` as a child process
  /// instead of hosting the server in-process (required for the
  /// killserver event; the faults event requires in-process).
  std::vector<std::string> server_argv;
  unsigned shards = 0;  ///< 0 = server default
  std::size_t max_outbuf_bytes = 8u << 20;
  int io_timeout_ms = 10'000;

  // ---- SLO contract ----
  double p99_bound_us = 50'000.0;        ///< point-lookup verbs
  double heavy_p99_bound_us = 2'000'000.0;
  /// Differentially verify every Nth scheduled op (0 = off).
  std::uint32_t spot_check_every = 64;

  std::string run_dir;      ///< scratch; "" = fresh dir under /tmp
  std::string report_path;  ///< write the JSON report here ("" = don't)
  bool keep_run_dir = false;
};

/// Run the soak. An Error means the harness itself could not run (bad
/// scenario, world build failure, server never came up); a run that
/// executed but violated the SLO returns a report with slo.pass == false.
Expected<LoadReport> run_load(const LoadOptions& options);

}  // namespace sublet::loadgen
