// Chaos scenario grammar for the soak/load harness (docs/ROBUSTNESS.md).
//
// A scenario is a deterministic timeline of chaos events fired while the
// load driver replays query traffic:
//
//   scenario := event (';' event)*
//   event    := kind '@' at_ms [':' arg]
//
//   append@15000                 catalog append + RELOAD at t=15s
//   reload@20000                 bare RELOAD (catalog re-scan)
//   faults@30000:serve.read=EIO:5,serve.accept=EMFILE:2
//                                arm a SUBLET_FAULTS-grammar storm
//   killappend@45000             SIGKILL an appender mid catalog-append,
//                                then restart-and-verify
//   killserver@50000             SIGKILL the forked server, restart it
//   churn@10000:50               50 rapid connect/close cycles
//   slowreader@25000:20000       pipeline 20k requests, never read
//
// Events are sorted by at_ms; everything after the first ':' is the
// event's argument verbatim (so a faults spec may itself contain ':').
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/expected.h"

namespace sublet::loadgen {

enum class ChaosKind : std::uint8_t {
  kAppend,
  kReload,
  kFaults,
  kKillAppend,
  kKillServer,
  kChurn,
  kSlowReader,
};

const char* chaos_name(ChaosKind kind);

struct ChaosEvent {
  ChaosKind kind = ChaosKind::kReload;
  std::uint64_t at_ms = 0;
  std::string arg;  ///< raw text after the first ':' (may be empty)

  /// `kind@at_ms[:arg]` — the canonical single-event spelling.
  std::string to_string() const;
};

/// Parse a scenario string into events sorted by at_ms (stable, so equal
/// timestamps keep their written order). Empty input is a valid empty
/// scenario; an unknown kind or unparseable timestamp is an Error.
Expected<std::vector<ChaosEvent>> parse_scenario(std::string_view spec);

/// The normalized ';'-joined form embedded in the soak report — identical
/// for every spelling that parses to the same event list.
std::string canonical_scenario(const std::vector<ChaosEvent>& events);

}  // namespace sublet::loadgen
