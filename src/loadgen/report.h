// Machine-readable soak report + SLO contract (docs/ROBUSTNESS.md).
//
// The report splits into a *deterministic* section — a pure function of
// (seed, scenario, load shape), byte-identical across runs, which the
// determinism tests compare — and a *measured* section (latencies,
// errors, chaos outcomes) that depends on timing. The `slo` section is
// the contract: the run passes only when every bound holds, and the
// driver's exit code mirrors `slo.pass`.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace sublet::loadgen {

/// The verbs the driver replays — the server's full query surface.
enum class LoadVerb : std::uint8_t {
  kExact,       ///< text EXACT <prefix>
  kLpm,         ///< text LPM <addr>/32
  kMlpm,        ///< text MLPM <addr>...
  kLpmBatch,    ///< binary LPM_BATCH frames, pipelined
  kExactBatch,  ///< binary EXACT_BATCH frame
  kAt,          ///< text LPM ... AT <epoch-ts>
  kHistory,     ///< text HISTORY <prefix>
  kStats,       ///< text STATS
  kMetrics,     ///< text METRICS (multi-line scrape)
};
inline constexpr std::size_t kVerbCount = 9;

const char* verb_name(LoadVerb verb);

/// True for verbs held to the point-lookup p99 bound; the rest (full
/// scans, catalog walks, scrapes) get the heavy bound.
bool is_point_verb(LoadVerb verb);

struct VerbReport {
  std::uint64_t completed = 0;  ///< successful round trips
  std::uint64_t errors = 0;     ///< failed round trips (injected or not)
  double p50_us = 0.0;
  double p99_us = 0.0;
};

struct ChaosReport {
  std::uint64_t events_run = 0;
  std::uint64_t appends = 0;       ///< epochs published mid-run
  std::uint64_t reloads = 0;
  std::uint64_t fault_storms = 0;
  std::uint64_t kills = 0;         ///< killappend + killserver executed
  std::uint64_t churn_conns = 0;
  std::uint64_t slow_readers = 0;
  /// sublet_serve_outbuf_overflow_total scraped after the run.
  std::uint64_t outbuf_overflows = 0;
};

/// One slow request lifted from the server's flight recorder (the
/// INSPECT scrape at shutdown). Embedded in the report only when the SLO
/// fails, so a red run carries its own where-did-the-time-go evidence.
struct SlowRequestEvidence {
  std::uint32_t shard = 0;
  std::uint64_t seq = 0;
  std::string verb;
  std::string status;
  double read_us = 0.0;
  double parse_us = 0.0;
  double engine_us = 0.0;
  double write_us = 0.0;
  double total_us = 0.0;
  std::string detail;  ///< request text (slow log copies it, capped)
};

struct SloReport {
  double p99_bound_us = 0.0;        ///< point-lookup verbs
  double heavy_p99_bound_us = 0.0;  ///< MLPM / HISTORY / STATS / METRICS
  bool p99_ok = false;
  bool zero_wrong_answers = false;
  bool zero_uninjected_errors = false;
  bool pass = false;
};

struct LoadReport {
  // ---- deterministic (same seed + scenario => byte-identical JSON) ----
  std::uint64_t seed = 0;
  std::string scenario;  ///< canonical form
  unsigned workers = 0;
  std::uint64_t duration_ms = 0;
  double qps = 0.0;
  double zipf_alpha = 0.0;
  std::uint64_t world_seed = 0;
  double world_scale = 0.0;
  std::uint64_t records = 0;  ///< latest-epoch record count at start
  /// FNV-1a over every scheduled op's (verb, record, salt) in worker
  /// order — two runs with equal digests replayed the same request
  /// schedule.
  std::uint64_t schedule_digest = 0;
  std::array<std::uint64_t, kVerbCount> planned{};

  // ---- measured ----
  std::array<VerbReport, kVerbCount> verbs{};
  std::uint64_t total_requests = 0;
  std::uint64_t total_lookups = 0;  ///< batch verbs weighted by addresses
  std::uint64_t spot_checks = 0;
  std::uint64_t wrong_answers = 0;
  std::uint64_t injected_errors = 0;
  std::uint64_t uninjected_errors = 0;
  std::uint64_t elapsed_ms = 0;
  double achieved_qps = 0.0;
  double lookups_per_s = 0.0;
  ChaosReport chaos;
  SloReport slo;
  /// Worst requests the server's flight recorder held at shutdown,
  /// worst-first. Always collected; to_json() emits them only on a
  /// failed SLO.
  std::vector<SlowRequestEvidence> slow_requests;

  /// Just the deterministic section (the determinism tests compare this).
  std::string deterministic_json() const;
  /// The full report; embeds deterministic_json() verbatim under
  /// "deterministic".
  std::string to_json() const;
};

}  // namespace sublet::loadgen
