#include "loadgen/loadgen.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "catalog/catalog.h"
#include "leasing/report.h"
#include "loadgen/scenario.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/faultinject.h"
#include "util/jsonr.h"
#include "util/rng.h"
#include "util/strings.h"

namespace sublet::loadgen {

namespace {

namespace fs = std::filesystem;
using steady_clock = std::chrono::steady_clock;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv1a(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

/// One precomputed request. The whole schedule is a pure function of the
/// seed; payloads are derived deterministically from (record, salt) at
/// send time, so hashing these three fields pins the entire run.
struct Op {
  LoadVerb verb = LoadVerb::kLpm;
  std::uint32_t record = 0;  ///< Zipf-sampled record index (initial epoch)
  std::uint32_t salt = 0;    ///< per-op payload/diversity seed
  std::uint64_t issue_us = 0;
};

struct VerbWeight {
  LoadVerb verb;
  int weight;
};
/// The replayed mix: batch-heavy like a production resolver feed, with
/// every verb exercised. Weights sum to 100.
constexpr VerbWeight kMix[] = {
    {LoadVerb::kExact, 10},     {LoadVerb::kLpm, 18},
    {LoadVerb::kMlpm, 5},       {LoadVerb::kLpmBatch, 30},
    {LoadVerb::kExactBatch, 10}, {LoadVerb::kAt, 12},
    {LoadVerb::kHistory, 5},    {LoadVerb::kStats, 5},
    {LoadVerb::kMetrics, 5},
};

LoadVerb pick_verb(Rng& rng) {
  int roll = static_cast<int>(rng.next_below(100));
  for (const VerbWeight& entry : kMix) {
    roll -= entry.weight;
    if (roll < 0) return entry.verb;
  }
  return LoadVerb::kLpm;
}

/// Everything the workers and the chaos thread share.
struct RunState {
  const LoadOptions* options = nullptr;
  std::string catalog_dir;  ///< the run's mutable clone
  std::string host = "127.0.0.1";
  std::atomic<std::uint32_t> port{0};
  steady_clock::time_point t0;

  std::unique_ptr<catalog::Catalog> refcat;  ///< driver's reference view
  std::shared_ptr<const serve::EngineState> base;  ///< initial latest epoch
  std::vector<std::uint32_t> pinned_epochs;  ///< epochs at schedule time
  /// Plain EXACT/LPM spot checks compare against `base`, which is only
  /// valid while no chaos event can move the served latest epoch.
  bool allow_unpinned_checks = false;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_requests{0};
  std::atomic<std::uint64_t> total_lookups{0};
  std::atomic<std::uint64_t> spot_checks{0};
  std::atomic<std::uint64_t> wrong_answers{0};
  std::atomic<std::uint64_t> injected_errors{0};
  std::atomic<std::uint64_t> uninjected_errors{0};
  std::array<std::atomic<std::uint64_t>, kVerbCount> completed{};
  std::array<std::atomic<std::uint64_t>, kVerbCount> errors{};
  std::array<obs::Histogram, kVerbCount> latency;

  /// Chaos-declared [start_ms, end_ms] spans where client-visible errors
  /// are expected (fault storms, server kill + restart). An error whose
  /// [issue, failure] interval intersects any window counts as injected.
  std::mutex window_mu;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> windows;

  std::mutex epoch_mu;
  std::unordered_map<std::uint32_t,
                     std::shared_ptr<const serve::EngineState>>
      epoch_cache;

  std::uint64_t now_ms() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            steady_clock::now() - t0)
            .count());
  }

  void add_window(std::uint64_t from_ms, std::uint64_t to_ms) {
    std::lock_guard<std::mutex> lock(window_mu);
    windows.emplace_back(from_ms, to_ms);
  }

  bool is_injected(std::uint64_t issue_ms, std::uint64_t error_ms) {
    std::lock_guard<std::mutex> lock(window_mu);
    for (const auto& [from, to] : windows) {
      if (issue_ms <= to && error_ms >= from) return true;
    }
    return false;
  }

  void count_error(LoadVerb verb, std::uint64_t issue_ms) {
    errors[static_cast<std::size_t>(verb)].fetch_add(
        1, std::memory_order_relaxed);
    if (is_injected(issue_ms, now_ms())) {
      injected_errors.fetch_add(1, std::memory_order_relaxed);
    } else {
      uninjected_errors.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Reference state for a pinned epoch, memoized (states are immutable).
  std::shared_ptr<const serve::EngineState> epoch_state(std::uint32_t ts) {
    {
      std::lock_guard<std::mutex> lock(epoch_mu);
      auto it = epoch_cache.find(ts);
      if (it != epoch_cache.end()) return it->second;
    }
    auto state = refcat->epoch_at(ts);
    if (!state) return nullptr;
    std::lock_guard<std::mutex> lock(epoch_mu);
    return epoch_cache.emplace(ts, std::move(*state)).first->second;
  }
};

// ---- schedule -----------------------------------------------------------

std::vector<std::vector<Op>> build_schedules(const LoadOptions& options,
                                             std::uint64_t records,
                                             std::uint64_t* digest,
                                             std::array<std::uint64_t,
                                                        kVerbCount>* planned) {
  const unsigned workers = std::max(options.workers, 1u);
  const double per_worker_qps = std::max(options.qps, 1.0) / workers;
  const auto ops_per_worker = static_cast<std::uint64_t>(
      static_cast<double>(options.duration_ms) * per_worker_qps / 1000.0);
  const double period_us = 1e6 / per_worker_qps;
  *digest = kFnvOffset;
  std::vector<std::vector<Op>> schedules(workers);
  for (unsigned w = 0; w < workers; ++w) {
    Rng rng = Rng(options.seed).fork(0x50414b00ull + w);  // "soak" stream w
    schedules[w].reserve(ops_per_worker);
    for (std::uint64_t i = 0; i < ops_per_worker; ++i) {
      Op op;
      op.verb = pick_verb(rng);
      op.record = records == 0
                      ? 0
                      : static_cast<std::uint32_t>(
                            rng.next_zipf(records, options.zipf_alpha));
      op.salt = static_cast<std::uint32_t>(rng.next_u64());
      op.issue_us = static_cast<std::uint64_t>(
          static_cast<double>(i) * period_us);
      const auto verb_byte = static_cast<unsigned char>(op.verb);
      fnv1a(*digest, &verb_byte, 1);
      fnv1a(*digest, &op.record, sizeof(op.record));
      fnv1a(*digest, &op.salt, sizeof(op.salt));
      ++(*planned)[static_cast<std::size_t>(op.verb)];
      schedules[w].push_back(op);
    }
  }
  return schedules;
}

// ---- workers ------------------------------------------------------------

bool response_is_error(const std::string& body) {
  return body.rfind("{\"error\"", 0) == 0;
}

struct Worker {
  RunState* st;
  const std::vector<Op>* ops;
  unsigned id = 0;
  std::optional<serve::QueryClient> client;

  serve::ClientTimeouts timeouts() const {
    return {.connect_ms = 3000, .io_ms = st->options->io_timeout_ms};
  }

  bool ensure_client(std::uint64_t issue_ms) {
    if (client) return true;
    for (int attempt = 0; attempt < 5 && !st->stop.load(); ++attempt) {
      auto c = serve::QueryClient::connect(
          st->host, static_cast<std::uint16_t>(st->port.load()), timeouts());
      if (c) {
        client.emplace(std::move(*c));
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25 << attempt));
    }
    (void)issue_ms;
    return false;
  }

  void run() {
    for (const Op& op : *ops) {
      if (st->stop.load(std::memory_order_relaxed)) break;
      const auto due = st->t0 + std::chrono::microseconds(op.issue_us);
      if (steady_clock::now() < due) std::this_thread::sleep_until(due);
      const std::uint64_t issue_ms = st->now_ms();
      if (!ensure_client(issue_ms)) {
        st->total_requests.fetch_add(1, std::memory_order_relaxed);
        st->count_error(op.verb, issue_ms);
        continue;
      }
      execute(op, issue_ms);
    }
  }

  void execute(const Op& op, std::uint64_t issue_ms);

  void finish(const Op& op, std::uint64_t issue_ms,
              steady_clock::time_point started, bool ok, bool transport) {
    const std::size_t v = static_cast<std::size_t>(op.verb);
    if (ok) {
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
          steady_clock::now() - started);
      st->latency[v].record(static_cast<std::uint64_t>(us.count()));
      st->completed[v].fetch_add(1, std::memory_order_relaxed);
    } else {
      st->count_error(op.verb, issue_ms);
      if (transport) client.reset();  // reconnect on the next op
    }
  }
};

void Worker::execute(const Op& op, std::uint64_t issue_ms) {
  const serve::QueryEngine& base = st->base->engine();
  const serve::QueryEngine::Brief brief = base.brief(op.record);
  const auto prefix = Prefix::make(Ipv4Addr(brief.prefix_addr),
                                   brief.prefix_len);
  const std::uint64_t prefix_size = prefix ? prefix->size() : 1;
  Rng rng(op.salt * 0x9E3779B97F4A7C15ull + 0x7359ull);
  const bool spot = st->options->spot_check_every != 0 &&
                    op.salt % st->options->spot_check_every == 0;
  const std::uint32_t pinned =
      st->pinned_epochs.empty()
          ? 0
          : st->pinned_epochs[op.salt % st->pinned_epochs.size()];
  const auto started = steady_clock::now();
  st->total_requests.fetch_add(1, std::memory_order_relaxed);

  auto check_text_lookup = [&](const std::string& body,
                               const serve::QueryEngine& ref,
                               const Prefix& query, bool exact_verb) {
    st->spot_checks.fetch_add(1, std::memory_order_relaxed);
    std::optional<Prefix> expect;
    if (exact_verb) {
      if (ref.exact(query)) expect = query;
    } else if (auto hit = ref.longest_match(query)) {
      expect = hit->first;
    }
    const bool good =
        expect ? body.find("\"prefix\":\"" + expect->to_string() + "\"") !=
                     std::string::npos
               : body.find("\"found\":false") != std::string::npos;
    if (!good) st->wrong_answers.fetch_add(1, std::memory_order_relaxed);
  };

  switch (op.verb) {
    case LoadVerb::kExact: {
      const std::string line = "EXACT " + prefix->to_string();
      auto resp = client->request(line);
      const bool ok = resp.has_value() && !response_is_error(*resp);
      if (ok && spot && st->allow_unpinned_checks) {
        check_text_lookup(*resp, base, *prefix, /*exact_verb=*/true);
      }
      finish(op, issue_ms, started, ok, !resp.has_value());
      break;
    }
    case LoadVerb::kLpm:
    case LoadVerb::kAt: {
      const auto addr = static_cast<std::uint32_t>(
          brief.prefix_addr + rng.next_below(prefix_size));
      const auto query = Prefix::make(Ipv4Addr(addr), 32);
      std::string line = "LPM " + query->to_string();
      const bool at_verb = op.verb == LoadVerb::kAt;
      if (at_verb) line += " AT " + std::to_string(pinned);
      auto resp = client->request(line);
      const bool ok = resp.has_value() && !response_is_error(*resp);
      if (ok && spot) {
        if (at_verb) {
          if (auto ref = st->epoch_state(pinned)) {
            check_text_lookup(*resp, ref->engine(), *query, false);
          }
        } else if (st->allow_unpinned_checks) {
          check_text_lookup(*resp, base, *query, false);
        }
      }
      finish(op, issue_ms, started, ok, !resp.has_value());
      break;
    }
    case LoadVerb::kMlpm: {
      std::string line = "MLPM";
      for (int j = 0; j < 8; ++j) {
        const auto addr =
            j % 2 == 0
                ? static_cast<std::uint32_t>(brief.prefix_addr +
                                             rng.next_below(prefix_size))
                : static_cast<std::uint32_t>(rng.next_u64());
        line += ' ';
        line += Ipv4Addr(addr).to_string();
      }
      auto resp = client->request(line);
      const bool ok = resp.has_value() && !response_is_error(*resp);
      if (ok) st->total_lookups.fetch_add(8, std::memory_order_relaxed);
      finish(op, issue_ms, started, ok, !resp.has_value());
      break;
    }
    case LoadVerb::kLpmBatch: {
      const std::size_t depth = std::max<std::size_t>(
          st->options->pipeline_depth, 1);
      const std::size_t per = std::max<std::size_t>(st->options->batch_size,
                                                    1);
      std::vector<std::vector<std::uint32_t>> batches(depth);
      for (auto& batch : batches) {
        batch.reserve(per);
        for (std::size_t j = 0; j < per; ++j) {
          batch.push_back(
              rng.chance(0.75)
                  ? static_cast<std::uint32_t>(brief.prefix_addr +
                                               rng.next_below(prefix_size))
                  : static_cast<std::uint32_t>(rng.next_u64()));
        }
      }
      const std::uint32_t epoch = spot ? pinned : 0;
      auto resp = client->pipeline_binary(batches, epoch);
      bool ok = resp.has_value();
      if (ok) {
        for (const serve::BinResponse& frame : *resp) {
          if (frame.status != 0) ok = false;
        }
      }
      if (ok) {
        st->total_requests.fetch_add(depth - 1, std::memory_order_relaxed);
        st->total_lookups.fetch_add(depth * per, std::memory_order_relaxed);
        if (spot && epoch != 0) {
          if (auto ref = st->epoch_state(epoch)) {
            st->spot_checks.fetch_add(1, std::memory_order_relaxed);
            std::vector<std::uint32_t> out(per);
            ref->engine().lookup_batch(batches[0], out);
            const std::vector<serve::BinResult>& got = (*resp)[0].results;
            bool good = got.size() == per;
            for (std::size_t j = 0; good && j < per; ++j) {
              if (out[j] == serve::QueryEngine::kNoRecord) {
                good = !got[j].found;
              } else {
                const auto want = ref->engine().brief(out[j]);
                good = got[j].found &&
                       got[j].prefix_addr == want.prefix_addr &&
                       got[j].prefix_len == want.prefix_len &&
                       got[j].group == want.group &&
                       got[j].leased == want.leased;
              }
            }
            if (!good) {
              st->wrong_answers.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
      finish(op, issue_ms, started, ok, !resp.has_value());
      break;
    }
    case LoadVerb::kExactBatch: {
      const std::size_t per =
          std::min<std::size_t>(std::max<std::size_t>(
                                    st->options->batch_size, 1),
                                64);
      std::vector<serve::QueryClient::ExactQuery> queries(per);
      for (std::size_t j = 0; j < per; ++j) {
        if (j % 2 == 0) {
          queries[j] = {brief.prefix_addr, brief.prefix_len};
        } else {
          const auto other = base.brief(static_cast<std::uint32_t>(
              rng.next_below(std::max<std::uint64_t>(base.size(), 1))));
          queries[j] = {other.prefix_addr, other.prefix_len};
        }
      }
      const std::uint32_t epoch = spot ? pinned : 0;
      auto resp = client->request_exact_batch(queries, epoch);
      const bool ok = resp.has_value() && resp->status == 0;
      if (ok) {
        st->total_lookups.fetch_add(per, std::memory_order_relaxed);
        if (spot && epoch != 0) {
          if (auto ref = st->epoch_state(epoch)) {
            st->spot_checks.fetch_add(1, std::memory_order_relaxed);
            bool good = resp->results.size() == per;
            for (std::size_t j = 0; good && j < per; ++j) {
              const auto q = Prefix::make(Ipv4Addr(queries[j].addr),
                                          queries[j].len);
              const auto idx = q ? ref->engine().exact(*q) : std::nullopt;
              good = idx.has_value() == resp->results[j].found;
            }
            if (!good) {
              st->wrong_answers.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
      finish(op, issue_ms, started, ok, !resp.has_value());
      break;
    }
    case LoadVerb::kHistory: {
      auto resp = client->request("HISTORY " + prefix->to_string());
      const bool ok = resp.has_value() && !response_is_error(*resp) &&
                      resp->find("\"query\"") != std::string::npos;
      finish(op, issue_ms, started, ok, !resp.has_value());
      break;
    }
    case LoadVerb::kStats: {
      auto resp = client->request("STATS");
      const bool ok = resp.has_value() && !response_is_error(*resp);
      finish(op, issue_ms, started, ok, !resp.has_value());
      break;
    }
    case LoadVerb::kMetrics: {
      auto resp = client->request_multiline("METRICS");
      const bool ok = resp.has_value() &&
                      resp->find("# EOF") != std::string::npos;
      finish(op, issue_ms, started, ok, !resp.has_value());
      break;
    }
  }
}

// ---- forked server ------------------------------------------------------

struct ForkedServer {
  std::vector<std::string> argv_base;
  std::string catalog_dir;
  std::string port_file;
  std::string log_path;  ///< child stdout/stderr land here, not on ours
  unsigned shards = 0;
  std::size_t max_outbuf_bytes = 0;
  std::uint64_t slow_threshold_us = 0;  ///< 0 keeps the server default
  pid_t pid = -1;

  Expected<std::uint16_t> launch() {
    std::error_code ec;
    fs::remove(port_file, ec);
    std::vector<std::string> argv = argv_base;
    argv.insert(argv.end(), {"--catalog", catalog_dir, "--port", "0",
                             "--port-file", port_file, "--max-conns",
                             "1024"});
    if (shards != 0) {
      argv.insert(argv.end(), {"--shards", std::to_string(shards)});
    }
    if (max_outbuf_bytes != 0) {
      argv.insert(argv.end(),
                  {"--max-outbuf-bytes", std::to_string(max_outbuf_bytes)});
    }
    if (slow_threshold_us != 0) {
      argv.insert(argv.end(),
                  {"--slow-threshold-us", std::to_string(slow_threshold_us)});
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (std::string& arg : argv) cargv.push_back(arg.data());
    cargv.push_back(nullptr);
    pid = ::fork();
    if (pid < 0) return fail("fork: " + std::string(std::strerror(errno)));
    if (pid == 0) {
      if (!log_path.empty()) {
        const int log_fd = ::open(log_path.c_str(),
                                  O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (log_fd >= 0) {
          ::dup2(log_fd, STDOUT_FILENO);
          ::dup2(log_fd, STDERR_FILENO);
          ::close(log_fd);
        }
      }
      ::execv(cargv[0], cargv.data());
      ::_exit(127);
    }
    const auto deadline = steady_clock::now() + std::chrono::seconds(30);
    while (steady_clock::now() < deadline) {
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        pid = -1;
        return fail("forked server exited during startup");
      }
      std::ifstream in(port_file);
      unsigned port = 0;
      if (in >> port && port != 0 && port <= 65535) {
        return static_cast<std::uint16_t>(port);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    kill9();
    reap();
    return fail("forked server did not write " + port_file + " in time");
  }

  void kill9() {
    if (pid > 0) ::kill(pid, SIGKILL);
  }
  void reap() {
    if (pid > 0) {
      int status = 0;
      ::waitpid(pid, &status, 0);
      pid = -1;
    }
  }
  void shutdown() {
    if (pid > 0) {
      ::kill(pid, SIGTERM);
      reap();
    }
  }
};

// ---- chaos --------------------------------------------------------------

struct Chaos {
  RunState* st;
  std::vector<ChaosEvent> events;
  std::vector<PendingEpoch> pending;
  std::size_t next_pending = 0;
  ForkedServer* forked = nullptr;  ///< null in in-process mode
  ChaosReport report;

  void harness_error(const char* what, const std::string& detail) {
    std::fprintf(stderr, "soak chaos: %s: %s\n", what, detail.c_str());
    st->uninjected_errors.fetch_add(1, std::memory_order_relaxed);
  }

  const PendingEpoch* take_pending() {
    if (next_pending >= pending.size()) return nullptr;
    return &pending[next_pending++];
  }

  bool server_reload() {
    auto resp = serve::QueryClient::request_with_retry(
        st->host, static_cast<std::uint16_t>(st->port.load()), "RELOAD");
    if (!resp || response_is_error(*resp)) {
      harness_error("RELOAD",
                    resp ? *resp : resp.error().to_string());
      return false;
    }
    return true;
  }

  void run() {
    for (const ChaosEvent& event : events) {
      const auto due = st->t0 + std::chrono::milliseconds(event.at_ms);
      while (steady_clock::now() < due &&
             !st->stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      execute(event);
      ++report.events_run;
    }
  }

  void execute(const ChaosEvent& event) {
    switch (event.kind) {
      case ChaosKind::kAppend: {
        const PendingEpoch* next = take_pending();
        if (next == nullptr) {
          harness_error("append", "no pending epochs cached");
          return;
        }
        auto inferences = leasing::load_inferences_csv(next->csv_path);
        if (!inferences) {
          harness_error("append", inferences.error().to_string());
          return;
        }
        auto entry = catalog::catalog_append(
            st->catalog_dir, next->timestamp, std::move(*inferences));
        if (!entry) {
          harness_error("append", entry.error().to_string());
          return;
        }
        if (server_reload()) ++report.appends;
        (void)st->refcat->refresh();
        break;
      }
      case ChaosKind::kReload: {
        if (server_reload()) ++report.reloads;
        break;
      }
      case ChaosKind::kFaults: {
        // Armed sites self-exhaust (specs carry `times`); the window
        // tells the workers these failures are expected.
        const std::string spec =
            event.arg.empty()
                ? "serve.read=EIO:3,serve.write=EPIPE:3,serve.accept="
                  "EMFILE:2"
                : event.arg;
        st->add_window(st->now_ms(), st->now_ms() + 3000);
        fault::load_spec(spec);
        ++report.fault_storms;
        std::this_thread::sleep_for(std::chrono::milliseconds(2000));
        fault::disarm_all();
        break;
      }
      case ChaosKind::kKillAppend:
        kill_append();
        break;
      case ChaosKind::kKillServer:
        kill_server();
        break;
      case ChaosKind::kChurn: {
        std::uint64_t n = 50;
        if (auto parsed = parse_u64(event.arg)) n = *parsed;
        for (std::uint64_t i = 0; i < n; ++i) {
          auto c = serve::QueryClient::connect(
              st->host, static_cast<std::uint16_t>(st->port.load()),
              {.connect_ms = 2000, .io_ms = 2000});
          if (c && i % 2 == 0) (void)c->request("HEALTH");
          // Odd connections just slam shut — half-open churn.
        }
        report.churn_conns += n;
        break;
      }
      case ChaosKind::kSlowReader: {
        std::uint64_t lines = 20000;
        if (auto parsed = parse_u64(event.arg)) lines = *parsed;
        slow_reader(lines);
        ++report.slow_readers;
        break;
      }
    }
  }

  /// Fork a child that SIGKILLs itself in the middle of a catalog append
  /// (between publishing the epoch file and rewriting the index), then
  /// verify the catalog shrugs it off: a fresh open sweeps the orphan,
  /// the server keeps serving, and the same append retried to completion
  /// lands cleanly.
  void kill_append() {
    const PendingEpoch* next = take_pending();
    if (next == nullptr) {
      harness_error("killappend", "no pending epochs cached");
      return;
    }
    auto inferences = leasing::load_inferences_csv(next->csv_path);
    if (!inferences) {
      harness_error("killappend", inferences.error().to_string());
      return;
    }
    const std::size_t epochs_before = st->refcat->epochs().size();
    // Nothing may be armed at fork time: with zero armed sites no other
    // thread can be inside the fault registry's mutex when we fork.
    fault::disarm_all();
    const pid_t pid = ::fork();
    if (pid < 0) {
      harness_error("killappend", std::strerror(errno));
      return;
    }
    if (pid == 0) {
      if (!fault::enabled()) ::_exit(9);  // no harness: report "no kill"
      fault::arm("catalog.append_publish", fault::kCrash);
      std::vector<leasing::LeaseInference> copy = *inferences;
      (void)catalog::catalog_append(st->catalog_dir, next->timestamp,
                                    std::move(copy));
      ::_exit(42);  // the crash point did not fire
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)) {
      harness_error("killappend",
                    "appender was not SIGKILLed (status " +
                        std::to_string(status) + ")");
      return;
    }
    ++report.kills;
    // Restart-and-verify: a fresh open must see the pre-kill epoch list
    // (the torn append published no index entry) and sweep its leftovers.
    auto swept = catalog::Catalog::open(st->catalog_dir);
    if (!swept) {
      harness_error("killappend reopen", swept.error().to_string());
      return;
    }
    if ((*swept)->epochs().size() != epochs_before) {
      harness_error("killappend reopen",
                    "epoch count changed across a torn append");
      return;
    }
    auto health = serve::QueryClient::request_with_retry(
        st->host, static_cast<std::uint16_t>(st->port.load()), "HEALTH");
    if (!health || health->find("\"ok\":true") == std::string::npos) {
      harness_error("killappend health",
                    health ? *health : health.error().to_string());
      return;
    }
    // The interrupted append, retried, completes as if nothing happened.
    auto entry = catalog::catalog_append(st->catalog_dir, next->timestamp,
                                         std::move(*inferences));
    if (!entry) {
      harness_error("killappend retry", entry.error().to_string());
      return;
    }
    if (server_reload()) ++report.appends;
    (void)st->refcat->refresh();
  }

  void kill_server() {
    if (forked == nullptr) {
      harness_error("killserver", "requires --fork-server mode");
      return;
    }
    const std::uint64_t from = st->now_ms();
    st->add_window(from, from + 60000);  // trimmed once restarted
    forked->kill9();
    forked->reap();
    auto port = forked->launch();
    if (!port) {
      harness_error("killserver restart", port.error().to_string());
      return;
    }
    st->port.store(*port);
    ++report.kills;
    {
      // Shrink the provisional window to the actual outage + grace for
      // in-flight requests that will still fail against the dead port.
      std::lock_guard<std::mutex> lock(st->window_mu);
      st->windows.back().second = st->now_ms() + 2000;
    }
  }

  /// A peer that pipelines requests and never reads: the server's
  /// per-connection output cap must cut it, not OOM.
  void slow_reader(std::uint64_t lines) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    int rcvbuf = 4096;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(st->port.load()));
    ::inet_pton(AF_INET, st->host.c_str(), &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return;
    }
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
    std::string chunk;
    for (int i = 0; i < 256; ++i) chunk += "STATS\n";
    std::uint64_t sent_lines = 0;
    const auto deadline = steady_clock::now() + std::chrono::seconds(8);
    while (sent_lines < lines && steady_clock::now() < deadline) {
      const ssize_t n = ::send(fd, chunk.data(), chunk.size(), MSG_NOSIGNAL);
      if (n > 0) {
        sent_lines += 256;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd p{fd, POLLOUT, 0};
        const int r = ::poll(&p, 1, 200);
        if (r > 0 && (p.revents & (POLLERR | POLLHUP))) break;
        continue;
      }
      break;  // EPIPE / ECONNRESET: the server cut us, as designed
    }
    // Linger without reading: closing now would RST the connection before
    // the server's output backlog ever crosses the cap. Wait for the
    // server to cut us (POLLERR/POLLHUP once it closes) instead.
    while (steady_clock::now() < deadline) {
      pollfd p{fd, 0, 0};
      const int r = ::poll(&p, 1, 250);
      if (r > 0 && (p.revents & (POLLERR | POLLHUP))) break;
    }
    ::close(fd);
  }
};

/// Parse one counter value out of a Prometheus scrape.
std::uint64_t scrape_counter(const std::string& text,
                             std::string_view family) {
  for (std::string_view line : split(text, '\n')) {
    if (!line.starts_with(family)) continue;
    const std::string_view rest = trim(line.substr(family.size()));
    if (auto value = parse_u64(rest)) return *value;
  }
  return 0;
}

/// Pull the server's flight-recorder slow log via INSPECT and flatten it
/// across shards, worst-first. Best-effort: any transport or parse
/// failure just yields no evidence — the report's SLO verdict must not
/// depend on the introspection path.
std::vector<SlowRequestEvidence> collect_slow_evidence(
    const std::string& host, std::uint16_t port) {
  std::vector<SlowRequestEvidence> out;
  auto body = serve::QueryClient::request_with_retry(host, port, "INSPECT");
  if (!body) return out;
  auto doc = JsonValue::parse(*body);
  if (!doc) return out;
  for (const JsonValue& shard : (*doc)["shards"].items()) {
    const auto shard_id =
        static_cast<std::uint32_t>(shard["shard"].as_u64());
    for (const JsonValue& slow : shard["slow_requests"].items()) {
      SlowRequestEvidence ev;
      ev.shard = shard_id;
      ev.seq = slow["seq"].as_u64();
      ev.verb = slow["verb"].as_string();
      ev.status = slow["status"].as_string();
      ev.read_us = slow["read_us"].as_double();
      ev.parse_us = slow["parse_us"].as_double();
      ev.engine_us = slow["engine_us"].as_double();
      ev.write_us = slow["write_us"].as_double();
      ev.total_us = slow["total_us"].as_double();
      ev.detail = slow["detail"].as_string();
      out.push_back(std::move(ev));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SlowRequestEvidence& a, const SlowRequestEvidence& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.seq < b.seq;
            });
  constexpr std::size_t kMaxEvidence = 16;
  if (out.size() > kMaxEvidence) out.resize(kMaxEvidence);
  return out;
}

}  // namespace

Expected<LoadReport> run_load(const LoadOptions& options) {
  auto events = parse_scenario(options.scenario);
  if (!events) return events.error();
  const bool forked_mode = !options.server_argv.empty();
  bool needs_pending = false;
  for (const ChaosEvent& event : *events) {
    if (event.kind == ChaosKind::kFaults && forked_mode) {
      return fail("faults chaos events need the in-process server");
    }
    if (event.kind == ChaosKind::kKillServer && !forked_mode) {
      return fail("killserver chaos events need a forked server");
    }
    if (event.kind == ChaosKind::kAppend ||
        event.kind == ChaosKind::kKillAppend) {
      needs_pending = true;
    }
  }

  RunState st;
  st.options = &options;
  std::string run_dir = options.run_dir;
  if (run_dir.empty()) {
    run_dir = "/tmp/sublet-soak-run-" + std::to_string(::getpid()) + "-" +
              std::to_string(options.seed);
  }

  // World: cached build (or a caller-provided catalog), cloned into the
  // run's scratch dir so chaos appends never dirty the cache.
  SoakWorld world;
  if (options.catalog_dir.empty()) {
    auto built = ensure_soak_world(options.world);
    if (!built) return built.error();
    world = std::move(*built);
  } else {
    world.catalog_dir = options.catalog_dir;
  }
  if (needs_pending && world.pending.empty()) {
    return fail("append/killappend events need cached pending epochs "
                "(world mode, world.pending > 0)");
  }
  auto cloned = clone_catalog(world, run_dir + "/catalog");
  if (!cloned) return cloned.error();
  st.catalog_dir = *cloned;

  // The driver's own reference view, for differential spot checks. Opened
  // before any chaos runs; all later open()s and appends are serialized on
  // the chaos thread (Catalog::open's crash-leftover sweep must never race
  // an in-flight append).
  auto refcat = catalog::Catalog::open(st.catalog_dir);
  if (!refcat) return refcat.error();
  st.refcat = std::move(*refcat);
  auto base = st.refcat->epoch_at(0);
  if (!base) return base.error();
  st.base = std::move(*base);
  st.pinned_epochs = st.refcat->epochs();
  st.allow_unpinned_checks = true;
  for (const ChaosEvent& event : *events) {
    if (event.kind == ChaosKind::kAppend ||
        event.kind == ChaosKind::kKillAppend ||
        event.kind == ChaosKind::kKillServer) {
      st.allow_unpinned_checks = false;
    }
  }

  // Server: in-process by default, forked when server_argv is given.
  // Align the flight recorder's "slow" with the SLO contract so a bound
  // violation always ships concrete slow-request evidence (the server
  // default of 1ms could sit above a tight --p99-us bound).
  const auto slow_threshold_us = static_cast<std::uint64_t>(std::max(
      1.0, std::min(options.p99_bound_us, options.heavy_p99_bound_us)));
  std::unique_ptr<serve::QueryServer> local_server;
  ForkedServer forked;
  if (forked_mode) {
    forked.argv_base = options.server_argv;
    forked.catalog_dir = st.catalog_dir;
    forked.port_file = run_dir + "/port";
    forked.log_path = run_dir + "/server.log";
    forked.shards = options.shards;
    forked.max_outbuf_bytes = options.max_outbuf_bytes;
    forked.slow_threshold_us = slow_threshold_us;
    auto port = forked.launch();
    if (!port) return port.error();
    st.port.store(*port);
  } else {
    auto served = catalog::Catalog::open(st.catalog_dir);
    if (!served) return served.error();
    auto initial = (*served)->epoch_at(0);
    if (!initial) return initial.error();
    serve::QueryServer::Options server_options;
    server_options.shards = options.shards;
    server_options.max_conns = 1024;
    server_options.max_outbuf_bytes = options.max_outbuf_bytes;
    server_options.slow_threshold_us = slow_threshold_us;
    local_server = std::make_unique<serve::QueryServer>(
        std::shared_ptr<serve::EpochSource>(std::move(*served)),
        std::move(*initial), server_options);
    auto port = local_server->start();
    if (!port) return port.error();
    st.port.store(*port);
  }

  LoadReport report;
  report.seed = options.seed;
  report.scenario = canonical_scenario(*events);
  report.workers = std::max(options.workers, 1u);
  report.duration_ms = options.duration_ms;
  report.qps = options.qps;
  report.zipf_alpha = options.zipf_alpha;
  report.world_seed = options.world.seed;
  report.world_scale = options.world.scale;
  report.records = st.base->snapshot().record_count();
  auto schedules = build_schedules(options, report.records,
                                   &report.schedule_digest, &report.planned);

  st.t0 = steady_clock::now();
  Chaos chaos;
  chaos.st = &st;
  chaos.events = std::move(*events);
  chaos.pending = world.pending;
  chaos.forked = forked_mode ? &forked : nullptr;
  std::thread chaos_thread([&] { chaos.run(); });

  std::vector<std::thread> threads;
  std::vector<Worker> workers(report.workers);
  for (unsigned w = 0; w < report.workers; ++w) {
    workers[w].st = &st;
    workers[w].ops = &schedules[w];
    workers[w].id = w;
    threads.emplace_back([&, w] { workers[w].run(); });
  }
  for (std::thread& t : threads) t.join();
  chaos_thread.join();
  report.elapsed_ms = st.now_ms();

  // One last scrape for the server-side chaos evidence, then shut down.
  {
    auto metrics = serve::QueryClient::request_multiline_with_retry(
        st.host, static_cast<std::uint16_t>(st.port.load()), "METRICS");
    if (metrics) {
      chaos.report.outbuf_overflows =
          scrape_counter(*metrics, "sublet_serve_outbuf_overflow_total");
    }
    report.slow_requests = collect_slow_evidence(
        st.host, static_cast<std::uint16_t>(st.port.load()));
  }
  if (local_server) {
    local_server->stop();
  } else {
    forked.shutdown();
  }
  fault::disarm_all();

  // ---- fill + evaluate the SLO contract ----
  report.total_requests = st.total_requests.load();
  report.total_lookups = st.total_lookups.load();
  report.spot_checks = st.spot_checks.load();
  report.wrong_answers = st.wrong_answers.load();
  report.injected_errors = st.injected_errors.load();
  report.uninjected_errors = st.uninjected_errors.load();
  if (report.elapsed_ms > 0) {
    report.achieved_qps = static_cast<double>(report.total_requests) *
                          1000.0 / static_cast<double>(report.elapsed_ms);
    report.lookups_per_s = static_cast<double>(report.total_lookups) *
                           1000.0 / static_cast<double>(report.elapsed_ms);
  }
  report.chaos = chaos.report;
  report.slo.p99_bound_us = options.p99_bound_us;
  report.slo.heavy_p99_bound_us = options.heavy_p99_bound_us;
  bool p99_ok = true;
  for (std::size_t v = 0; v < kVerbCount; ++v) {
    VerbReport& verb = report.verbs[v];
    verb.completed = st.completed[v].load();
    verb.errors = st.errors[v].load();
    verb.p50_us = st.latency[v].quantile(0.5);
    verb.p99_us = st.latency[v].quantile(0.99);
    if (verb.completed == 0) continue;
    const double bound = is_point_verb(static_cast<LoadVerb>(v))
                             ? options.p99_bound_us
                             : options.heavy_p99_bound_us;
    if (verb.p99_us > bound) p99_ok = false;
  }
  report.slo.p99_ok = p99_ok;
  report.slo.zero_wrong_answers = report.wrong_answers == 0;
  report.slo.zero_uninjected_errors = report.uninjected_errors == 0;
  report.slo.pass = report.slo.p99_ok && report.slo.zero_wrong_answers &&
                    report.slo.zero_uninjected_errors;

  if (!options.report_path.empty()) {
    std::ofstream out(options.report_path);
    out << report.to_json() << "\n";
  }
  if (!options.keep_run_dir) {
    std::error_code ec;
    fs::remove_all(run_dir, ec);
  }
  return report;
}

}  // namespace sublet::loadgen
