// Seed-keyed cached soak worlds (docs/ROBUSTNESS.md "Soak & chaos").
//
// A soak run needs an internet-scale catalog (scale ~6 is about a million
// routed prefixes) plus deterministic append payloads for its mid-run
// chaos events. Generating that takes minutes at full scale, so the world
// is built once per (seed, scale, epochs, pending) into a cache directory
// under /tmp — the same `.complete`-marker idiom the perf benches use —
// and every run clones the immutable catalog into its own scratch
// directory before mutating it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/expected.h"

namespace sublet::loadgen {

struct SoakWorldSpec {
  std::uint64_t seed = 42;
  double scale = 0.05;  ///< 1.0 ≈ 167k routed prefixes; ~6 ≈ 1M
  std::size_t epochs = 4;  ///< epochs pre-built into the catalog
  /// Extra epochs generated but *not* appended: their inference sets are
  /// cached as CSVs so append/killappend chaos events replay them
  /// deterministically mid-run.
  std::size_t pending = 3;
  std::uint32_t start = 1704067200;  ///< epoch 1's timestamp (2024-01-01)
  std::uint32_t step = 2592000;      ///< 30 days between epochs
};

/// One not-yet-appended epoch: the timestamp it will be published as and
/// the cached CSV holding its full inference set.
struct PendingEpoch {
  std::uint32_t timestamp = 0;
  std::string csv_path;
};

struct SoakWorld {
  std::string dir;          ///< cache directory (immutable once complete)
  std::string catalog_dir;  ///< `<dir>/catalog` — clone before appending!
  std::vector<PendingEpoch> pending;  ///< in append order
};

/// Build (or reuse) the cached world for `spec`. Deterministic: the same
/// spec always yields byte-identical catalog + pending payloads, so a
/// failed soak reproduces from its printed seed alone.
Expected<SoakWorld> ensure_soak_world(const SoakWorldSpec& spec,
                                      const std::string& cache_root = "/tmp");

/// Copy the cached catalog into `dest_dir` (created fresh; an existing
/// directory is removed first) so a run can append to it without dirtying
/// the cache. Returns `dest_dir`.
Expected<std::string> clone_catalog(const SoakWorld& world,
                                    const std::string& dest_dir);

}  // namespace sublet::loadgen
