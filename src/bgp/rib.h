// Multi-collector BGP RIB view — paper step 4's query surface.
//
// Routes from any number of MRT snapshots (RouteViews + RIS collectors over
// the 15-day window) are unioned into one prefix-indexed view that answers:
// "what origin ASes were observed for this exact prefix?" and "what is the
// least-specific covering prefix and its origins?" (the root-node fallback
// for holders who aggregate consecutive portable blocks).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "mrt/rib_file.h"
#include "netbase/asn.h"
#include "netbase/prefix_trie.h"

namespace sublet::bgp {

/// Observations accumulated for one prefix.
struct RouteInfo {
  /// Sorted and unique once the owning Rib is frozen. During load the Rib
  /// appends raw observations here and defers the sort/unique to freeze()
  /// — one pass at the end instead of a lower_bound+insert per route.
  std::vector<Asn> origins;
  std::uint32_t peer_observations = 0;  ///< RIB entries seen (visibility)

  bool originated_by(Asn asn) const;
};

class Rib {
 public:
  Rib() = default;
  Rib(Rib&& other) noexcept;
  Rib& operator=(Rib&& other) noexcept;

  /// Merge one decoded MRT snapshot. Origin = last AS of each entry's
  /// AS_PATH (every member for a trailing AS_SET). Call once per collector
  /// file; duplicates union cleanly.
  void add_snapshot(const mrt::RibSnapshot& snapshot);

  /// Load an MRT RIB file from disk and merge it. Returns an Error for
  /// unreadable/corrupt files.
  std::optional<Error> add_file(const std::string& path);

  /// Merge `bgpdump -m` text (TABLE_DUMP2 "B" lines; announce lines also
  /// accepted, withdrawals and skippable lines ignored). Returns the
  /// number of entries merged; damaged (non-skippable) lines error out.
  Expected<std::size_t> add_bgpdump_text(std::istream& in,
                                         std::string source = {});

  /// Record a single observation (used by tests and the simulator's
  /// in-memory path).
  void add_route(const Prefix& prefix, Asn origin);

  /// Sort/unique the per-prefix origin sets accumulated by the add_* calls.
  /// Queries finalize lazily (and thread-safely) on first use, so calling
  /// this is optional — but doing it once after the bulk load keeps the
  /// cost out of the first query and off the classification threads.
  void freeze();

  /// Origin ASes observed for exactly `prefix`; nullptr if never seen.
  const RouteInfo* exact(const Prefix& prefix) const;

  /// Least-specific covering prefix with its origins (includes exact).
  std::optional<std::pair<Prefix, const RouteInfo*>> least_specific_covering(
      const Prefix& prefix) const;

  /// Most-specific covering prefix (longest match, includes exact).
  std::optional<std::pair<Prefix, const RouteInfo*>> most_specific_covering(
      const Prefix& prefix) const;

  /// Number of distinct prefixes in the table.
  std::size_t prefix_count() const { return trie_.size(); }

  /// Total routed address space: size in addresses of the union of all
  /// prefixes (covering prefixes counted once).
  std::uint64_t routed_address_space() const;

  /// Visit every (prefix, info) in address order.
  void visit(
      const std::function<void(const Prefix&, const RouteInfo&)>& fn) const;

  /// All distinct origin ASes in the table.
  std::set<Asn> all_origins() const;

 private:
  /// Freeze on first query if an add_* call left origin sets unsorted.
  /// Double-checked so the steady state (shared read-only Rib across
  /// classification threads) is a single relaxed-ish atomic load.
  void ensure_finalized() const;

  PrefixTrie<RouteInfo> trie_;
  mutable std::atomic<bool> finalized_{true};
  mutable std::mutex finalize_mu_;
};

}  // namespace sublet::bgp
