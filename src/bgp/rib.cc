#include "bgp/rib.h"

#include <algorithm>
#include <istream>

#include "mrt/bgpdump_text.h"
#include "util/strings.h"

namespace sublet::bgp {

bool RouteInfo::originated_by(Asn asn) const {
  return std::binary_search(origins.begin(), origins.end(), asn);
}

Rib::Rib(Rib&& other) noexcept
    : trie_(std::move(other.trie_)),
      finalized_(other.finalized_.load(std::memory_order_relaxed)) {}

Rib& Rib::operator=(Rib&& other) noexcept {
  trie_ = std::move(other.trie_);
  finalized_.store(other.finalized_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  return *this;
}

void Rib::add_route(const Prefix& prefix, Asn origin) {
  RouteInfo* info = trie_.find(prefix);
  if (!info) info = &trie_.insert(prefix, RouteInfo{});
  info->origins.push_back(origin);
  ++info->peer_observations;
  finalized_.store(false, std::memory_order_release);
}

void Rib::add_snapshot(const mrt::RibSnapshot& snapshot) {
  for (const mrt::RibPrefixRecord& rec : snapshot.records) {
    RouteInfo* info = trie_.find(rec.prefix);
    if (!info) info = &trie_.insert(rec.prefix, RouteInfo{});
    for (const mrt::RibEntry& entry : rec.entries) {
      for (Asn origin : entry.attributes.as_path.origin_asns()) {
        info->origins.push_back(origin);
      }
      ++info->peer_observations;
    }
  }
  finalized_.store(false, std::memory_order_release);
}

void Rib::freeze() {
  trie_.for_each_value([](RouteInfo& info) {
    std::sort(info.origins.begin(), info.origins.end());
    info.origins.erase(std::unique(info.origins.begin(), info.origins.end()),
                       info.origins.end());
  });
  // Loading is done, so enable the trie's level-compressed covering fast
  // path before classification threads start querying.
  trie_.build_jump_table();
  finalized_.store(true, std::memory_order_release);
}

void Rib::ensure_finalized() const {
  if (finalized_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(finalize_mu_);
  if (finalized_.load(std::memory_order_acquire)) return;
  const_cast<Rib*>(this)->freeze();
}

std::optional<Error> Rib::add_file(const std::string& path) {
  auto snapshot = mrt::read_rib_file(path);
  if (!snapshot) return snapshot.error();
  add_snapshot(*snapshot);
  return std::nullopt;
}

Expected<std::size_t> Rib::add_bgpdump_text(std::istream& in,
                                            std::string source) {
  std::size_t merged = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (trim(line).empty()) continue;
    auto entry = mrt::parse_bgpdump_line(line);
    if (!entry) {
      if (entry.error().message.rfind("skip:", 0) == 0) continue;
      Error error = entry.error();
      error.source = std::move(source);
      error.line = line_no;
      return error;
    }
    if (entry->kind == mrt::BgpdumpEntry::Kind::kWithdraw) continue;
    for (Asn origin : entry->origins()) {
      add_route(entry->prefix, origin);
    }
    ++merged;
  }
  return merged;
}

const RouteInfo* Rib::exact(const Prefix& prefix) const {
  ensure_finalized();
  return trie_.find(prefix);
}

std::optional<std::pair<Prefix, const RouteInfo*>>
Rib::least_specific_covering(const Prefix& prefix) const {
  ensure_finalized();
  return trie_.least_specific_covering(prefix);
}

std::optional<std::pair<Prefix, const RouteInfo*>>
Rib::most_specific_covering(const Prefix& prefix) const {
  ensure_finalized();
  return trie_.most_specific_covering(prefix);
}

std::uint64_t Rib::routed_address_space() const {
  // Collect [first, last] intervals in address order and merge.
  std::uint64_t total = 0;
  std::uint64_t cur_start = 0, cur_end = 0;  // [start, end) in 64-bit space
  bool open = false;
  trie_.visit([&](const Prefix& p, const RouteInfo&) {
    std::uint64_t start = p.first().value();
    std::uint64_t end = static_cast<std::uint64_t>(p.last().value()) + 1;
    if (!open) {
      cur_start = start;
      cur_end = end;
      open = true;
    } else if (start <= cur_end) {
      cur_end = std::max(cur_end, end);
    } else {
      total += cur_end - cur_start;
      cur_start = start;
      cur_end = end;
    }
  });
  if (open) total += cur_end - cur_start;
  return total;
}

void Rib::visit(
    const std::function<void(const Prefix&, const RouteInfo&)>& fn) const {
  ensure_finalized();
  trie_.visit(fn);
}

std::set<Asn> Rib::all_origins() const {
  ensure_finalized();
  std::set<Asn> out;
  trie_.visit([&](const Prefix&, const RouteInfo& info) {
    out.insert(info.origins.begin(), info.origins.end());
  });
  return out;
}

}  // namespace sublet::bgp
