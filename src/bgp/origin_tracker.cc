#include "bgp/origin_tracker.h"

#include <algorithm>
#include <fstream>

#include "mrt/mrt.h"
#include "util/log.h"

namespace sublet::bgp {

void OriginTracker::announce(std::uint32_t timestamp, const Prefix& prefix,
                             std::vector<Asn> origins) {
  std::sort(origins.begin(), origins.end());
  origins.erase(std::unique(origins.begin(), origins.end()), origins.end());
  auto& events = histories_[prefix];
  if (!events.empty() && events.back().origins == origins) return;
  events.push_back({timestamp, std::move(origins)});
}

void OriginTracker::withdraw(std::uint32_t timestamp, const Prefix& prefix) {
  auto& events = histories_[prefix];
  if (!events.empty() && events.back().origins.empty()) return;
  events.push_back({timestamp, {}});
}

void OriginTracker::apply(std::uint32_t timestamp,
                          const mrt::Bgp4mpMessage& message) {
  if (!message.is_update()) return;
  for (const Prefix& prefix : message.withdrawn) {
    withdraw(timestamp, prefix);
  }
  if (!message.announced.empty()) {
    auto origins = message.attributes.as_path.origin_asns();
    for (const Prefix& prefix : message.announced) {
      announce(timestamp, prefix, origins);
    }
  }
}

const std::vector<OriginEvent>* OriginTracker::history(
    const Prefix& prefix) const {
  auto it = histories_.find(prefix);
  return it == histories_.end() ? nullptr : &it->second;
}

std::vector<Asn> OriginTracker::origins_at(const Prefix& prefix,
                                           std::uint32_t timestamp) const {
  const std::vector<OriginEvent>* events = history(prefix);
  if (!events) return {};
  std::vector<Asn> state;
  for (const OriginEvent& event : *events) {
    if (event.timestamp > timestamp) break;
    state = event.origins;
  }
  return state;
}

std::vector<Asn> OriginTracker::ever_origins(const Prefix& prefix) const {
  const std::vector<OriginEvent>* events = history(prefix);
  if (!events) return {};
  std::vector<Asn> out;
  for (const OriginEvent& event : *events) {
    out.insert(out.end(), event.origins.begin(), event.origins.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Expected<std::size_t> replay_updates_file(const std::string& path,
                                          OriginTracker& tracker) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open " + path);
  mrt::MrtReader reader(in, path);
  std::size_t applied = 0;
  while (auto rec = reader.next()) {
    if (rec->type != static_cast<std::uint16_t>(mrt::MrtType::kBgp4mp)) {
      continue;
    }
    auto subtype = static_cast<mrt::Bgp4mpSubtype>(rec->subtype);
    if (subtype != mrt::Bgp4mpSubtype::kMessage &&
        subtype != mrt::Bgp4mpSubtype::kMessageAs4) {
      continue;
    }
    auto message = mrt::decode_bgp4mp(rec->body, subtype);
    if (!message) return message.error();
    tracker.apply(rec->timestamp, *message);
    if (message->is_update()) ++applied;
  }
  if (reader.error()) return *reader.error();
  return applied;
}

}  // namespace sublet::bgp
