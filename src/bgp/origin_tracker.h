// Origin tracking over a BGP update stream.
//
// Replays MRT BGP4MP update files (RouteViews/RIS "updates") and keeps,
// per prefix, the time series of origin-AS state changes. This powers the
// Figure 3 history reconstruction from real update streams and the
// 15-day-window behavior of the paper's step 4 ("capture leased prefixes
// that were not immediately originated").
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mrt/bgp4mp.h"
#include "netbase/asn.h"
#include "netbase/prefix_trie.h"
#include "util/expected.h"

namespace sublet::bgp {

/// One state change: the prefix's origin set as of `timestamp`.
struct OriginEvent {
  std::uint32_t timestamp = 0;
  std::vector<Asn> origins;  ///< empty = withdrawn

  friend auto operator<=>(const OriginEvent&, const OriginEvent&) = default;
};

class OriginTracker {
 public:
  /// Apply one decoded update message at `timestamp`. Announcements set
  /// the prefix's origin state to the message's path origin(s);
  /// withdrawals clear it. Non-UPDATE messages are ignored.
  void apply(std::uint32_t timestamp, const mrt::Bgp4mpMessage& message);

  /// Direct event injection (testing / simulation shortcuts).
  void announce(std::uint32_t timestamp, const Prefix& prefix,
                std::vector<Asn> origins);
  void withdraw(std::uint32_t timestamp, const Prefix& prefix);

  /// Full event history of a prefix, in application order.
  const std::vector<OriginEvent>* history(const Prefix& prefix) const;

  /// Origins in effect at `timestamp` (state of the latest event at or
  /// before it); empty if never announced or withdrawn by then.
  std::vector<Asn> origins_at(const Prefix& prefix,
                              std::uint32_t timestamp) const;

  /// Every origin observed for the prefix at any time — the union the
  /// observation window feeds into the classifier.
  std::vector<Asn> ever_origins(const Prefix& prefix) const;

  std::size_t prefix_count() const { return histories_.size(); }

 private:
  std::unordered_map<Prefix, std::vector<OriginEvent>, PrefixHash> histories_;
};

/// Replay a whole MRT updates file into the tracker. Unknown record types
/// are skipped; structural damage returns an Error. Returns the number of
/// update messages applied.
Expected<std::size_t> replay_updates_file(const std::string& path,
                                          OriginTracker& tracker);

}  // namespace sublet::bgp
