// RIR transfer logs — the IPv4 transfer market the paper builds on (§1,
// §3: Livadariu et al., Giotsas et al.).
//
// The RIRs publish completed transfers; this module models the log as
// pipe-separated records:
//   # date|rir|prefix|from_org|to_org|type
//   1680000000|RIPE|213.210.0.0/18|ORG-OLD|ORG-GCI1-RIPE|market
// `type` is "market" (policy transfer / sale) or "merger" (M&A).
// Queries support the transfer-vs-lease overlap analysis: is leased space
// disproportionately space that changed hands on the market?
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "netbase/prefix_trie.h"
#include "util/expected.h"
#include "whoisdb/rir.h"

namespace sublet::transfers {

enum class TransferType { kMarket, kMerger };

constexpr std::string_view transfer_type_name(TransferType type) {
  return type == TransferType::kMarket ? "market" : "merger";
}

struct Transfer {
  std::uint32_t date = 0;
  whois::Rir rir = whois::Rir::kRipe;
  Prefix prefix;
  std::string from_org;
  std::string to_org;
  TransferType type = TransferType::kMarket;
};

class TransferLog {
 public:
  void add(Transfer transfer);

  const std::vector<Transfer>& transfers() const { return transfers_; }

  /// True if `prefix` lies inside any transferred block.
  bool covers(const Prefix& prefix) const;

  /// Transfers whose block covers `prefix`, in log order.
  std::vector<const Transfer*> covering(const Prefix& prefix) const;

  /// Transfers completed inside [from, to].
  std::vector<const Transfer*> in_window(std::uint32_t from,
                                         std::uint32_t to) const;

  std::size_t size() const { return transfers_.size(); }

  static TransferLog parse(std::istream& in, std::string source = {},
                           std::vector<Error>* diagnostics = nullptr);
  static TransferLog load(const std::string& path,
                          std::vector<Error>* diagnostics = nullptr);
  void write(std::ostream& out) const;

 private:
  std::vector<Transfer> transfers_;
  PrefixTrie<std::vector<std::size_t>> by_prefix_;  // indexes into transfers_
};

}  // namespace sublet::transfers
