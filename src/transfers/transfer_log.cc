#include "transfers/transfer_log.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/strings.h"

namespace sublet::transfers {

void TransferLog::add(Transfer transfer) {
  std::vector<std::size_t>* bucket = by_prefix_.find(transfer.prefix);
  if (!bucket) bucket = &by_prefix_.insert(transfer.prefix, {});
  bucket->push_back(transfers_.size());
  transfers_.push_back(std::move(transfer));
}

bool TransferLog::covers(const Prefix& prefix) const {
  return by_prefix_.least_specific_covering(prefix).has_value();
}

std::vector<const Transfer*> TransferLog::covering(
    const Prefix& prefix) const {
  std::vector<const Transfer*> out;
  // Out-param overload + thread-local scratch: covering() runs once per
  // candidate prefix in the timeline sweep, so the walk itself should not
  // allocate (the returned vector still does, sized to real hits).
  static thread_local std::vector<
      std::pair<Prefix, const std::vector<std::size_t>*>>
      scratch;
  by_prefix_.all_covering(prefix, scratch);
  for (const auto& [block, bucket] : scratch) {
    for (std::size_t index : *bucket) out.push_back(&transfers_[index]);
  }
  return out;
}

std::vector<const Transfer*> TransferLog::in_window(std::uint32_t from,
                                                    std::uint32_t to) const {
  std::vector<const Transfer*> out;
  for (const Transfer& transfer : transfers_) {
    if (transfer.date >= from && transfer.date <= to) out.push_back(&transfer);
  }
  return out;
}

TransferLog TransferLog::parse(std::istream& in, std::string source,
                               std::vector<Error>* diagnostics) {
  TransferLog log;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string_view view = trim(line);
    if (view.empty() || view.front() == '#') continue;
    auto fields = split(view, '|');
    if (fields.size() < 6) {
      if (diagnostics) {
        diagnostics->push_back(
            fail("expected date|rir|prefix|from|to|type", source, line_no));
      }
      continue;
    }
    auto date = parse_u32(trim(fields[0]));
    auto rir = whois::rir_from_name(trim(fields[1]));
    auto prefix = Prefix::parse(trim(fields[2]));
    std::string_view type_text = trim(fields[5]);
    bool market = iequals(type_text, "market");
    bool merger = iequals(type_text, "merger");
    if (!date || !rir || !prefix || (!market && !merger)) {
      if (diagnostics) {
        diagnostics->push_back(
            fail("bad transfer '" + std::string(view) + "'", source, line_no));
      }
      continue;
    }
    log.add({*date, *rir, *prefix, std::string(trim(fields[3])),
             std::string(trim(fields[4])),
             market ? TransferType::kMarket : TransferType::kMerger});
  }
  return log;
}

TransferLog TransferLog::load(const std::string& path,
                              std::vector<Error>* diagnostics) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open transfer log: " + path);
  return parse(in, path, diagnostics);
}

void TransferLog::write(std::ostream& out) const {
  out << "# date|rir|prefix|from_org|to_org|type\n";
  for (const Transfer& t : transfers_) {
    out << t.date << '|' << rir_name(t.rir) << '|' << t.prefix.to_string()
        << '|' << t.from_org << '|' << t.to_org << '|'
        << transfer_type_name(t.type) << '\n';
  }
}

}  // namespace sublet::transfers
