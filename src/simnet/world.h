// In-memory synthetic world: the generator's private ground truth.
//
// Everything here is the *truth* the emitters serialize into the dataset
// dialects. The classifier never sees these structures — it only reads the
// emitted files (DESIGN.md §5.5, ground-truth quarantine).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "asgraph/as_rel.h"
#include "netbase/asn.h"
#include "netbase/ipv4.h"
#include "simnet/config.h"
#include "whoisdb/rir.h"

namespace sublet::sim {

/// Ground-truth category of a leaf (what the world actually did, which the
/// pipeline tries to recover).
enum class TruthCategory {
  kUnused,
  kAggregatedCustomer,
  kIspCustomer,
  kLeased,
  kDelegatedCustomer,
};

constexpr std::string_view truth_name(TruthCategory category) {
  switch (category) {
    case TruthCategory::kUnused: return "unused";
    case TruthCategory::kAggregatedCustomer: return "aggregated-customer";
    case TruthCategory::kIspCustomer: return "isp-customer";
    case TruthCategory::kLeased: return "leased";
    case TruthCategory::kDelegatedCustomer: return "delegated-customer";
  }
  return "?";
}

struct SimOrg {
  std::string id;          ///< WHOIS handle, e.g. "ORG-RH17-RIPE"
  std::string name;
  std::string maintainer;  ///< primary maintainer handle
  whois::Rir rir = whois::Rir::kRipe;
  std::string country;
  bool is_broker = false;
  bool on_broker_list = false;
  std::string listed_name;  ///< spelling on the RIR's broker list
};

enum class AsTier { kTier1, kTransit, kHosting, kStub, kHolder };

struct SimAs {
  Asn asn;
  std::size_t org_index = 0;   ///< into World::orgs (WHOIS registration)
  whois::Rir rir = whois::Rir::kRipe;
  AsTier tier = AsTier::kStub;
  std::optional<Asn> provider;  ///< transit provider (tier1s have none)
  bool drop_listed = false;
  bool hijacker = false;
  /// as2org organisation when it differs from the WHOIS one — models
  /// acquisitions/affiliates that CAIDA's as2org links but the registries
  /// keep separate (paper §6.3's PSINet/Cogent case). Only sibling
  /// knowledge can relate such an AS to its real owner.
  std::optional<std::size_t> as2org_override;
};

struct SimRoot {
  Prefix prefix;
  whois::Rir rir = whois::Rir::kRipe;
  std::size_t holder_org = 0;   ///< into World::orgs
  Asn holder_asn;
  bool originated = false;      ///< lit vs dark root
  bool aggregated_announcement = false;  ///< announced via covering prefix
  bool legacy = false;          ///< legacy space (excluded by pipeline)
  /// Block changed hands on the transfer market before the measurement
  /// (market-active holders buy space and lease it out — §1/§3 context).
  bool transferred = false;
  std::uint32_t transfer_date = 0;
  std::string transfer_from_org;
};

struct SimLeaf {
  Prefix prefix;
  whois::Rir rir = whois::Rir::kRipe;
  std::size_t root_index = 0;
  TruthCategory truth = TruthCategory::kUnused;
  bool lease_active = true;       ///< false: contracted but not originated
  std::string maintainer;         ///< leaf's mnt-by handle
  std::string org_id;             ///< leaf's org (often empty)
  std::optional<Asn> origin;      ///< BGP originator, if any
  std::optional<std::size_t> facilitator_org;  ///< broker, if brokered
  bool eval_negative = false;     ///< part of the ISP negative label set
  bool legacy = false;            ///< registered as legacy space
  bool late_origination = false;  ///< first announced late in the window
};

/// Non-leaf routed prefix (ordinary ISP space forming the non-leased pool).
struct BackgroundPrefix {
  Prefix prefix;
  Asn origin;
};

struct World {
  WorldConfig config;
  std::vector<SimOrg> orgs;
  std::vector<SimAs> ases;
  asgraph::AsRelationships true_rels;
  std::vector<SimRoot> roots;
  std::vector<SimLeaf> leaves;
  std::vector<BackgroundPrefix> background;
  /// Aggregate announcements covering several roots (exercises the paper's
  /// step-4 least-specific fallback): (covering prefix, origin).
  std::vector<BackgroundPrefix> aggregates;
  /// Evaluation ISP orgs per RIR (negative labels), incl. subsidiaries.
  std::vector<std::pair<whois::Rir, std::string>> eval_isp_orgs;

  const SimAs* find_as(Asn asn) const;
  const SimOrg& org_of(const SimAs& as) const { return orgs[as.org_index]; }
};

}  // namespace sublet::sim
