#include "simnet/builder.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <string>
#include <unordered_map>

#include "util/rng.h"
#include "util/strings.h"

#include <stdexcept>

namespace sublet::sim {

void WorldConfig::validate() const {
  auto check_p = [](double p, const char* name) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument(std::string("WorldConfig::") + name +
                                  " must be in [0,1]");
    }
  };
  if (scale <= 0.0) {
    throw std::invalid_argument("WorldConfig::scale must be positive");
  }
  if (tier1_count < 2) {
    throw std::invalid_argument("WorldConfig::tier1_count must be >= 2");
  }
  if (collectors < 1 || peers_per_collector < 1) {
    throw std::invalid_argument("WorldConfig needs >= 1 collector and peer");
  }
  check_p(collector_visibility, "collector_visibility");
  check_p(p_lease_late, "p_lease_late");
  check_p(p_lease_inactive, "p_lease_inactive");
  check_p(p_lease_legacy, "p_lease_legacy");
  check_p(p_lease_brokered, "p_lease_brokered");
  check_p(p_customer_own_maintainer, "p_customer_own_maintainer");
  check_p(p_subsidiary_origin, "p_subsidiary_origin");
  check_p(p_drop_origin_leased, "p_drop_origin_leased");
  check_p(p_drop_origin_background, "p_drop_origin_background");
  check_p(p_hijacker_origin_leased, "p_hijacker_origin_leased");
  check_p(p_hijacker_origin_background, "p_hijacker_origin_background");
  check_p(p_roa_leased_clean, "p_roa_leased_clean");
  check_p(p_roa_leased_drop, "p_roa_leased_drop");
  check_p(p_roa_background, "p_roa_background");
  check_p(p_geo_updated, "p_geo_updated");
  check_p(p_geo_noise, "p_geo_noise");
  check_p(p_moas, "p_moas");
  check_p(p_prepending, "p_prepending");
  check_p(p_as_set, "p_as_set");
  check_p(p_transit_peering, "p_transit_peering");
  check_p(p_asrel_edge_dropped, "p_asrel_edge_dropped");
  for (const RirProfile& profile : rirs) {
    if (profile.leaves < 0 || profile.holders <= 0) {
      throw std::invalid_argument("RirProfile needs holders > 0");
    }
    check_p(profile.top_holder_share, "top_holder_share");
  }
}

const SimAs* World::find_as(Asn asn) const {
  for (const SimAs& as : ases) {
    if (as.asn == asn) return &as;
  }
  return nullptr;
}

namespace {

/// Sequential allocators for ASNs and address space.
class Allocator {
 public:
  Asn next_asn() { return Asn(next_asn_++); }

  /// Next /16 root block for a RIR (all RIRs share one arena; the RIR is a
  /// property of the WHOIS record, not of the bits).
  Prefix next_root() {
    Prefix p = *Prefix::make(Ipv4Addr(root_cursor_), 16);
    root_cursor_ += 1u << 16;
    return p;
  }

  /// Next background /24.
  Prefix next_background() {
    Prefix p = *Prefix::make(Ipv4Addr(background_cursor_), 24);
    background_cursor_ += 1u << 8;
    return p;
  }

 private:
  std::uint32_t next_asn_ = 100;
  std::uint32_t root_cursor_ = 20u << 24;        // roots from 20.0.0.0
  std::uint32_t background_cursor_ = 130u << 24; // background from 130.0.0.0
};

/// Per-root slab allocator for leaf prefixes.
class RootSlab {
 public:
  explicit RootSlab(const Prefix& root) : root_(root) {}

  /// Carve the next leaf of length `len` (<= /24 sized pieces expected);
  /// nullopt when the root is full.
  std::optional<Prefix> carve(int len) {
    std::uint64_t size = std::uint64_t{1} << (32 - len);
    // Align the cursor to the block size.
    std::uint64_t aligned = (cursor_ + size - 1) & ~(size - 1);
    if (aligned + size > root_.size()) return std::nullopt;
    cursor_ = aligned + size;
    return Prefix::make(Ipv4Addr(root_.network().value() +
                                 static_cast<std::uint32_t>(aligned)),
                        len);
  }

 private:
  Prefix root_;
  std::uint64_t cursor_ = 0;
};

std::string rir_tag(whois::Rir rir) {
  switch (rir) {
    case whois::Rir::kRipe: return "RIPE";
    case whois::Rir::kArin: return "ARIN";
    case whois::Rir::kApnic: return "AP";
    case whois::Rir::kAfrinic: return "AFRINIC";
    case whois::Rir::kLacnic: return "LACNIC";
  }
  return "X";
}

const char* country_for(whois::Rir rir, std::uint64_t salt) {
  static constexpr std::array<std::array<const char*, 4>, 5> kCountries = {{
      {"SE", "DE", "NL", "GB"},      // RIPE
      {"US", "US", "CA", "US"},      // ARIN
      {"JP", "SG", "AU", "HK"},      // APNIC
      {"ZA", "TN", "EG", "MU"},      // AFRINIC
      {"BR", "CR", "AR", "CL"},      // LACNIC
  }};
  return kCountries[static_cast<std::size_t>(rir)][salt % 4];
}

/// Builder state threaded through the generation phases.
struct Builder {
  const WorldConfig& config;
  World world;
  Rng rng;
  Allocator alloc;

  // Per-RIR AS pools (indexes into world.ases).
  struct RirPools {
    std::vector<std::size_t> transit;
    std::vector<std::size_t> hosting_clean;
    std::vector<std::size_t> hosting_drop;
    std::vector<std::size_t> hosting_hijacker;
    std::vector<std::size_t> holders_orgs;   // org indexes
    std::vector<std::size_t> broker_orgs;    // org indexes
    std::vector<std::size_t> stubs;          // generic customer stubs
  };
  std::array<RirPools, 5> pools;
  std::vector<std::size_t> tier1;  // as indexes
  std::unordered_map<std::size_t, Asn> org_to_asn;        // org -> its AS
  std::unordered_map<std::uint32_t, std::vector<Asn>> stubs_by_holder;
  std::unordered_map<std::uint32_t, Asn> affiliate_by_holder;

  explicit Builder(const WorldConfig& cfg) : config(cfg), rng(cfg.seed) {
    world.config = cfg;
  }

  RirPools& pool(whois::Rir rir) { return pools[static_cast<std::size_t>(rir)]; }

  std::size_t add_org(SimOrg org) {
    world.orgs.push_back(std::move(org));
    return world.orgs.size() - 1;
  }

  std::size_t add_as(SimAs as) {
    if (as.provider) world.true_rels.add_p2c(*as.provider, as.asn);
    org_to_asn.emplace(as.org_index, as.asn);
    world.ases.push_back(as);
    return world.ases.size() - 1;
  }

  Asn asn_at(std::size_t index) const { return world.ases[index].asn; }

  // ---- phase 1: topology --------------------------------------------

  void build_topology() {
    // Tier-1 clique.
    for (int i = 0; i < config.tier1_count; ++i) {
      std::size_t org = add_org({"ORG-T1-" + std::to_string(i),
                                 "Tier1 Backbone " + std::to_string(i),
                                 "MNT-T1-" + std::to_string(i),
                                 whois::Rir::kArin, "US"});
      SimAs as;
      as.asn = alloc.next_asn();
      as.org_index = org;
      as.tier = AsTier::kTier1;
      tier1.push_back(add_as(as));
    }
    for (std::size_t i = 0; i < tier1.size(); ++i) {
      for (std::size_t j = i + 1; j < tier1.size(); ++j) {
        world.true_rels.add_p2p(asn_at(tier1[i]), asn_at(tier1[j]));
      }
    }

    for (whois::Rir rir : whois::kAllRirs) {
      build_rir_ases(rir);
    }

    // Settlement-free peering among transit networks (within and across
    // regions) — extra relationship edges that never appear on our
    // collector paths, the asymmetry the A5 ablation talks about.
    std::vector<std::size_t> all_transit;
    for (whois::Rir rir : whois::kAllRirs) {
      const auto& t = pool(rir).transit;
      all_transit.insert(all_transit.end(), t.begin(), t.end());
    }
    for (std::size_t i = 0; i < all_transit.size(); ++i) {
      if (!rng.chance(config.p_transit_peering)) continue;
      std::size_t j = rng.next_below(all_transit.size());
      if (i == j) continue;
      world.true_rels.add_p2p(asn_at(all_transit[i]),
                              asn_at(all_transit[j]));
    }
  }

  Asn random_of(const std::vector<std::size_t>& as_indexes) {
    return asn_at(as_indexes[rng.next_below(as_indexes.size())]);
  }

  void build_rir_ases(whois::Rir rir) {
    RirPools& p = pool(rir);
    std::string tag = rir_tag(rir);

    for (int i = 0; i < config.scaled(config.transit_per_rir); ++i) {
      std::size_t org = add_org({"ORG-TR-" + tag + "-" + std::to_string(i),
                                 tag + " Transit " + std::to_string(i),
                                 "MNT-TR-" + tag + "-" + std::to_string(i),
                                 rir, country_for(rir, i)});
      SimAs as;
      as.asn = alloc.next_asn();
      as.org_index = org;
      as.rir = rir;
      as.tier = AsTier::kTransit;
      as.provider = random_of(tier1);
      p.transit.push_back(add_as(as));
    }

    int hosting = std::max(8, config.scaled(config.hosting_per_rir));
    for (int i = 0; i < hosting; ++i) {
      std::size_t org = add_org({"ORG-HOST-" + tag + "-" + std::to_string(i),
                                 tag + " Hosting " + std::to_string(i),
                                 "MNT-HOST-" + tag + "-" + std::to_string(i),
                                 rir, country_for(rir, i + 1)});
      SimAs as;
      as.asn = alloc.next_asn();
      as.org_index = org;
      as.rir = rir;
      as.tier = AsTier::kHosting;
      as.provider = random_of(p.transit);
      // Flag the tail of the pool as abusive: ~7% DROP, ~13% hijackers
      // (hijacker pool includes all DROP ASes — real lists overlap).
      bool drop = i < std::max(1, hosting / 15);
      bool hijacker = drop || (i < std::max(2, hosting / 7));
      as.drop_listed = drop;
      as.hijacker = hijacker;
      std::size_t index = add_as(as);
      if (drop) {
        p.hosting_drop.push_back(index);
      } else if (hijacker) {
        p.hosting_hijacker.push_back(index);
      } else {
        p.hosting_clean.push_back(index);
      }
    }
  }

  // ---- phase 2: leasing-market actors -------------------------------

  void build_market() {
    for (whois::Rir rir : whois::kAllRirs) {
      RirPools& p = pool(rir);
      std::string tag = rir_tag(rir);
      int brokers = std::max(4, config.scaled(config.brokers_per_rir));
      for (int i = 0; i < brokers; ++i) {
        SimOrg org;
        org.rir = rir;
        org.country = country_for(rir, i + 2);
        org.is_broker = true;
        if (i == 0) {
          // The global IPXO-like facilitator: present in several RIRs with
          // per-RIR org objects but one brand.
          org.id = "ORG-IPXO-" + tag;
          org.name = "IPXO LLC";
          org.maintainer = "IPXO-MNT";
          org.on_broker_list = rir == whois::Rir::kRipe ||
                               rir == whois::Rir::kArin ||
                               rir == whois::Rir::kApnic;
          org.listed_name = "IPXO, L.L.C.";  // suffix-variant spelling
        } else {
          org.id = "ORG-BRK-" + tag + "-" + std::to_string(i);
          org.name = tag + " Broker " + std::to_string(i) + " Ltd";
          org.maintainer = "MNT-BRK-" + tag + "-" + std::to_string(i);
          // Brokers are listed with varying fidelity: every third entry
          // spells the legal suffix differently (fuzzy-match exercise).
          org.on_broker_list = true;
          org.listed_name =
              i % 3 == 0
                  ? tag + " Broker " + std::to_string(i) + " L.T.D."
                  : org.name;
        }
        std::size_t org_index = add_org(org);
        p.broker_orgs.push_back(org_index);

        // Broker #1 doubles as an ISP (the broker-as-ISP filter, §5.3):
        // give it an AS that will originate a few of its managed blocks.
        if (i == 1) {
          SimAs as;
          as.asn = alloc.next_asn();
          as.org_index = org_index;
          as.rir = rir;
          as.tier = AsTier::kTransit;
          as.provider = random_of(p.transit);
          p.transit.push_back(add_as(as));
        }
      }
    }
  }

  // ---- phase 3: holders and their customer stubs --------------------

  void build_holders() {
    for (whois::Rir rir : whois::kAllRirs) {
      const RirProfile& profile = config.profile(rir);
      RirPools& p = pool(rir);
      std::string tag = rir_tag(rir);
      int holders = config.scaled(profile.holders);
      for (int i = 0; i < holders; ++i) {
        SimOrg org;
        org.id = "ORG-H-" + tag + "-" + std::to_string(i);
        org.name = tag + " Holder " + std::to_string(i);
        org.maintainer = "MNT-H-" + tag + "-" + std::to_string(i);
        org.rir = rir;
        org.country = country_for(rir, i);
        std::size_t org_index = add_org(org);
        p.holders_orgs.push_back(org_index);

        SimAs as;
        as.asn = alloc.next_asn();
        as.org_index = org_index;
        as.rir = rir;
        as.tier = AsTier::kHolder;
        as.provider = random_of(p.transit);
        std::size_t holder_as = add_as(as);

        // A couple of reusable customer stubs per holder: they originate
        // ISP-customer and delegated-customer leaves.
        int stubs = static_cast<int>(rng.next_in(1, 3));
        for (int s = 0; s < stubs; ++s) {
          std::size_t stub_org = add_org(
              {"ORG-C-" + tag + "-" + std::to_string(i) + "-" +
                   std::to_string(s),
               tag + " Customer " + std::to_string(i) + "." +
                   std::to_string(s),
               "MNT-C-" + tag + "-" + std::to_string(i) + "-" +
                   std::to_string(s),
               rir, org.country});
          SimAs stub;
          stub.asn = alloc.next_asn();
          stub.org_index = stub_org;
          stub.rir = rir;
          stub.tier = AsTier::kStub;
          stub.provider = asn_at(holder_as);
          stubs_by_holder[asn_at(holder_as).value()].push_back(stub.asn);
          p.stubs.push_back(add_as(stub));
        }

        // Some holders operate an affiliate AS registered under a separate
        // WHOIS organisation (merger/acquisition residue) that as2org DOES
        // link back — only the sibling check can relate it (ablation A2).
        if (rng.chance(0.15)) {
          std::size_t affiliate_org = add_org(
              {"ORG-AFF-" + tag + "-" + std::to_string(i),
               tag + " Holder " + std::to_string(i) + " Networks",
               "MNT-AFF-" + tag + "-" + std::to_string(i), rir, org.country});
          SimAs affiliate;
          affiliate.asn = alloc.next_asn();
          affiliate.org_index = affiliate_org;
          affiliate.rir = rir;
          affiliate.tier = AsTier::kStub;
          affiliate.provider = random_of(p.transit);  // no edge to holder
          affiliate.as2org_override = org_index;
          affiliate_by_holder[asn_at(holder_as).value()] = affiliate.asn;
          add_as(affiliate);
        }
      }
    }
  }

  /// Customer stubs of a specific holder AS (provider edge).
  const std::vector<Asn>& stubs_of(Asn holder) {
    static const std::vector<Asn> kNone;
    auto it = stubs_by_holder.find(holder.value());
    return it == stubs_by_holder.end() ? kNone : it->second;
  }

  // ---- phase 4: allocation forest + leaf truth ----------------------

  Asn pick_originator(whois::Rir rir, bool want_drop, bool want_hijacker) {
    RirPools& p = pool(rir);
    if (want_drop && !p.hosting_drop.empty()) {
      return asn_at(p.hosting_drop[rng.next_below(p.hosting_drop.size())]);
    }
    if (want_hijacker) {
      const auto& hij =
          p.hosting_hijacker.empty() ? p.hosting_drop : p.hosting_hijacker;
      if (!hij.empty()) return asn_at(hij[rng.next_below(hij.size())]);
    }
    // Heavy-tailed pick over the clean pool (M247-style concentration) —
    // the pool is shared RIPE/ARIN-style by borrowing from RIPE's pool for
    // a slice of picks, putting the same big originators in several RIRs.
    const std::vector<std::size_t>* cleanpool = &p.hosting_clean;
    if (rir != whois::Rir::kRipe && rng.chance(0.35)) {
      cleanpool = &pool(whois::Rir::kRipe).hosting_clean;
    }
    if (cleanpool->empty()) cleanpool = &p.hosting_clean;
    if (cleanpool->empty()) cleanpool = &p.hosting_hijacker;
    std::size_t rank =
        rng.next_zipf(cleanpool->size(), config.originator_zipf);
    return asn_at((*cleanpool)[rank]);
  }

  std::size_t pick_facilitator(whois::Rir rir) {
    RirPools& p = pool(rir);
    if (rir == whois::Rir::kAfrinic) {
      // Cloud-Innovation-style: the dominant AFRINIC holder facilitates
      // its own leases. Favor the top holder org acting as facilitator.
      if (rng.chance(0.7) && !p.holders_orgs.empty()) {
        return p.holders_orgs[0];
      }
    }
    std::size_t rank =
        rng.next_zipf(p.broker_orgs.size(), config.facilitator_zipf);
    return p.broker_orgs[rank];
  }

  void build_allocations() {
    for (whois::Rir rir : whois::kAllRirs) {
      build_rir_allocations(rir);
    }
  }

  void build_rir_allocations(whois::Rir rir) {
    const RirProfile& profile = config.profile(rir);
    RirPools& p = pool(rir);

    // Normalize Table 1 weights into per-leaf target counts.
    int target = config.scaled(profile.leaves);
    double wsum = profile.w_unused + profile.w_aggregated +
                  profile.w_isp_customer + profile.w_leased_g3 +
                  profile.w_delegated + profile.w_leased_g4;
    auto count_for = [&](double w) {
      return static_cast<long>(w / wsum * target + 0.5);
    };
    long n_unused = count_for(profile.w_unused);
    long n_aggregated = count_for(profile.w_aggregated);
    long n_ispc = count_for(profile.w_isp_customer);
    long n_leased3 = count_for(profile.w_leased_g3);
    long n_delegated = count_for(profile.w_delegated);
    long n_leased4 = count_for(profile.w_leased_g4);

    long dark_remaining = n_unused + n_ispc + n_leased3;
    long lit_remaining = n_aggregated + n_delegated + n_leased4;

    while (dark_remaining + lit_remaining > 0) {
      bool dark = rng.next_below(
                      static_cast<std::uint64_t>(dark_remaining +
                                                 lit_remaining)) <
                  static_cast<std::uint64_t>(dark_remaining);

      // Root owned by a zipf-ranked holder; a configured share goes to the
      // top holder outright (AFRINIC-style market dominance).
      std::size_t holder_rank =
          profile.top_holder_share > 0 && rng.chance(profile.top_holder_share)
              ? 0
              : rng.next_zipf(p.holders_orgs.size(), profile.holder_zipf);
      std::size_t holder_org = p.holders_orgs[holder_rank];
      SimRoot root;
      root.prefix = alloc.next_root();
      root.rir = rir;
      root.holder_org = holder_org;
      root.holder_asn = holder_asn_of(holder_org);
      root.originated = !dark;
      root.aggregated_announcement = !dark && rng.chance(0.08);
      // Market-active (high-rank) holders disproportionately acquired
      // their space on the transfer market.
      double p_transfer = holder_rank < p.holders_orgs.size() / 8 + 1
                              ? 0.45
                              : 0.10;
      if (rng.chance(p_transfer)) {
        root.transferred = true;
        root.transfer_date = config.snapshot_time -
                             static_cast<std::uint32_t>(
                                 rng.next_in(30, 3 * 365)) *
                                 86400;
        root.transfer_from_org =
            "ORG-PREV-" + rir_tag(rir) + "-" +
            std::to_string(world.roots.size());
      }
      std::size_t root_index = world.roots.size();
      world.roots.push_back(root);

      RootSlab slab(root.prefix);
      int capacity = static_cast<int>(rng.next_in(6, 28));
      for (int i = 0; i < capacity; ++i) {
        long& side = dark ? dark_remaining : lit_remaining;
        if (side == 0) break;
        // Draw a category from this side's remaining counts.
        long a = dark ? n_unused : n_aggregated;
        long b = dark ? n_ispc : n_delegated;
        long c = dark ? n_leased3 : n_leased4;
        std::uint64_t pick =
            rng.next_below(static_cast<std::uint64_t>(a + b + c));
        // Space bought on the transfer market is bought to be leased out:
        // steer lease draws toward transferred roots (global counts stay
        // exact — only placement shifts).
        if (root.transferred && c > 0 && rng.chance(0.5)) {
          pick = static_cast<std::uint64_t>(a + b);  // the leased bucket
        }
        int leaf_len = rng.chance(0.8) ? 24 : static_cast<int>(rng.next_in(22, 23));
        auto prefix = slab.carve(leaf_len);
        if (!prefix) break;  // root full

        SimLeaf leaf;
        leaf.prefix = *prefix;
        leaf.rir = rir;
        leaf.root_index = root_index;
        const SimOrg& holder = world.orgs[holder_org];

        // Some customers register their own maintainer on their block —
        // harmless to the BGP method, a false positive for the maintainer-
        // comparison baseline (§6.1).
        auto customer_maintainer = [&]() {
          if (rng.chance(config.p_customer_own_maintainer)) {
            return "MNT-CUST-" + rir_tag(rir) + "-" +
                   std::to_string(world.leaves.size());
          }
          return holder.maintainer;
        };

        if (pick < static_cast<std::uint64_t>(a)) {
          // unused / aggregated
          leaf.truth = dark ? TruthCategory::kUnused
                            : TruthCategory::kAggregatedCustomer;
          leaf.maintainer = customer_maintainer();
          (dark ? n_unused : n_aggregated) -= 1;
        } else if (pick < static_cast<std::uint64_t>(a + b)) {
          // isp customer / delegated customer
          leaf.truth = dark ? TruthCategory::kIspCustomer
                            : TruthCategory::kDelegatedCustomer;
          auto affiliate = affiliate_by_holder.find(root.holder_asn.value());
          if (affiliate != affiliate_by_holder.end() && rng.chance(0.3)) {
            leaf.origin = affiliate->second;  // sibling-only relatedness
          } else {
            const auto& stubs = stubs_of(root.holder_asn);
            leaf.origin = stubs.empty() ? root.holder_asn
                                        : stubs[rng.next_below(stubs.size())];
          }
          leaf.maintainer = customer_maintainer();
          (dark ? n_ispc : n_delegated) -= 1;
        } else {
          // leased
          leaf.truth = TruthCategory::kLeased;
          configure_lease(leaf, rir);
          (dark ? n_leased3 : n_leased4) -= 1;
        }
        side -= 1;
        world.leaves.push_back(std::move(leaf));
      }
    }
  }

  Asn holder_asn_of(std::size_t org_index) {
    auto it = org_to_asn.find(org_index);
    assert(it != org_to_asn.end() && "holder org without AS");
    return it == org_to_asn.end() ? Asn(0) : it->second;
  }

  void configure_lease(SimLeaf& leaf, whois::Rir rir) {
    bool brokered = rng.chance(config.p_lease_brokered);
    if (brokered) {
      std::size_t facilitator = pick_facilitator(rir);
      leaf.facilitator_org = facilitator;
      leaf.maintainer = world.orgs[facilitator].maintainer;
    } else {
      leaf.maintainer = world.orgs[world.roots[leaf.root_index].holder_org]
                            .maintainer;
    }
    leaf.legacy = brokered && rng.chance(config.p_lease_legacy);
    leaf.lease_active = !rng.chance(config.p_lease_inactive);
    if (leaf.lease_active) {
      bool drop = rng.chance(config.p_drop_origin_leased);
      bool hijacker = drop || rng.chance(config.p_hijacker_origin_leased);
      leaf.origin = pick_originator(rir, drop, hijacker);
      leaf.late_origination = rng.chance(config.p_lease_late);
    }
  }

  // ---- phase 4b: broker-as-ISP blocks --------------------------------

  /// Broker #1 of each RIR also operates as an ISP: it holds a small root
  /// and originates its customers' leaves itself. These blocks carry the
  /// broker's maintainer but are NOT leases — the §5.3 manual filter
  /// ("brokers that also served as ISPs") must remove them.
  void build_broker_isp_blocks() {
    for (whois::Rir rir : whois::kAllRirs) {
      RirPools& p = pool(rir);
      if (p.broker_orgs.size() < 2) continue;
      std::size_t broker_org = p.broker_orgs[1];
      auto it = org_to_asn.find(broker_org);
      if (it == org_to_asn.end()) continue;
      Asn broker_asn = it->second;

      SimRoot root;
      root.prefix = alloc.next_root();
      root.rir = rir;
      root.holder_org = broker_org;
      root.holder_asn = broker_asn;
      root.originated = false;  // dark root: only the leaves are announced
      std::size_t root_index = world.roots.size();
      world.roots.push_back(root);

      RootSlab slab(root.prefix);
      for (int i = 0; i < 6; ++i) {
        auto prefix = slab.carve(24);
        if (!prefix) break;
        SimLeaf leaf;
        leaf.prefix = *prefix;
        leaf.rir = rir;
        leaf.root_index = root_index;
        leaf.truth = TruthCategory::kIspCustomer;
        leaf.maintainer = world.orgs[broker_org].maintainer;
        leaf.origin = broker_asn;
        world.leaves.push_back(std::move(leaf));
      }
    }
  }

  // ---- phase 5: evaluation negatives (residential ISPs) --------------

  void build_eval_negatives() {
    struct IspSpec {
      whois::Rir rir;
      const char* name;
      bool with_subsidiaries;
    };
    const std::array<IspSpec, 5> specs = {{
        {whois::Rir::kRipe, "Orange S.A.", false},
        {whois::Rir::kRipe, "Vodafone Group", true},  // the FP generator
        {whois::Rir::kArin, "AT&T Services", false},
        {whois::Rir::kArin, "Comcast Cable", false},
        {whois::Rir::kApnic, "IIJ", false},
    }};

    int per_isp = config.scaled(config.eval_blocks_per_isp);
    for (std::size_t spec_index = 0;
         spec_index < static_cast<std::size_t>(config.eval_isp_count) &&
         spec_index < specs.size();
         ++spec_index) {
      const IspSpec& spec = specs[spec_index];
      std::string tag = rir_tag(spec.rir);
      SimOrg org;
      org.id = "ORG-ISP-" + tag + "-" + std::to_string(spec_index);
      org.name = spec.name;
      org.maintainer = "MNT-ISP-" + std::to_string(spec_index);
      org.rir = spec.rir;
      org.country = country_for(spec.rir, spec_index);
      std::size_t org_index = add_org(org);
      world.eval_isp_orgs.emplace_back(spec.rir, org.id);

      SimAs as;
      as.asn = alloc.next_asn();
      as.org_index = org_index;
      as.rir = spec.rir;
      as.tier = AsTier::kTransit;
      as.provider = random_of(tier1);
      add_as(as);
      Asn isp_asn = as.asn;

      // Hidden subsidiaries: own org objects and ASes, no relationship
      // edge to the parent, invisible siblings in as2org (paper §6.2).
      std::vector<std::pair<std::size_t, Asn>> subsidiaries;
      if (spec.with_subsidiaries) {
        for (int s = 0; s < config.subsidiary_orgs; ++s) {
          SimOrg sub;
          sub.id = org.id + "-SUB" + std::to_string(s);
          sub.name = std::string(spec.name) + " Subsidiary " +
                     std::to_string(s);
          sub.maintainer = org.maintainer;  // operated by the parent
          sub.rir = spec.rir;
          sub.country = country_for(spec.rir, s);
          std::size_t sub_org = add_org(sub);
          SimAs sub_as;
          sub_as.asn = alloc.next_asn();
          sub_as.org_index = sub_org;
          sub_as.rir = spec.rir;
          sub_as.tier = AsTier::kStub;
          sub_as.provider = random_of(pool(spec.rir).transit);
          add_as(sub_as);
          subsidiaries.emplace_back(sub_org, sub_as.asn);
          world.eval_isp_orgs.emplace_back(spec.rir, sub.id);
        }
      }

      // The ISP's allocation: lit roots with customer leaves originated by
      // the ISP's own AS (true negatives) or by a hidden subsidiary
      // (false-positive bait).
      int remaining = per_isp;
      bool any_subsidiary_leaf = false;
      while (remaining > 0) {
        SimRoot root;
        root.prefix = alloc.next_root();
        root.rir = spec.rir;
        root.holder_org = org_index;
        root.holder_asn = isp_asn;
        root.originated = true;
        std::size_t root_index = world.roots.size();
        world.roots.push_back(root);

        RootSlab slab(root.prefix);
        int capacity = static_cast<int>(rng.next_in(10, 30));
        for (int i = 0; i < capacity && remaining > 0; ++i) {
          auto prefix = slab.carve(24);
          if (!prefix) break;
          SimLeaf leaf;
          leaf.prefix = *prefix;
          leaf.rir = spec.rir;
          leaf.root_index = root_index;
          leaf.truth = TruthCategory::kDelegatedCustomer;
          leaf.eval_negative = true;
          leaf.maintainer = org.maintainer;
          // The last leaf is forced through a subsidiary if none was drawn
          // yet, so tiny worlds still contain the FP mechanism.
          bool force_subsidiary =
              !subsidiaries.empty() && !any_subsidiary_leaf && remaining == 1;
          if (!subsidiaries.empty() &&
              (force_subsidiary || rng.chance(config.p_subsidiary_origin))) {
            const auto& [sub_org, sub_asn] =
                subsidiaries[rng.next_below(subsidiaries.size())];
            leaf.org_id = world.orgs[sub_org].id;
            leaf.origin = sub_asn;
            any_subsidiary_leaf = true;
          } else {
            leaf.org_id = org.id;
            leaf.origin = isp_asn;
          }
          world.leaves.push_back(std::move(leaf));
          --remaining;
        }
      }
    }
  }

  // ---- phase 6: background routed prefixes ---------------------------

  void build_background() {
    for (whois::Rir rir : whois::kAllRirs) {
      const RirProfile& profile = config.profile(rir);
      RirPools& p = pool(rir);
      int count = config.scaled(profile.background_prefixes);
      for (int i = 0; i < count; ++i) {
        BackgroundPrefix bg;
        bg.prefix = alloc.next_background();
        bool drop = rng.chance(config.p_drop_origin_background);
        bool hijacker =
            drop || rng.chance(config.p_hijacker_origin_background);
        if (drop || hijacker) {
          bg.origin = pick_originator(rir, drop, hijacker);
        } else {
          // Ordinary ISP space: transit, stubs, and holders all appear.
          double dice = rng.next_double();
          if (dice < 0.4 && !p.stubs.empty()) {
            bg.origin = asn_at(p.stubs[rng.next_below(p.stubs.size())]);
          } else if (dice < 0.7) {
            bg.origin = asn_at(p.transit[rng.next_below(p.transit.size())]);
          } else {
            bg.origin = asn_at(
                p.hosting_clean[rng.next_zipf(p.hosting_clean.size(), 1.0)]);
          }
        }
        world.background.push_back(bg);
      }
    }
  }

  // ---- phase 7: aggregate announcements ------------------------------

  void build_aggregates() {
    for (SimRoot& root : world.roots) {
      if (!root.aggregated_announcement) continue;
      // Announce the covering /15 instead of the /16 itself.
      auto covering = Prefix::make(root.prefix.network(), 15);
      world.aggregates.push_back({*covering, root.holder_asn});
    }
  }

  World finish() {
    build_topology();
    build_market();
    build_holders();
    build_allocations();
    build_broker_isp_blocks();
    build_eval_negatives();
    build_background();
    build_aggregates();
    return std::move(world);
  }
};

}  // namespace

World build_world(const WorldConfig& config) {
  config.validate();
  Builder builder(config);
  return builder.finish();
}

}  // namespace sublet::sim
