#include "simnet/epoch.h"

#include <unordered_map>

#include "util/rng.h"

namespace sublet::sim {

World advance_epoch(const World& world, const EpochOptions& options) {
  World next = world;
  Rng rng(world.config.seed ^ (0xEE0C4ull * (options.epoch + 1)));

  // Hosting pools per RIR for re-leasing, from the fixed AS population.
  std::unordered_map<int, std::vector<Asn>> hosting;
  for (const SimAs& as : next.ases) {
    if (as.tier == AsTier::kHosting) {
      hosting[static_cast<int>(as.rir)].push_back(as.asn);
    }
  }
  auto pick_host = [&](whois::Rir rir) {
    auto& pool = hosting[static_cast<int>(rir)];
    return pool[rng.next_zipf(pool.size(),
                              world.config.originator_zipf)];
  };

  // Broker orgs per RIR for newly brokered leases.
  std::unordered_map<int, std::vector<std::size_t>> brokers;
  for (std::size_t i = 0; i < next.orgs.size(); ++i) {
    if (next.orgs[i].is_broker) {
      brokers[static_cast<int>(next.orgs[i].rir)].push_back(i);
    }
  }

  for (SimLeaf& leaf : next.leaves) {
    if (leaf.eval_negative) continue;
    if (leaf.truth == TruthCategory::kLeased && leaf.lease_active &&
        leaf.origin) {
      if (rng.chance(options.p_lease_end)) {
        // Lease ends: the prefix is withdrawn and sits idle.
        leaf.lease_active = false;
        leaf.origin.reset();
        leaf.late_origination = false;
      } else if (rng.chance(options.p_lease_change)) {
        Asn previous = *leaf.origin;
        Asn replacement = pick_host(leaf.rir);
        if (replacement != previous) leaf.origin = replacement;
      }
    } else if (leaf.truth == TruthCategory::kUnused &&
               rng.chance(options.p_new_lease)) {
      // Fresh lease on idle space; the new-lease market is broker-heavy.
      leaf.truth = TruthCategory::kLeased;
      leaf.lease_active = true;
      leaf.origin = pick_host(leaf.rir);
      auto& pool = brokers[static_cast<int>(leaf.rir)];
      if (!pool.empty() && rng.chance(0.8)) {
        std::size_t broker = pool[rng.next_zipf(
            pool.size(), world.config.facilitator_zipf)];
        leaf.facilitator_org = broker;
        leaf.maintainer = next.orgs[broker].maintainer;
      }
    }
  }
  return next;
}

}  // namespace sublet::sim
