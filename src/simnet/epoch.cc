#include "simnet/epoch.h"

#include <unordered_map>

#include "util/rng.h"

namespace sublet::sim {

World advance_epoch(const World& world, const EpochOptions& options) {
  World next = world;
  Rng rng(world.config.seed ^ (0xEE0C4ull * (options.epoch + 1)));

  // Hosting pools per RIR for re-leasing, from the fixed AS population.
  std::unordered_map<int, std::vector<Asn>> hosting;
  for (const SimAs& as : next.ases) {
    if (as.tier == AsTier::kHosting) {
      hosting[static_cast<int>(as.rir)].push_back(as.asn);
    }
  }
  auto pick_host = [&](whois::Rir rir) {
    auto& pool = hosting[static_cast<int>(rir)];
    return pool[rng.next_zipf(pool.size(),
                              world.config.originator_zipf)];
  };

  // Broker orgs per RIR for newly brokered leases.
  std::unordered_map<int, std::vector<std::size_t>> brokers;
  for (std::size_t i = 0; i < next.orgs.size(); ++i) {
    if (next.orgs[i].is_broker) {
      brokers[static_cast<int>(next.orgs[i].rir)].push_back(i);
    }
  }

  for (SimLeaf& leaf : next.leaves) {
    if (leaf.eval_negative) continue;
    if (leaf.truth == TruthCategory::kLeased && leaf.lease_active &&
        leaf.origin) {
      if (rng.chance(options.p_lease_end)) {
        // Lease ends: the prefix is withdrawn and sits idle.
        leaf.lease_active = false;
        leaf.origin.reset();
        leaf.late_origination = false;
      } else if (rng.chance(options.p_lease_change)) {
        Asn previous = *leaf.origin;
        Asn replacement = pick_host(leaf.rir);
        if (replacement != previous) leaf.origin = replacement;
      }
    } else if (leaf.truth == TruthCategory::kUnused &&
               rng.chance(options.p_new_lease)) {
      // Fresh lease on idle space; the new-lease market is broker-heavy.
      leaf.truth = TruthCategory::kLeased;
      leaf.lease_active = true;
      leaf.origin = pick_host(leaf.rir);
      auto& pool = brokers[static_cast<int>(leaf.rir)];
      if (!pool.empty() && rng.chance(0.8)) {
        std::size_t broker = pool[rng.next_zipf(
            pool.size(), world.config.facilitator_zipf)];
        leaf.facilitator_org = broker;
        leaf.maintainer = next.orgs[broker].maintainer;
      }
    }
  }
  return next;
}

std::vector<leasing::LeaseInference> epoch_inferences(const World& world) {
  std::vector<leasing::LeaseInference> out;
  out.reserve(world.leaves.size());
  for (const SimLeaf& leaf : world.leaves) {
    if (leaf.legacy) continue;  // the pipeline excludes legacy space too
    const SimRoot& root = world.roots[leaf.root_index];
    const SimOrg& holder = world.orgs[root.holder_org];
    leasing::LeaseInference inference;
    inference.prefix = leaf.prefix;
    inference.rir = leaf.rir;
    const bool originated = leaf.origin.has_value() && leaf.lease_active;
    if (!originated) {
      inference.group = root.originated
                            ? leasing::InferenceGroup::kAggregatedCustomer
                            : leasing::InferenceGroup::kUnused;
    } else {
      switch (leaf.truth) {
        case TruthCategory::kLeased:
          inference.group = root.originated
                                ? leasing::InferenceGroup::kLeasedWithRoot
                                : leasing::InferenceGroup::kLeasedNoRoot;
          break;
        case TruthCategory::kIspCustomer:
          inference.group = leasing::InferenceGroup::kIspCustomer;
          break;
        case TruthCategory::kDelegatedCustomer:
          inference.group = leasing::InferenceGroup::kDelegatedCustomer;
          break;
        case TruthCategory::kAggregatedCustomer:
          inference.group = leasing::InferenceGroup::kAggregatedCustomer;
          break;
        case TruthCategory::kUnused:
          inference.group = leasing::InferenceGroup::kUnused;
          break;
      }
    }
    inference.root_prefix = root.prefix;
    inference.holder_org = holder.id;
    inference.holder_asns.push_back(root.holder_asn);
    if (originated) inference.leaf_origins.push_back(*leaf.origin);
    if (root.originated) inference.root_origins.push_back(root.holder_asn);
    if (!leaf.maintainer.empty()) {
      inference.leaf_maintainers.push_back(leaf.maintainer);
    }
    if (!holder.maintainer.empty()) {
      inference.root_maintainers.push_back(holder.maintainer);
    }
    inference.netname = leaf.org_id;
    out.push_back(std::move(inference));
  }
  return out;
}

}  // namespace sublet::sim
