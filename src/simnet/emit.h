// World emission: serialize a World into the on-disk dataset bundle the
// pipeline consumes (leasing/dataset.h layout). Every emitter writes the
// real dialect: RPSL / ARIN bulk / LACNIC WHOIS, binary MRT TABLE_DUMP_V2,
// routinator-style VRP CSV, serial-1 AS relationships, CAIDA as2org,
// Spamhaus JSON Lines.
#pragma once

#include <string>

#include "simnet/world.h"

namespace sublet::sim {

/// Write the full bundle under `dir` (created if needed):
///   whois/, bgp/, rpki/, asgraph/, lists/, truth/.
/// Deterministic for a given world — every emitter stage owns a forked
/// RNG stream and a disjoint subdirectory, so the stages run as
/// concurrent tasks (`threads`: 0 = process default, 1 = serial) and the
/// emitted bytes are identical at any thread count. Throws
/// std::runtime_error on I/O error.
void emit_world(const World& world, const std::string& dir,
                unsigned threads = 0);

}  // namespace sublet::sim
