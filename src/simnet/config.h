// Synthetic-world configuration.
//
// Defaults are tuned so the emitted world reproduces the *shape* of the
// paper's April 2024 measurement at ~1/10 scale: per-RIR group mixes from
// Table 1, broker-positive / ISP-negative evaluation labels with the FN/FP
// mechanisms of §6.2, heavy-tailed holder/facilitator/originator markets
// (Table 3, §6.3), and the §6.3/§6.4 abuse ratios. Scale knobs exist so
// tests can run tiny worlds and ablations can stress single parameters.
#pragma once

#include <array>
#include <cstdint>

#include "whoisdb/rir.h"

namespace sublet::sim {

/// Per-RIR scale and classification mix. Group weights are the paper's
/// Table 1 counts (they are normalized internally, so any scale works).
struct RirProfile {
  int leaves = 0;              ///< non-portable leaf blocks to generate
  double w_unused = 0;         ///< group 1
  double w_aggregated = 0;     ///< group 2
  double w_isp_customer = 0;   ///< group 3, related
  double w_leased_g3 = 0;      ///< group 3, leased
  double w_delegated = 0;      ///< group 4, related
  double w_leased_g4 = 0;      ///< group 4, leased
  int holders = 0;             ///< holder organisations
  double holder_zipf = 1.1;    ///< root-ownership skew
  /// Probability a root goes to holder #0 outright, before the zipf draw —
  /// models Cloud Innovation's AFRINIC dominance (2,014 vs 38 leases).
  double top_holder_share = 0.0;
  int background_prefixes = 0; ///< non-leaf routed prefixes (ISP space)
};

struct WorldConfig {
  std::uint64_t seed = 42;

  /// Global multiplier on every per-RIR `leaves`/`background` count;
  /// 1.0 = the ~1/10-of-paper default world, tests use ~0.01.
  double scale = 1.0;

  /// Group weights are Table 1 counts adjusted for inactive leases: the
  /// paper's Unused/Aggregated rows *include* contracted-but-unrouted
  /// leases (the classifier cannot see them), so the generator's leased
  /// weights are inflated by 1/(1-p_lease_inactive) and the same mass is
  /// taken back out of Unused (group 3 side) / Aggregated (group 4 side).
  /// That way the classifier's output mix lands on Table 1 itself.
  std::array<RirProfile, 5> rirs{
      // leaves, unused, aggr, ispc, leas3, deleg, leas4,
      //   holders, zipf, top-share, background
      RirProfile{35575, 58186, 203954, 31484, 32258, 27610, 2255,
                 320, 1.1, 0.0, 52000},  // RIPE
      RirProfile{18689, 41639, 97162, 10302, 8069, 22927, 6787,
                 200, 1.1, 0.0, 26000},  // ARIN
      RirProfile{7019, 24766, 21484, 7725, 3946, 8291, 181,
                 110, 1.1, 0.0, 11000},  // APNIC
      RirProfile{4533, 28491, 1728, 777, 2617, 1236, 76,
                 40, 1.4, 0.85, 2400},  // AFRINIC (Cloud-Innovation share)
      RirProfile{4786, 27423, 11939, 2250, 755, 1294, 66,
                 60, 1.1, 0.0, 4900},  // LACNIC
  };

  // ---- topology ----
  int tier1_count = 8;
  int transit_per_rir = 24;
  int hosting_per_rir = 60;      ///< lease-originator pool
  double originator_zipf = 1.25; ///< M247/Stark-style concentration

  // ---- collectors ----
  int collectors = 3;
  int peers_per_collector = 2;
  double collector_visibility = 0.97;  ///< per-collector prefix coverage
  std::uint32_t snapshot_time = 1711929600;  ///< 2024-04-01T00:00:00Z
  /// The paper collects BGP over April 1-15 "to capture leased prefixes
  /// that were not immediately originated": each collector emits a second
  /// snapshot 14 days later, and this fraction of active leases only
  /// appears in that late snapshot.
  double p_lease_late = 0.06;

  // ---- leasing market ----
  int brokers_per_rir = 10;
  double facilitator_zipf = 1.3;   ///< IPXO-style concentration
  double p_lease_inactive = 0.17;  ///< broker-managed lease not originated
  double p_lease_legacy = 0.015;   ///< broker-managed block is legacy space
  /// Fraction of genuine customer leaves (aggregated/ISP/delegated) that
  /// register their own maintainer instead of the provider's — the false-
  /// positive class the paper attributes to the maintainer-comparison
  /// baseline (§6.1).
  double p_customer_own_maintainer = 0.06;
  /// Fraction of leased leaves carrying a broker (facilitator) maintainer;
  /// the rest are direct holder->lessee leases (invisible to the broker-
  /// based reference set, matching the paper's limited positive coverage).
  double p_lease_brokered = 0.55;

  // ---- evaluation negatives ----
  int eval_isp_count = 5;          ///< residential ISP org groups
  int eval_blocks_per_isp = 110;   ///< negative-label leaves per ISP
  int subsidiary_orgs = 17;        ///< Vodafone-style hidden siblings
  double p_subsidiary_origin = 0.12;  ///< negative leaf originated by one

  // ---- abuse ----
  double p_drop_origin_leased = 0.010;    ///< §6.4: ~1.1% of leases
  double p_drop_origin_background = 0.002;  ///< 0.2% of non-leased
  double p_hijacker_origin_leased = 0.133;  ///< §6.3: 13.3% of leases
  double p_hijacker_origin_background = 0.031;
  double p_roa_leased_clean = 0.62;   ///< ROA coverage of clean leases
  double p_roa_leased_drop = 0.95;    ///< abusers create ROAs (§6.4)
  double p_roa_background = 0.46;

  // ---- geolocation databases (§8 consistency anecdote) ----
  int geo_providers = 4;        ///< independent geolocation snapshots
  double p_geo_updated = 0.5;   ///< provider tracked the lease (lessee cc)
  double p_geo_noise = 0.02;    ///< provider has a plain-wrong answer

  // ---- routing-table realism ----
  double p_moas = 0.01;        ///< background prefixes with a second origin
  double p_prepending = 0.08;  ///< paths with origin prepending
  double p_as_set = 0.004;     ///< aggregated routes with a trailing AS_SET
  double p_transit_peering = 0.15;  ///< extra p2p edges among transits

  // ---- data-quality knobs (ablations) ----
  double p_asrel_edge_dropped = 0.01;  ///< unobserved relationship edges
  int hyper_specific_noise = 400;      ///< >/24 records to sprinkle in

  /// Scale helper.
  int scaled(int n) const {
    int v = static_cast<int>(n * scale);
    return v > 0 ? v : (n > 0 ? 1 : 0);
  }

  /// Throws std::invalid_argument when a knob is out of range (negative
  /// scale, probabilities outside [0,1], empty topology). build_world()
  /// calls this; call it yourself before shipping a config across an API.
  void validate() const;

  const RirProfile& profile(whois::Rir rir) const {
    return rirs[static_cast<std::size_t>(rir)];
  }
};

}  // namespace sublet::sim
