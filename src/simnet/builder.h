// World builder: grows a synthetic Internet from a WorldConfig.
#pragma once

#include "simnet/world.h"

namespace sublet::sim {

/// Deterministic for a given config (seed included). See config.h for the
/// mechanisms each parameter drives.
World build_world(const WorldConfig& config);

}  // namespace sublet::sim
