#include "simnet/ground_truth.h"

#include <stdexcept>

#include "util/csv.h"

namespace sublet::sim {

GroundTruth GroundTruth::load(const std::string& dataset_dir) {
  auto table = read_delimited_file(dataset_dir + "/truth/leases.csv");
  GroundTruth truth;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto& row = table[i];
    if (i == 0 && !row.empty() && row[0] == "prefix") continue;  // header
    if (row.size() < 11) {
      throw std::runtime_error("malformed truth row in " + dataset_dir);
    }
    TruthRow out;
    auto prefix = Prefix::parse(row[0]);
    auto rir = whois::rir_from_name(row[1]);
    if (!prefix || !rir) {
      throw std::runtime_error("bad truth prefix/rir: " + row[0]);
    }
    out.prefix = *prefix;
    out.rir = *rir;
    out.truth = row[2];
    out.is_leased = row[3] == "1";
    out.active = row[4] == "1";
    out.holder_org = row[5];
    out.facilitator_org = row[6];
    if (!row[7].empty()) out.origin = Asn::parse(row[7]);
    out.eval_negative = row[8] == "1";
    out.legacy = row[9] == "1";
    out.late = row[10] == "1";
    truth.index_.emplace(out.prefix, truth.rows_.size());
    truth.rows_.push_back(std::move(out));
  }
  return truth;
}

const TruthRow* GroundTruth::find(const Prefix& prefix) const {
  auto it = index_.find(prefix);
  return it == index_.end() ? nullptr : &rows_[it->second];
}

std::size_t GroundTruth::leased_count() const {
  std::size_t count = 0;
  for (const TruthRow& row : rows_) {
    if (row.is_leased) ++count;
  }
  return count;
}

std::size_t GroundTruth::active_leased_count() const {
  std::size_t count = 0;
  for (const TruthRow& row : rows_) {
    if (row.is_leased && row.active) ++count;
  }
  return count;
}

}  // namespace sublet::sim
