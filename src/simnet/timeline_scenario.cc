#include "simnet/timeline_scenario.h"

#include <fstream>
#include <stdexcept>

#include "mrt/bgp4mp.h"
#include "simnet/builder.h"

namespace sublet::sim {

namespace {
constexpr std::uint32_t kMonth = 30 * 86400;
}

TimelineScenario build_timeline_scenario(const TimelineOptions& options) {
  TimelineScenario scenario;
  scenario.prefix = *Prefix::parse("213.210.33.0/24");
  scenario.start = options.start;
  scenario.end = options.start + options.months * kMonth;

  // Script: lease(lessee[i]) for months_per_lease, then AS0 quarantine.
  struct Phase {
    Asn asn;
    bool quarantine;
  };
  std::vector<Phase> schedule;
  for (std::uint32_t lessee : options.lessees) {
    for (std::uint32_t m = 0; m < options.months_per_lease; ++m) {
      schedule.push_back({Asn(lessee), false});
    }
    for (std::uint32_t m = 0; m < options.quarantine_months; ++m) {
      schedule.push_back({Asn(0), true});
    }
  }

  Asn current_truth_asn;
  bool have_period = false;
  for (std::uint32_t month = 0; month < options.months; ++month) {
    std::uint32_t ts = options.start + month * kMonth;
    const Phase& phase = schedule[month % schedule.size()];

    rpki::VrpSet vrps;
    vrps.add({scenario.prefix, scenario.prefix.length(), phase.asn});
    scenario.archive.add_snapshot(ts, std::move(vrps));

    // BGP: the lessee originates during a lease; nothing is announced
    // during AS0 quarantine (the ROA keeps squatters RPKI-invalid).
    if (phase.quarantine) {
      scenario.bgp_history.push_back({ts, {}});
    } else {
      scenario.bgp_history.push_back({ts, {phase.asn}});
    }

    // Truth periods.
    if (!have_period || current_truth_asn != phase.asn) {
      scenario.truth.push_back({ts, ts, phase.asn});
      current_truth_asn = phase.asn;
      have_period = true;
    } else {
      scenario.truth.back().end = ts;
    }
  }
  return scenario;
}

void write_updates_mrt(const TimelineScenario& scenario,
                       const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  mrt::MrtWriter writer(out);

  const Asn collector_peer(65000);
  for (const auto& [ts, origins] : scenario.bgp_history) {
    mrt::Bgp4mpMessage msg;
    msg.peer_asn = collector_peer;
    msg.local_asn = Asn(65001);
    msg.peer_ip = *Ipv4Addr::parse("203.0.113.1");
    msg.local_ip = *Ipv4Addr::parse("203.0.113.2");
    msg.type = mrt::BgpMessageType::kUpdate;
    if (origins.empty()) {
      msg.withdrawn = {scenario.prefix};
    } else {
      msg.announced = {scenario.prefix};
      msg.attributes.origin = mrt::BgpOrigin::kIgp;
      mrt::AsPathSegment seg;
      seg.type = mrt::AsPathSegmentType::kAsSequence;
      seg.asns.push_back(collector_peer);
      seg.asns.insert(seg.asns.end(), origins.begin(), origins.end());
      msg.attributes.as_path.segments.push_back(std::move(seg));
      msg.attributes.next_hop = msg.peer_ip;
    }
    writer.write(ts, mrt::MrtType::kBgp4mp,
                 static_cast<std::uint16_t>(mrt::Bgp4mpSubtype::kMessageAs4),
                 mrt::encode_bgp4mp(msg, mrt::Bgp4mpSubtype::kMessageAs4));
  }
}

EpochSeries build_epoch_series(const WorldConfig& config,
                               const EpochSeriesOptions& options) {
  if (options.epochs == 0) {
    throw std::invalid_argument("build_epoch_series: epochs must be > 0");
  }
  EpochSeries series;
  series.timestamps.reserve(options.epochs);
  series.inferences.reserve(options.epochs);
  World world = build_world(config);
  for (std::size_t k = 0; k < options.epochs; ++k) {
    if (k > 0) {
      EpochOptions step = options.churn;
      step.epoch = k;  // stirred into the RNG: each step is distinct
      world = advance_epoch(world, step);
    }
    series.timestamps.push_back(
        options.start + static_cast<std::uint32_t>(k) * options.step);
    series.inferences.push_back(epoch_inferences(world));
  }
  return series;
}

}  // namespace sublet::sim
