// Epoch advancement: evolve a world by one measurement interval.
//
// Drives the market-dynamics experiment (leasing/churn.h): between two
// monthly snapshots some leases end (the space goes dark or returns to the
// holder), some move to a new lessee (short-term VPN/BYOIP cycling), and
// previously idle sub-allocations get leased out.
#pragma once

#include <vector>

#include "leasing/types.h"
#include "simnet/world.h"

namespace sublet::sim {

struct EpochOptions {
  double p_lease_end = 0.10;     ///< active lease ends (block goes dark)
  double p_lease_change = 0.12;  ///< active lease moves to a new lessee
  double p_new_lease = 0.035;    ///< unused leaf becomes a (brokered) lease
  std::uint64_t epoch = 1;       ///< stirred into the RNG stream
};

/// Return a copy of `world` advanced by one epoch. Deterministic for
/// (world.config.seed, options.epoch). Only lease state changes: topology,
/// organisations, and the allocation forest stay fixed — exactly what a
/// month of market activity looks like in the registries.
World advance_epoch(const World& world, const EpochOptions& options = {});

/// What a perfect classifier would output for the world's current lease
/// state: one LeaseInference per non-legacy leaf, evidence populated from
/// the ground truth. This is the per-epoch record set the snapshot catalog
/// is built from (docs/TIMETRAVEL.md) — running the full emit + classify
/// pipeline per epoch would dominate a 10-epoch catalog build without
/// changing what the catalog layer exercises.
std::vector<leasing::LeaseInference> epoch_inferences(const World& world);

}  // namespace sublet::sim
