// Figure 3 scenario: the two-year RPKI + BGP history of one facilitator-
// managed prefix cycling through successive lessees, with AS0 ROAs between
// leases (the paper's IPXO example, §6.5).
#pragma once

#include <cstdint>
#include <vector>

#include "leasing/timeline.h"
#include "leasing/types.h"
#include "netbase/asn.h"
#include "netbase/ipv4.h"
#include "rpki/archive.h"
#include "simnet/config.h"
#include "simnet/epoch.h"

namespace sublet::sim {

struct TimelineScenario {
  Prefix prefix;
  std::uint32_t start = 0;  ///< scenario window
  std::uint32_t end = 0;
  rpki::RpkiArchive archive;          ///< monthly ROA snapshots
  leasing::OriginHistory bgp_history; ///< monthly BGP origins
  /// The scripted truth: (start, end, asn) lease periods; AS0 = quarantine.
  std::vector<leasing::LeasePeriod> truth;
};

struct TimelineOptions {
  std::uint32_t start = 1648771200;        ///< 2022-04-01
  std::uint32_t months = 25;               ///< through 2024-04
  /// Successive lessee ASes, in order (Figure 3's y-axis, bottom-up).
  std::vector<std::uint32_t> lessees = {834, 8100, 61317, 212384, 211975,
                                        1239};
  std::uint32_t months_per_lease = 3;
  std::uint32_t quarantine_months = 1;     ///< AS0 period between leases
};

/// Build the scenario deterministically from the options.
TimelineScenario build_timeline_scenario(const TimelineOptions& options = {});

/// Serialize the scenario's BGP side as a real MRT BGP4MP_MESSAGE_AS4
/// updates file (announce on lease start, withdraw on quarantine), so the
/// replay path (`bgp::replay_updates_file`) can be exercised end to end.
void write_updates_mrt(const TimelineScenario& scenario,
                       const std::string& path);

// ---- multi-epoch world series (snapshot catalog input) ------------------

/// Knobs for build_epoch_series: a dated run of monthly measurement
/// epochs over one evolving world.
struct EpochSeriesOptions {
  std::uint32_t start = 1704067200;  ///< 2024-01-01, epoch 1's timestamp
  std::uint32_t step = 2592000;      ///< 30 days between epochs
  std::size_t epochs = 10;
  EpochOptions churn;                ///< per-step market dynamics
};

/// One evolving world observed at `epochs` successive timestamps: element
/// k of `inferences` is what a perfect classifier outputs at
/// `timestamps[k]`. Deterministic for (config.seed, options); this is the
/// generator behind `sublet catalog build` and the time-travel test
/// fixtures (docs/TIMETRAVEL.md).
struct EpochSeries {
  std::vector<std::uint32_t> timestamps;
  std::vector<std::vector<leasing::LeaseInference>> inferences;
};

EpochSeries build_epoch_series(const WorldConfig& config,
                               const EpochSeriesOptions& options = {});

}  // namespace sublet::sim
