// Ground-truth access for evaluation harnesses.
//
// The truth CSV is written by emit_world() into <dir>/truth/leases.csv and
// is consumed ONLY by benches/tests scoring the pipeline — never by the
// pipeline itself (DESIGN.md §5.5).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netbase/asn.h"
#include "netbase/ipv4.h"
#include "whoisdb/rir.h"

namespace sublet::sim {

struct TruthRow {
  Prefix prefix;
  whois::Rir rir = whois::Rir::kRipe;
  std::string truth;        ///< truth_name() string
  bool is_leased = false;
  bool active = true;
  std::string holder_org;
  std::string facilitator_org;
  std::optional<Asn> origin;
  bool eval_negative = false;
  bool legacy = false;
  bool late = false;  ///< only announced late in the observation window
};

class GroundTruth {
 public:
  /// Load <dir>/truth/leases.csv. Throws on missing/corrupt file.
  static GroundTruth load(const std::string& dataset_dir);

  const std::vector<TruthRow>& rows() const { return rows_; }
  const TruthRow* find(const Prefix& prefix) const;

  std::size_t leased_count() const;
  std::size_t active_leased_count() const;

 private:
  std::vector<TruthRow> rows_;
  std::unordered_map<Prefix, std::size_t, PrefixHash> index_;
};

}  // namespace sublet::sim
