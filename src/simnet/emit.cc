#include "simnet/emit.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "abuse/asn_lists.h"
#include "asgraph/as2org.h"
#include "asgraph/as_rel.h"
#include "mrt/rib_file.h"
#include "geo/geodb.h"
#include "whoisdb/write.h"
#include "rpki/archive.h"
#include "transfers/transfer_log.h"
#include "util/csv.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/strings.h"

namespace sublet::sim {

namespace fs = std::filesystem;

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  return out;
}

// ------------------------------------------------------------- WHOIS ------

/// Status vocabulary per RIR and portability (paper §2.1).
std::string status_text(whois::Rir rir, bool portable, bool legacy,
                        bool assignment) {
  if (legacy) return rir == whois::Rir::kArin ? "legacy" : "LEGACY";
  switch (rir) {
    case whois::Rir::kRipe:
    case whois::Rir::kAfrinic:
      if (portable) return "ALLOCATED PA";
      return assignment ? "ASSIGNED PA" : "SUB-ALLOCATED PA";
    case whois::Rir::kApnic:
      if (portable) return "ALLOCATED PORTABLE";
      return assignment ? "ASSIGNED NON-PORTABLE" : "ALLOCATED NON-PORTABLE";
    case whois::Rir::kArin:
      if (portable) return "Direct Allocation";
      return assignment ? "Reassignment" : "Reallocation";
    case whois::Rir::kLacnic:
      if (portable) return "allocated";
      return assignment ? "reassigned" : "reallocated";
  }
  return "?";
}

/// ARIN's managing handle is the OrgID itself; other RIRs use mnt-by.
/// For ARIN/LACNIC the join handle goes into the block's org_id field and
/// the maintainer list stays empty (whois::write_block then emits the
/// right dialect fields).
whois::InetBlock make_block(whois::Rir rir, const AddrRange& range,
                            std::string netname, std::string status,
                            const std::string& org_id,
                            const std::string& maintainer,
                            std::string country) {
  whois::InetBlock block;
  block.rir = rir;
  block.range = range;
  block.netname = std::move(netname);
  block.status = std::move(status);
  block.country = std::move(country);
  if (rir == whois::Rir::kArin || rir == whois::Rir::kLacnic) {
    block.org_id = org_id;
  } else {
    block.org_id = org_id;
    if (!maintainer.empty()) block.maintainers = {maintainer};
  }
  return block;
}

void emit_whois(const World& world, const std::string& dir, Rng& rng) {
  fs::create_directories(dir + "/whois");
  for (whois::Rir rir : whois::kAllRirs) {
    std::string path = dir + "/whois/" + to_lower(rir_name(rir)) + ".db";
    auto out = open_out(path);
    whois::write_db_header(out, rir);

    // Organisations.
    for (const SimOrg& org : world.orgs) {
      if (org.rir != rir) continue;
      whois::OrgRec rec;
      rec.id = org.id;
      rec.name = org.name;
      rec.maintainers = {org.maintainer};
      rec.country = org.country;
      rec.rir = rir;
      whois::write_org(out, rec);
    }

    // AS numbers.
    for (const SimAs& as : world.ases) {
      if (as.rir != rir) continue;
      const SimOrg& org = world.org_of(as);
      whois::AutNumRec rec;
      rec.asn = as.asn;
      rec.org_id = org.id;
      rec.maintainers = {org.maintainer};
      rec.rir = rir;
      whois::write_autnum(out, rec, org.name);
    }

    // Roots.
    for (std::size_t i = 0; i < world.roots.size(); ++i) {
      const SimRoot& root = world.roots[i];
      if (root.rir != rir) continue;
      const SimOrg& holder = world.orgs[root.holder_org];
      auto block = make_block(
          rir, AddrRange{root.prefix.first(), root.prefix.last()},
          "NET-ROOT-" + std::to_string(i),
          status_text(rir, /*portable=*/true, root.legacy, false), holder.id,
          holder.maintainer, holder.country);
      whois::write_block(out, block, holder.name);
    }

    // Leaves.
    for (std::size_t i = 0; i < world.leaves.size(); ++i) {
      const SimLeaf& leaf = world.leaves[i];
      if (leaf.rir != rir) continue;
      const SimRoot& root = world.roots[leaf.root_index];
      const SimOrg& holder = world.orgs[root.holder_org];
      // The org field: customer org when known, broker org when the lease
      // is brokered (ARIN/LACNIC join brokers through OrgID/ownerid).
      std::string org_id;
      if (!leaf.org_id.empty()) {
        org_id = leaf.org_id;
      } else if (leaf.facilitator_org) {
        org_id = world.orgs[*leaf.facilitator_org].id;
      }
      auto block = make_block(
          rir, AddrRange{leaf.prefix.first(), leaf.prefix.last()},
          "NET-LEAF-" + std::to_string(i),
          status_text(rir, /*portable=*/false, leaf.legacy,
                      /*assignment=*/i % 3 != 0),
          org_id, leaf.maintainer, holder.country);
      whois::write_block(out, block, org_id.empty() ? holder.name : org_id);
    }

    // Hyper-specific noise (>/24 internal-infrastructure records).
    std::vector<const SimRoot*> rir_roots;
    for (const SimRoot& root : world.roots) {
      if (root.rir == rir) rir_roots.push_back(&root);
    }
    int noise = rir_roots.empty()
                    ? 0
                    : world.config.scaled(world.config.hyper_specific_noise);
    for (int i = 0; i < noise; ++i) {
      const SimRoot& root = *rir_roots[rng.next_below(rir_roots.size())];
      std::uint32_t base = root.prefix.network().value() +
                           static_cast<std::uint32_t>(
                               rng.next_below(root.prefix.size() - 16));
      base &= ~0xFu;  // /28 aligned
      const SimOrg& holder = world.orgs[root.holder_org];
      auto block = make_block(
          rir, AddrRange{Ipv4Addr(base), Ipv4Addr(base + 15)},
          "NET-INFRA-" + std::to_string(i), status_text(rir, false, false, true),
          rir == whois::Rir::kArin || rir == whois::Rir::kLacnic ? holder.id
                                                                 : "",
          holder.maintainer, holder.country);
      whois::write_block(out, block, holder.name);
    }
  }
}

// --------------------------------------------------------------- BGP ------

/// Index of ASes by number (World::find_as is a linear scan).
std::unordered_map<std::uint32_t, const SimAs*> as_index(const World& world) {
  std::unordered_map<std::uint32_t, const SimAs*> out;
  out.reserve(world.ases.size());
  for (const SimAs& as : world.ases) out.emplace(as.asn.value(), &as);
  return out;
}

/// Provider chain from `origin` up to (and including) its tier-1.
std::vector<Asn> chain_to_tier1(
    const std::unordered_map<std::uint32_t, const SimAs*>& index,
    Asn origin) {
  std::vector<Asn> chain = {origin};
  auto it = index.find(origin.value());
  const SimAs* as = it == index.end() ? nullptr : it->second;
  int guard = 0;
  while (as && as->provider && ++guard < 16) {
    chain.push_back(*as->provider);
    auto next = index.find(as->provider->value());
    as = next == index.end() ? nullptr : next->second;
  }
  return chain;  // origin first, tier1 last
}

struct RouteEntryPlan {
  Prefix prefix;
  Asn origin;
  bool late = false;  ///< only present in the day-15 snapshot
  std::optional<Asn> second_origin;  ///< MOAS: a second concurrent origin
  bool as_set = false;  ///< announced as an aggregate with a trailing AS_SET
};

void emit_bgp(const World& world, const std::string& dir, Rng& rng) {
  fs::create_directories(dir + "/bgp");
  const WorldConfig& cfg = world.config;

  // The routed table: lit roots (exact or aggregate), active leaves,
  // background.
  std::vector<RouteEntryPlan> routes;
  for (const SimRoot& root : world.roots) {
    if (root.originated && !root.aggregated_announcement) {
      routes.push_back({root.prefix, root.holder_asn});
    }
  }
  for (const BackgroundPrefix& agg : world.aggregates) {
    routes.push_back({agg.prefix, agg.origin});
  }
  for (const SimLeaf& leaf : world.leaves) {
    if (leaf.origin) {
      routes.push_back({leaf.prefix, *leaf.origin, leaf.late_origination});
    }
  }
  // Background prefixes pick up routing-table noise: a small share are
  // MOAS (anycast / multi-site origination), some as AS_SET aggregates.
  std::vector<Asn> moas_pool;
  for (const SimAs& as : world.ases) {
    if (as.tier == AsTier::kTransit || as.tier == AsTier::kStub) {
      moas_pool.push_back(as.asn);
    }
  }
  for (const BackgroundPrefix& bg : world.background) {
    RouteEntryPlan plan{bg.prefix, bg.origin};
    if (!moas_pool.empty() && rng.chance(cfg.p_moas)) {
      plan.second_origin = moas_pool[rng.next_below(moas_pool.size())];
      plan.as_set = rng.chance(0.4);
    }
    routes.push_back(plan);
  }

  // Cache provider chains per origin.
  auto index = as_index(world);
  std::map<std::uint32_t, std::vector<Asn>> chains;
  auto chain_of = [&](Asn origin) -> const std::vector<Asn>& {
    auto [it, inserted] = chains.try_emplace(origin.value());
    if (inserted) it->second = chain_to_tier1(index, origin);
    return it->second;
  };

  // Tier-1 peers: each collector picks peers_per_collector of them.
  std::vector<Asn> tier1s;
  for (const SimAs& as : world.ases) {
    if (as.tier == AsTier::kTier1) tier1s.push_back(as.asn);
  }

  // Two snapshots per collector: day 1 (t0) excludes late-originating
  // leases, day 15 (t1) has everything — the paper's observation window.
  for (int c = 0; c < cfg.collectors; ++c) {
    for (int day = 0; day < 2; ++day) {
      mrt::RibSnapshot snap;
      snap.timestamp = cfg.snapshot_time +
                       static_cast<std::uint32_t>(c) * 900 +
                       static_cast<std::uint32_t>(day) * 14 * 86400;
      snap.peer_table.collector_bgp_id =
          Ipv4Addr(0xC6336401u + static_cast<std::uint32_t>(c));
      snap.peer_table.view_name = "collector-" + std::to_string(c) + ".sim";
      std::vector<Asn> peers;
      for (int k = 0; k < cfg.peers_per_collector; ++k) {
        Asn peer =
            tier1s[(static_cast<std::size_t>(c) *
                        static_cast<std::size_t>(cfg.peers_per_collector) +
                    static_cast<std::size_t>(k)) %
                   tier1s.size()];
        peers.push_back(peer);
        snap.peer_table.peers.push_back(
            {Ipv4Addr(0x0A000000u + static_cast<std::uint32_t>(peer.value())),
             Ipv4Addr(0xCB007100u + static_cast<std::uint32_t>(k)),
             peer});
      }

      for (const RouteEntryPlan& route : routes) {
        if (day == 0 && route.late) continue;
        // Collector dropout is a property of the (collector, prefix) pair:
        // a vantage point that cannot see a prefix on day 1 cannot see it
        // on day 15 either (stable per-collector blind spots).
        std::uint64_t blind = world.config.seed ^
                              (static_cast<std::uint64_t>(c + 1) << 40) ^
                              ((static_cast<std::uint64_t>(
                                    route.prefix.network().value())
                                << 8) |
                               static_cast<std::uint64_t>(
                                   route.prefix.length()));
        if (static_cast<double>(splitmix64(blind)) /
                static_cast<double>(UINT64_MAX) >
            cfg.collector_visibility) {
          continue;
        }
        mrt::RibPrefixRecord rec;
        rec.prefix = route.prefix;
        for (std::size_t k = 0; k < peers.size(); ++k) {
          // MOAS: alternate the origin different peers see.
          Asn origin = route.origin;
          if (route.second_origin && !route.as_set && k % 2 == 1) {
            origin = *route.second_origin;
          }
          const std::vector<Asn>& chain = chain_of(origin);
          mrt::RibEntry entry;
          entry.peer_index = static_cast<std::uint16_t>(k);
          entry.originated_time = snap.timestamp - 86400;
          entry.attributes.origin = mrt::BgpOrigin::kIgp;
          mrt::AsPathSegment seg;
          seg.type = mrt::AsPathSegmentType::kAsSequence;
          seg.asns.push_back(peers[k]);
          // Chain is origin..tier1; walk down from the top. Skip the
          // origin-side tier1 if it is the peer itself.
          for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
            if (*it == peers[k]) continue;
            seg.asns.push_back(*it);
          }
          if (route.as_set && route.second_origin) {
            // Aggregate: the sequence stops at the aggregator and the
            // origins ride in a trailing AS_SET.
            seg.asns.pop_back();
            entry.attributes.atomic_aggregate = true;
            mrt::AsPathSegment set;
            set.type = mrt::AsPathSegmentType::kAsSet;
            set.asns = {origin, *route.second_origin};
            entry.attributes.as_path.segments.push_back(std::move(seg));
            entry.attributes.as_path.segments.push_back(std::move(set));
          } else {
            // Traffic engineering: some origins prepend themselves.
            if (rng.chance(cfg.p_prepending)) {
              int extra = static_cast<int>(rng.next_in(1, 2));
              for (int r = 0; r < extra; ++r) seg.asns.push_back(origin);
            }
            entry.attributes.as_path.segments.push_back(std::move(seg));
          }
          entry.attributes.next_hop =
              Ipv4Addr(0xCB007100u + static_cast<std::uint32_t>(k));
          rec.entries.push_back(std::move(entry));
        }
        snap.records.push_back(std::move(rec));
      }
      std::sort(
          snap.records.begin(), snap.records.end(),
          [](const mrt::RibPrefixRecord& a, const mrt::RibPrefixRecord& b) {
            return a.prefix < b.prefix;
          });
      mrt::write_rib_file(dir + "/bgp/rib." + std::to_string(c) + ".t" +
                              std::to_string(day) + ".mrt",
                          snap);
    }
  }
}

// -------------------------------------------------------------- RPKI ------

void emit_rpki(const World& world, const std::string& dir, Rng& rng) {
  const WorldConfig& cfg = world.config;
  rpki::VrpSet vrps;
  auto index = as_index(world);

  for (const SimLeaf& leaf : world.leaves) {
    if (!leaf.origin) continue;
    double p_roa;
    if (leaf.truth == TruthCategory::kLeased) {
      auto it = index.find(leaf.origin->value());
      const SimAs* as = it == index.end() ? nullptr : it->second;
      bool drop = as && as->drop_listed;
      p_roa = drop ? cfg.p_roa_leased_drop : cfg.p_roa_leased_clean;
    } else {
      p_roa = cfg.p_roa_background;
    }
    if (rng.chance(p_roa)) {
      vrps.add({leaf.prefix, leaf.prefix.length(), *leaf.origin});
    }
  }
  for (const SimRoot& root : world.roots) {
    if (root.originated && rng.chance(0.5)) {
      vrps.add({root.prefix, root.prefix.length(), root.holder_asn});
    }
  }
  for (const BackgroundPrefix& bg : world.background) {
    if (rng.chance(cfg.p_roa_background)) {
      vrps.add({bg.prefix, bg.prefix.length(), bg.origin});
    }
  }

  rpki::RpkiArchive archive;
  archive.add_snapshot(cfg.snapshot_time, vrps.clone());
  archive.add_snapshot(cfg.snapshot_time + 14 * 86400, std::move(vrps));
  archive.save_directory(dir + "/rpki");
}

// ---------------------------------------------------------- AS graph ------

void emit_asgraph(const World& world, const std::string& dir, Rng& rng) {
  fs::create_directories(dir + "/asgraph");
  const WorldConfig& cfg = world.config;

  // Observed relationships: true provider edges with dropout, plus the
  // tier-1 mesh (always observed — those edges are massively visible).
  asgraph::AsRelationships observed;
  std::vector<Asn> tier1s;
  for (const SimAs& as : world.ases) {
    if (as.tier == AsTier::kTier1) tier1s.push_back(as.asn);
    if (as.provider && !rng.chance(cfg.p_asrel_edge_dropped)) {
      observed.add_p2c(*as.provider, as.asn);
    }
  }
  for (std::size_t i = 0; i < tier1s.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1s.size(); ++j) {
      observed.add_p2p(tier1s[i], tier1s[j]);
    }
  }
  auto rel_out = open_out(dir + "/asgraph/as-rel.txt");
  observed.write(rel_out);

  asgraph::As2Org as2org;
  for (const SimAs& as : world.ases) {
    const SimOrg& org = as.as2org_override
                            ? world.orgs[*as.as2org_override]
                            : world.org_of(as);
    as2org.add_mapping(as.asn, org.id, "AS-" + std::to_string(as.asn.value()));
  }
  for (const SimOrg& org : world.orgs) {
    as2org.add_org(org.id, org.name, org.country);
  }
  auto org_out = open_out(dir + "/asgraph/as2org.txt");
  as2org.write(org_out);
}

// -------------------------------------------------------------- lists -----

void emit_lists(const World& world, const std::string& dir) {
  fs::create_directories(dir + "/lists");

  abuse::AsnSet drop, hijackers;
  for (const SimAs& as : world.ases) {
    if (as.drop_listed) drop.add(as.asn);
    if (as.hijacker) hijackers.add(as.asn);
  }
  {
    auto out = open_out(dir + "/lists/asn-drop.json");
    drop.write_drop(out);
  }
  {
    auto out = open_out(dir + "/lists/serial-hijackers.txt");
    hijackers.write_plain(out);
  }

  for (whois::Rir rir : whois::kAllRirs) {
    std::vector<std::string> names;
    for (const SimOrg& org : world.orgs) {
      if (org.rir == rir && org.on_broker_list) {
        names.push_back(org.listed_name.empty() ? org.name : org.listed_name);
      }
    }
    if (names.empty()) continue;
    // A few registered brokers have no database presence (the paper's 30
    // unmatched RIPE brokers).
    names.push_back("Phantom Address Partners LLC");
    names.push_back("Unregistered IP Ventures Ltd");
    auto out = open_out(dir + "/lists/brokers-" +
                        to_lower(rir_name(rir)) + ".txt");
    out << "# registered IP brokers (" << rir_name(rir) << ")\n";
    for (const std::string& name : names) out << name << "\n";
  }

  // Transfer log: blocks that changed hands before the measurement.
  transfers::TransferLog transfer_log;
  for (const SimRoot& root : world.roots) {
    if (!root.transferred) continue;
    transfer_log.add({root.transfer_date, root.rir, root.prefix,
                      root.transfer_from_org,
                      world.orgs[root.holder_org].id,
                      transfers::TransferType::kMarket});
  }
  {
    auto out = open_out(dir + "/lists/transfers.txt");
    transfer_log.write(out);
  }

  auto isp_out = open_out(dir + "/lists/eval-isp-orgs.txt");
  isp_out << "# negative-label ISP organisations: <RIR>|<org-id>\n";
  for (const auto& [rir, org_id] : world.eval_isp_orgs) {
    isp_out << rir_name(rir) << '|' << org_id << '\n';
  }
}

// ---------------------------------------------------------------- geo -----

void emit_geo(const World& world, const std::string& dir, Rng& rng) {
  fs::create_directories(dir + "/geo");
  const WorldConfig& cfg = world.config;
  auto index = as_index(world);

  // A noise pool of plausible country codes.
  static constexpr std::array<const char*, 10> kNoise = {
      "US", "BR", "DE", "JP", "ZA", "IN", "FR", "KR", "MX", "NL"};

  auto country_of_asn = [&](Asn asn) -> std::string {
    auto it = index.find(asn.value());
    if (it == index.end()) return {};
    return world.orgs[it->second->org_index].country;
  };

  std::vector<geo::GeoDb> databases;
  for (int p = 0; p < cfg.geo_providers; ++p) {
    databases.emplace_back("provider-" + std::to_string(p));
  }

  auto place = [&](const Prefix& prefix, const std::string& registry_cc,
                   const std::string& user_cc) {
    for (geo::GeoDb& db : databases) {
      std::string answer;
      if (rng.chance(cfg.p_geo_noise)) {
        answer = kNoise[rng.next_below(kNoise.size())];
      } else if (!user_cc.empty() && user_cc != registry_cc &&
                 rng.chance(cfg.p_geo_updated)) {
        answer = user_cc;  // this provider tracked where the lessee is
      } else {
        answer = registry_cc;
      }
      if (!answer.empty()) db.add(prefix, answer);
    }
  };

  for (const SimLeaf& leaf : world.leaves) {
    const SimOrg& holder = world.orgs[world.roots[leaf.root_index].holder_org];
    std::string user_cc;
    if (leaf.truth == TruthCategory::kLeased && leaf.origin) {
      user_cc = country_of_asn(*leaf.origin);
    }
    place(leaf.prefix, holder.country, user_cc);
  }
  for (const BackgroundPrefix& bg : world.background) {
    place(bg.prefix, country_of_asn(bg.origin), {});
  }

  for (const geo::GeoDb& db : databases) {
    auto out = open_out(dir + "/geo/" + db.provider() + ".csv");
    db.write_csv(out);
  }
}

// -------------------------------------------------------------- truth -----

void emit_truth(const World& world, const std::string& dir) {
  fs::create_directories(dir + "/truth");
  auto out = open_out(dir + "/truth/leases.csv");
  CsvWriter csv(out);
  csv.write_row({"prefix", "rir", "truth", "is_leased", "active",
                 "holder_org", "facilitator_org", "origin_asn",
                 "eval_negative", "legacy", "late"});
  for (const SimLeaf& leaf : world.leaves) {
    const SimRoot& root = world.roots[leaf.root_index];
    csv.write_row({
        leaf.prefix.to_string(),
        std::string(rir_name(leaf.rir)),
        std::string(truth_name(leaf.truth)),
        leaf.truth == TruthCategory::kLeased ? "1" : "0",
        leaf.lease_active ? "1" : "0",
        world.orgs[root.holder_org].id,
        leaf.facilitator_org ? world.orgs[*leaf.facilitator_org].id : "",
        leaf.origin ? std::to_string(leaf.origin->value()) : "",
        leaf.eval_negative ? "1" : "0",
        leaf.legacy ? "1" : "0",
        leaf.late_origination ? "1" : "0",
    });
  }
}

}  // namespace

void emit_world(const World& world, const std::string& dir,
                unsigned threads) {
  fs::create_directories(dir);
  Rng rng(world.config.seed ^ 0xE317AA5ED1CEull);
  Rng whois_rng = rng.fork(1);
  Rng bgp_rng = rng.fork(2);
  Rng rpki_rng = rng.fork(3);
  Rng graph_rng = rng.fork(4);
  Rng geo_rng = rng.fork(5);
  // Each stage consumes only the (const) world plus its own forked RNG and
  // writes its own subdirectory, so the fan-out changes nothing about the
  // emitted bytes. With one thread the tasks run inline in this order.
  par::TaskGroup group(threads);
  group.run([&] { emit_whois(world, dir, whois_rng); });
  group.run([&] { emit_bgp(world, dir, bgp_rng); });
  group.run([&] { emit_rpki(world, dir, rpki_rng); });
  group.run([&] { emit_asgraph(world, dir, graph_rng); });
  group.run([&] { emit_lists(world, dir); });
  group.run([&] { emit_geo(world, dir, geo_rng); });
  group.run([&] { emit_truth(world, dir); });
  group.wait();
}

}  // namespace sublet::sim
