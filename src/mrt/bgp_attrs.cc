#include "mrt/bgp_attrs.h"

#include "mrt/bytes.h"

namespace sublet::mrt {

namespace {
constexpr std::uint8_t kFlagOptional = 0x80;
constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagExtendedLength = 0x10;
}  // namespace

std::vector<Asn> AsPath::origin_asns() const {
  if (segments.empty()) return {};
  const AsPathSegment& last = segments.back();
  if (last.asns.empty()) return {};
  if (last.type == AsPathSegmentType::kAsSet) return last.asns;
  return {last.asns.back()};
}

std::vector<Asn> AsPath::flatten() const {
  std::vector<Asn> out;
  for (const auto& seg : segments) {
    out.insert(out.end(), seg.asns.begin(), seg.asns.end());
  }
  return out;
}

namespace {

Expected<AsPath> decode_as_path(std::span<const std::uint8_t> payload,
                                bool four_byte_as) {
  AsPath path;
  BufReader r(payload);
  while (r.remaining() > 0) {
    AsPathSegment seg;
    std::uint8_t type = r.u8();
    std::uint8_t count = r.u8();
    if (type != 1 && type != 2) {
      return fail("bad AS_PATH segment type " + std::to_string(type));
    }
    seg.type = static_cast<AsPathSegmentType>(type);
    for (int i = 0; i < count; ++i) {
      std::uint32_t asn = four_byte_as ? r.u32() : r.u16();
      seg.asns.push_back(Asn(asn));
    }
    if (!r.ok()) return fail("truncated AS_PATH segment");
    path.segments.push_back(std::move(seg));
  }
  return path;
}

}  // namespace

Expected<PathAttributes> decode_path_attributes(
    std::span<const std::uint8_t> data, bool four_byte_as) {
  PathAttributes attrs;
  BufReader r(data);
  while (r.remaining() > 0) {
    std::uint8_t flags = r.u8();
    std::uint8_t type = r.u8();
    std::size_t length =
        (flags & kFlagExtendedLength) ? r.u16() : r.u8();
    auto payload = r.bytes(length);
    if (!r.ok()) {
      return fail("truncated attribute type " + std::to_string(type));
    }
    BufReader p(payload);
    switch (static_cast<AttrType>(type)) {
      case AttrType::kOrigin: {
        std::uint8_t v = p.u8();
        if (!p.ok() || v > 2) return fail("bad ORIGIN attribute");
        attrs.origin = static_cast<BgpOrigin>(v);
        break;
      }
      case AttrType::kAsPath: {
        auto path = decode_as_path(payload, four_byte_as);
        if (!path) return path.error();
        attrs.as_path = std::move(*path);
        break;
      }
      case AttrType::kAs4Path: {
        // RFC 6793: when the main path is 2-byte, AS4_PATH carries the true
        // 4-byte path; it overrides for origin extraction. Always 4-byte.
        auto path = decode_as_path(payload, /*four_byte_as=*/true);
        if (!path) return path.error();
        // Prefer AS4_PATH only when the 2-byte path contains AS_TRANS
        // placeholders; a simple and safe policy is: if present and the
        // current path is 2-byte-decoded, take AS4_PATH.
        if (!four_byte_as) attrs.as_path = std::move(*path);
        break;
      }
      case AttrType::kNextHop: {
        if (payload.size() != 4) return fail("bad NEXT_HOP length");
        attrs.next_hop = Ipv4Addr(p.u32());
        break;
      }
      case AttrType::kMed: {
        if (payload.size() != 4) return fail("bad MED length");
        attrs.med = p.u32();
        break;
      }
      case AttrType::kLocalPref: {
        if (payload.size() != 4) return fail("bad LOCAL_PREF length");
        attrs.local_pref = p.u32();
        break;
      }
      case AttrType::kAtomicAggregate: {
        if (!payload.empty()) return fail("bad ATOMIC_AGGREGATE length");
        attrs.atomic_aggregate = true;
        break;
      }
      case AttrType::kAggregator:
      case AttrType::kAs4Aggregator: {
        bool four = four_byte_as ||
                    static_cast<AttrType>(type) == AttrType::kAs4Aggregator;
        std::uint32_t asn = four ? p.u32() : p.u16();
        std::uint32_t ip = p.u32();
        if (!p.ok()) return fail("bad AGGREGATOR length");
        attrs.aggregator = {Asn(asn), Ipv4Addr(ip)};
        break;
      }
      case AttrType::kCommunities: {
        if (payload.size() % 4 != 0) return fail("bad COMMUNITIES length");
        while (p.remaining() >= 4) attrs.communities.push_back(p.u32());
        break;
      }
      default: {
        attrs.unrecognized.push_back(
            {flags, type,
             std::vector<std::uint8_t>(payload.begin(), payload.end())});
        break;
      }
    }
  }
  return attrs;
}

namespace {

void encode_one(BufWriter& w, std::uint8_t flags, AttrType type,
                const std::vector<std::uint8_t>& payload) {
  bool extended = payload.size() > 255;
  flags &= static_cast<std::uint8_t>(~kFlagExtendedLength);  // recomputed here
  if (extended) flags |= kFlagExtendedLength;
  w.u8(flags);
  w.u8(static_cast<std::uint8_t>(type));
  if (extended) {
    w.u16(static_cast<std::uint16_t>(payload.size()));
  } else {
    w.u8(static_cast<std::uint8_t>(payload.size()));
  }
  w.bytes(payload);
}

std::vector<std::uint8_t> encode_as_path(const AsPath& path,
                                         bool four_byte_as) {
  BufWriter w;
  for (const auto& seg : path.segments) {
    w.u8(static_cast<std::uint8_t>(seg.type));
    w.u8(static_cast<std::uint8_t>(seg.asns.size()));
    for (Asn asn : seg.asns) {
      if (four_byte_as) {
        w.u32(asn.value());
      } else {
        w.u16(static_cast<std::uint16_t>(asn.value()));
      }
    }
  }
  return w.take();
}

}  // namespace

std::vector<std::uint8_t> encode_path_attributes(const PathAttributes& attrs,
                                                 bool four_byte_as) {
  BufWriter w;
  if (attrs.origin) {
    encode_one(w, kFlagTransitive, AttrType::kOrigin,
               {static_cast<std::uint8_t>(*attrs.origin)});
  }
  if (!attrs.as_path.empty() || attrs.origin) {
    encode_one(w, kFlagTransitive, AttrType::kAsPath,
               encode_as_path(attrs.as_path, four_byte_as));
  }
  if (attrs.next_hop) {
    BufWriter p;
    p.u32(attrs.next_hop->value());
    encode_one(w, kFlagTransitive, AttrType::kNextHop, p.take());
  }
  if (attrs.med) {
    BufWriter p;
    p.u32(*attrs.med);
    encode_one(w, kFlagOptional, AttrType::kMed, p.take());
  }
  if (attrs.local_pref) {
    BufWriter p;
    p.u32(*attrs.local_pref);
    encode_one(w, kFlagTransitive, AttrType::kLocalPref, p.take());
  }
  if (attrs.atomic_aggregate) {
    encode_one(w, kFlagTransitive, AttrType::kAtomicAggregate, {});
  }
  if (attrs.aggregator) {
    BufWriter p;
    if (four_byte_as) {
      p.u32(attrs.aggregator->first.value());
    } else {
      p.u16(static_cast<std::uint16_t>(attrs.aggregator->first.value()));
    }
    p.u32(attrs.aggregator->second.value());
    encode_one(w, kFlagOptional | kFlagTransitive, AttrType::kAggregator,
               p.take());
  }
  if (!attrs.communities.empty()) {
    BufWriter p;
    for (std::uint32_t c : attrs.communities) p.u32(c);
    encode_one(w, kFlagOptional | kFlagTransitive, AttrType::kCommunities,
               p.take());
  }
  for (const auto& raw : attrs.unrecognized) {
    encode_one(w, raw.flags, static_cast<AttrType>(raw.type), raw.payload);
  }
  return w.take();
}

}  // namespace sublet::mrt
