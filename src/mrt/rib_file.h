// Whole-file RIB dump reader/writer.
//
// A RouteViews/RIS "rib" file = one PEER_INDEX_TABLE record followed by
// RIB_IPV4_UNICAST records in prefix order. These helpers move a whole
// snapshot between disk and memory; bgp::Rib consumes the result.
#pragma once

#include <string>
#include <vector>

#include "mrt/table_dump_v2.h"
#include "util/expected.h"

namespace sublet::mrt {

/// A decoded RIB dump: the peer table plus every prefix record.
struct RibSnapshot {
  std::uint32_t timestamp = 0;  ///< snapshot time (same on all records)
  PeerIndexTable peer_table;
  std::vector<RibPrefixRecord> records;
};

/// Serialize a snapshot to `path` as a standards-conformant TABLE_DUMP_V2
/// file. Sequence numbers are (re)assigned in record order. Throws
/// std::runtime_error on I/O failure.
void write_rib_file(const std::string& path, const RibSnapshot& snapshot);

/// Parse an entire RIB file. Unknown record types/subtypes are skipped;
/// structural damage yields an Error.
Expected<RibSnapshot> read_rib_file(const std::string& path);

}  // namespace sublet::mrt
