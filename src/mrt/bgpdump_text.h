// bgpdump -m text format ("machine-readable" one-line-per-entry output).
//
// Nearly every measurement pipeline — including the paper's — consumes
// RouteViews/RIS data through `bgpdump -m`, whose line format is:
//
//   TABLE_DUMP2|<ts>|B|<peer_ip>|<peer_as>|<prefix>|<as_path>|IGP|...
//   BGP4MP|<ts>|A|<peer_ip>|<peer_as>|<prefix>|<as_path>|IGP|...
//   BGP4MP|<ts>|W|<peer_ip>|<peer_as>|<prefix>
//
// AS paths are space-separated; AS_SETs appear as "{1,2,3}". This module
// renders our decoded MRT structures into that format and parses it back,
// so sublet interoperates with existing bgpdump-based tooling in both
// directions.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "mrt/rib_file.h"
#include "util/expected.h"

namespace sublet::mrt {

/// One parsed bgpdump line.
struct BgpdumpEntry {
  enum class Kind { kRibEntry, kAnnounce, kWithdraw };
  Kind kind = Kind::kRibEntry;
  std::uint32_t timestamp = 0;
  Ipv4Addr peer_ip;
  Asn peer_asn;
  Prefix prefix;
  AsPath as_path;  ///< empty for withdrawals

  /// Origin ASes per AsPath::origin_asns().
  std::vector<Asn> origins() const { return as_path.origin_asns(); }
};

/// Render an AS path in bgpdump notation ("3356 8851 {64500,64501}").
std::string format_as_path(const AsPath& path);

/// Parse bgpdump AS-path notation.
Expected<AsPath> parse_as_path_text(std::string_view text);

/// Parse one line. IPv6 lines and unhandled record types yield an Error
/// with `message` starting with "skip:" so callers can ignore them cheaply.
Expected<BgpdumpEntry> parse_bgpdump_line(std::string_view line);

/// Render a whole RIB snapshot as TABLE_DUMP2 "B" lines.
void write_bgpdump_text(std::ostream& out, const RibSnapshot& snapshot);

}  // namespace sublet::mrt
