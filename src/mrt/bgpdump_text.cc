#include "mrt/bgpdump_text.h"

#include <ostream>

#include "util/strings.h"

namespace sublet::mrt {

std::string format_as_path(const AsPath& path) {
  std::string out;
  for (const AsPathSegment& seg : path.segments) {
    if (seg.type == AsPathSegmentType::kAsSet) {
      if (!out.empty()) out += ' ';
      out += '{';
      for (std::size_t i = 0; i < seg.asns.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(seg.asns[i].value());
      }
      out += '}';
    } else {
      for (Asn asn : seg.asns) {
        if (!out.empty()) out += ' ';
        out += std::to_string(asn.value());
      }
    }
  }
  return out;
}

Expected<AsPath> parse_as_path_text(std::string_view text) {
  AsPath path;
  AsPathSegment sequence;
  for (std::string_view token : split_ws(text)) {
    if (token.front() == '{') {
      if (token.back() != '}' || token.size() < 3) {
        return fail("bad AS_SET token '" + std::string(token) + "'");
      }
      if (!sequence.asns.empty()) {
        path.segments.push_back(std::move(sequence));
        sequence = {};
      }
      AsPathSegment set;
      set.type = AsPathSegmentType::kAsSet;
      for (std::string_view member :
           split(token.substr(1, token.size() - 2), ',')) {
        auto asn = Asn::parse(member);
        if (!asn) {
          return fail("bad AS_SET member '" + std::string(member) + "'");
        }
        set.asns.push_back(*asn);
      }
      path.segments.push_back(std::move(set));
    } else {
      auto asn = Asn::parse(token);
      if (!asn) return fail("bad AS '" + std::string(token) + "'");
      sequence.asns.push_back(*asn);
    }
  }
  if (!sequence.asns.empty()) path.segments.push_back(std::move(sequence));
  return path;
}

Expected<BgpdumpEntry> parse_bgpdump_line(std::string_view line) {
  auto fields = split(trim(line), '|');
  if (fields.size() < 3) return fail("skip: short line");
  std::string_view record = fields[0];
  if (record != "TABLE_DUMP2" && record != "BGP4MP" &&
      record != "TABLE_DUMP") {
    return fail("skip: record type " + std::string(record));
  }
  auto ts = parse_u32(fields[1]);
  if (!ts) return fail("bad timestamp");
  std::string_view kind_text = fields[2];

  BgpdumpEntry entry;
  entry.timestamp = *ts;
  if (kind_text == "B") {
    entry.kind = BgpdumpEntry::Kind::kRibEntry;
  } else if (kind_text == "A") {
    entry.kind = BgpdumpEntry::Kind::kAnnounce;
  } else if (kind_text == "W") {
    entry.kind = BgpdumpEntry::Kind::kWithdraw;
  } else {
    return fail("skip: entry kind " + std::string(kind_text));
  }

  std::size_t needed =
      entry.kind == BgpdumpEntry::Kind::kWithdraw ? 6u : 7u;
  if (fields.size() < needed) return fail("truncated line");

  auto peer_ip = Ipv4Addr::parse(fields[3]);
  if (!peer_ip) return fail("skip: non-IPv4 peer");  // IPv6 collector peer
  auto peer_asn = Asn::parse(fields[4]);
  if (!peer_asn) return fail("bad peer AS");
  auto prefix = Prefix::parse(fields[5]);
  if (!prefix) {
    // IPv6 NLRI comes through the same files; skip rather than error.
    return fail("skip: non-IPv4 prefix " + std::string(fields[5]));
  }
  entry.peer_ip = *peer_ip;
  entry.peer_asn = *peer_asn;
  entry.prefix = *prefix;

  if (entry.kind != BgpdumpEntry::Kind::kWithdraw) {
    auto path = parse_as_path_text(fields[6]);
    if (!path) return path.error();
    entry.as_path = std::move(*path);
  }
  return entry;
}

void write_bgpdump_text(std::ostream& out, const RibSnapshot& snapshot) {
  for (const RibPrefixRecord& rec : snapshot.records) {
    for (const RibEntry& rib_entry : rec.entries) {
      const Peer* peer =
          rib_entry.peer_index < snapshot.peer_table.peers.size()
              ? &snapshot.peer_table.peers[rib_entry.peer_index]
              : nullptr;
      out << "TABLE_DUMP2|" << snapshot.timestamp << "|B|"
          << (peer ? peer->address.to_string() : "0.0.0.0") << '|'
          << (peer ? peer->asn.value() : 0) << '|' << rec.prefix.to_string()
          << '|' << format_as_path(rib_entry.attributes.as_path) << "|IGP|"
          << (rib_entry.attributes.next_hop
                  ? rib_entry.attributes.next_hop->to_string()
                  : "0.0.0.0")
          << "|0|0||NAG||\n";
    }
  }
}

}  // namespace sublet::mrt
