// BGP path-attribute encoding/decoding (RFC 4271 §4.3, RFC 6793 for 4-byte
// AS support) as embedded in MRT TABLE_DUMP_V2 RIB entries.
//
// The leasing pipeline only *needs* the origin AS (last AS_PATH element),
// but we decode the full attribute set so the module is reusable and so
// corrupt attributes are detected rather than silently skipped.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netbase/asn.h"
#include "netbase/ipv4.h"
#include "util/expected.h"

namespace sublet::mrt {

enum class BgpOrigin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

enum class AsPathSegmentType : std::uint8_t { kAsSet = 1, kAsSequence = 2 };

struct AsPathSegment {
  AsPathSegmentType type = AsPathSegmentType::kAsSequence;
  std::vector<Asn> asns;
};

struct AsPath {
  std::vector<AsPathSegment> segments;

  /// The origin ASes of this path: the single last AS of a trailing
  /// AS_SEQUENCE, or every member of a trailing AS_SET (aggregated routes).
  /// Empty path -> empty vector.
  std::vector<Asn> origin_asns() const;

  /// Flattened AS list (sets expanded in place), for display.
  std::vector<Asn> flatten() const;

  bool empty() const { return segments.empty(); }
};

/// Decoded attribute set. Unrecognized attributes are preserved raw so a
/// decode → encode round trip is lossless.
struct PathAttributes {
  std::optional<BgpOrigin> origin;
  AsPath as_path;
  std::optional<Ipv4Addr> next_hop;
  std::optional<std::uint32_t> med;
  std::optional<std::uint32_t> local_pref;
  bool atomic_aggregate = false;
  std::optional<std::pair<Asn, Ipv4Addr>> aggregator;
  std::vector<std::uint32_t> communities;

  struct RawAttribute {
    std::uint8_t flags = 0;
    std::uint8_t type = 0;
    std::vector<std::uint8_t> payload;
  };
  std::vector<RawAttribute> unrecognized;
};

/// Attribute type codes we understand.
enum class AttrType : std::uint8_t {
  kOrigin = 1,
  kAsPath = 2,
  kNextHop = 3,
  kMed = 4,
  kLocalPref = 5,
  kAtomicAggregate = 6,
  kAggregator = 7,
  kCommunities = 8,
  kAs4Path = 17,
  kAs4Aggregator = 18,
};

/// Decode a BGP attribute blob. `four_byte_as` selects the AS_PATH word
/// size: TABLE_DUMP_V2 always uses 4-byte ASes (RFC 6396 §4.3.4); classic
/// BGP4MP without 4-byte capability uses 2 and carries AS4_PATH alongside.
Expected<PathAttributes> decode_path_attributes(
    std::span<const std::uint8_t> data, bool four_byte_as = true);

/// Encode back to wire form. AS_PATH words follow `four_byte_as`.
std::vector<std::uint8_t> encode_path_attributes(const PathAttributes& attrs,
                                                 bool four_byte_as = true);

}  // namespace sublet::mrt
