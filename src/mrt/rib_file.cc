#include "mrt/rib_file.h"

#include <fstream>
#include <stdexcept>

#include "mrt/mrt.h"
#include "util/log.h"

namespace sublet::mrt {

void write_rib_file(const std::string& path, const RibSnapshot& snapshot) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  MrtWriter writer(out);

  writer.write(snapshot.timestamp, MrtType::kTableDumpV2,
               static_cast<std::uint16_t>(TableDumpV2Subtype::kPeerIndexTable),
               encode_peer_index_table(snapshot.peer_table));

  std::uint32_t sequence = 0;
  for (const RibPrefixRecord& rec : snapshot.records) {
    RibPrefixRecord numbered = rec;
    numbered.sequence = sequence++;
    writer.write(snapshot.timestamp, MrtType::kTableDumpV2,
                 static_cast<std::uint16_t>(TableDumpV2Subtype::kRibIpv4Unicast),
                 encode_rib_ipv4_unicast(numbered));
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

Expected<RibSnapshot> read_rib_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open " + path);
  MrtReader reader(in, path);

  RibSnapshot snapshot;
  bool saw_peer_table = false;
  while (auto rec = reader.next()) {
    snapshot.timestamp = rec->timestamp;
    if (rec->is(MrtType::kTableDumpV2, TableDumpV2Subtype::kPeerIndexTable)) {
      auto pit = decode_peer_index_table(rec->body);
      if (!pit) return pit.error();
      snapshot.peer_table = std::move(*pit);
      saw_peer_table = true;
    } else if (rec->is(MrtType::kTableDumpV2,
                       TableDumpV2Subtype::kRibIpv4Unicast)) {
      auto rib = decode_rib_ipv4_unicast(rec->body);
      if (!rib) return rib.error();
      snapshot.records.push_back(std::move(*rib));
    } else {
      SUBLET_LOG(kDebug) << "skipping MRT record type " << rec->type << "/"
                         << rec->subtype << " in " << path;
    }
  }
  if (reader.error()) return *reader.error();
  if (!saw_peer_table) return fail("no PEER_INDEX_TABLE in " + path);
  return snapshot;
}

}  // namespace sublet::mrt
