#include "mrt/table_dump_v2.h"

#include "mrt/bytes.h"

namespace sublet::mrt {

namespace {
// Peer Type flag bits (RFC 6396 §4.3.1).
constexpr std::uint8_t kPeerTypeIpv6 = 0x01;
constexpr std::uint8_t kPeerTypeAs4 = 0x02;
}  // namespace

void encode_nlri_prefix(BufWriter& w, const Prefix& prefix) {
  w.u8(static_cast<std::uint8_t>(prefix.length()));
  int octets = (prefix.length() + 7) / 8;
  std::uint32_t net = prefix.network().value();
  for (int i = 0; i < octets; ++i) {
    w.u8(static_cast<std::uint8_t>(net >> (24 - 8 * i)));
  }
}

Expected<Prefix> decode_nlri_prefix(BufReader& r) {
  std::uint8_t len = r.u8();
  if (!r.ok() || len > 32) return fail("bad NLRI prefix length");
  int octets = (len + 7) / 8;
  std::uint32_t net = 0;
  auto raw = r.bytes(static_cast<std::size_t>(octets));
  if (!r.ok()) return fail("truncated NLRI prefix");
  for (int i = 0; i < octets; ++i) {
    net |= static_cast<std::uint32_t>(raw[static_cast<std::size_t>(i)])
           << (24 - 8 * i);
  }
  auto prefix = Prefix::make(Ipv4Addr(net), len);
  if (!prefix || prefix->network().value() != net) {
    return fail("NLRI prefix has nonzero host bits");
  }
  return *prefix;
}

Expected<PeerIndexTable> decode_peer_index_table(
    std::span<const std::uint8_t> body) {
  BufReader r(body);
  PeerIndexTable pit;
  pit.collector_bgp_id = Ipv4Addr(r.u32());
  std::uint16_t name_len = r.u16();
  pit.view_name = r.string(name_len);
  std::uint16_t peer_count = r.u16();
  if (!r.ok()) return fail("truncated PEER_INDEX_TABLE header");
  pit.peers.reserve(peer_count);
  for (int i = 0; i < peer_count; ++i) {
    std::uint8_t type = r.u8();
    Peer peer;
    peer.bgp_id = Ipv4Addr(r.u32());
    if (type & kPeerTypeIpv6) {
      // We only generate IPv4 peers, but tolerate IPv6 on read by skipping
      // the 16-byte address (its routes are indexed identically).
      r.skip(16);
    } else {
      peer.address = Ipv4Addr(r.u32());
    }
    peer.asn = Asn((type & kPeerTypeAs4) ? r.u32() : r.u16());
    if (!r.ok()) {
      return fail("truncated peer entry " + std::to_string(i));
    }
    pit.peers.push_back(peer);
  }
  return pit;
}

std::vector<std::uint8_t> encode_peer_index_table(const PeerIndexTable& pit) {
  BufWriter w;
  w.u32(pit.collector_bgp_id.value());
  w.u16(static_cast<std::uint16_t>(pit.view_name.size()));
  w.string(pit.view_name);
  w.u16(static_cast<std::uint16_t>(pit.peers.size()));
  for (const Peer& peer : pit.peers) {
    w.u8(kPeerTypeAs4);  // IPv4 address, 4-byte AS
    w.u32(peer.bgp_id.value());
    w.u32(peer.address.value());
    w.u32(peer.asn.value());
  }
  return w.take();
}

Expected<RibPrefixRecord> decode_rib_ipv4_unicast(
    std::span<const std::uint8_t> body) {
  BufReader r(body);
  RibPrefixRecord rec;
  rec.sequence = r.u32();
  auto prefix = decode_nlri_prefix(r);
  if (!prefix) return prefix.error();
  rec.prefix = *prefix;
  std::uint16_t entry_count = r.u16();
  if (!r.ok()) return fail("truncated RIB record header");
  rec.entries.reserve(entry_count);
  for (int i = 0; i < entry_count; ++i) {
    RibEntry entry;
    entry.peer_index = r.u16();
    entry.originated_time = r.u32();
    std::uint16_t attr_len = r.u16();
    auto attr_bytes = r.bytes(attr_len);
    if (!r.ok()) return fail("truncated RIB entry " + std::to_string(i));
    // TABLE_DUMP_V2 always encodes AS_PATH with 4-byte ASes (RFC 6396).
    auto attrs = decode_path_attributes(attr_bytes, /*four_byte_as=*/true);
    if (!attrs) return attrs.error();
    entry.attributes = std::move(*attrs);
    rec.entries.push_back(std::move(entry));
  }
  return rec;
}

std::vector<std::uint8_t> encode_rib_ipv4_unicast(const RibPrefixRecord& rec) {
  BufWriter w;
  w.u32(rec.sequence);
  encode_nlri_prefix(w, rec.prefix);
  w.u16(static_cast<std::uint16_t>(rec.entries.size()));
  for (const RibEntry& entry : rec.entries) {
    w.u16(entry.peer_index);
    w.u32(entry.originated_time);
    auto attrs = encode_path_attributes(entry.attributes, /*four_byte_as=*/true);
    w.u16(static_cast<std::uint16_t>(attrs.size()));
    w.bytes(attrs);
  }
  return w.take();
}

}  // namespace sublet::mrt
