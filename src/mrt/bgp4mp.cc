#include "mrt/bgp4mp.h"

#include "mrt/bytes.h"
#include "mrt/table_dump_v2.h"  // NLRI prefix helpers

namespace sublet::mrt {

namespace {
constexpr std::uint16_t kAfiIpv4 = 1;
constexpr std::size_t kBgpHeaderSize = 19;  // marker(16) + length(2) + type(1)

Expected<std::vector<Prefix>> decode_nlri_list(
    std::span<const std::uint8_t> data) {
  std::vector<Prefix> out;
  BufReader r(data);
  while (r.remaining() > 0) {
    auto prefix = decode_nlri_prefix(r);
    if (!prefix) return prefix.error();
    out.push_back(*prefix);
  }
  return out;
}
}  // namespace

Expected<Bgp4mpMessage> decode_bgp4mp(std::span<const std::uint8_t> body,
                                      Bgp4mpSubtype subtype) {
  BufReader r(body);
  Bgp4mpMessage msg;
  bool as4 = subtype == Bgp4mpSubtype::kMessageAs4;
  msg.peer_asn = Asn(as4 ? r.u32() : r.u16());
  msg.local_asn = Asn(as4 ? r.u32() : r.u16());
  msg.interface_index = r.u16();
  std::uint16_t afi = r.u16();
  if (!r.ok()) return fail("truncated BGP4MP header");
  if (afi != kAfiIpv4) return fail("unsupported BGP4MP AFI");
  msg.peer_ip = Ipv4Addr(r.u32());
  msg.local_ip = Ipv4Addr(r.u32());

  // Wrapped BGP message.
  auto marker = r.bytes(16);
  std::uint16_t length = r.u16();
  std::uint8_t type = r.u8();
  if (!r.ok()) return fail("truncated BGP message header");
  (void)marker;  // all-ones per RFC 4271; not validated (collectors vary)
  if (length < kBgpHeaderSize) return fail("bad BGP message length");
  std::size_t payload_len = length - kBgpHeaderSize;
  auto payload = r.bytes(payload_len);
  if (!r.ok()) return fail("truncated BGP message payload");
  msg.type = static_cast<BgpMessageType>(type);
  if (msg.type != BgpMessageType::kUpdate) return msg;

  BufReader u(payload);
  std::uint16_t withdrawn_len = u.u16();
  auto withdrawn_bytes = u.bytes(withdrawn_len);
  if (!u.ok()) return fail("truncated withdrawn routes");
  auto withdrawn = decode_nlri_list(withdrawn_bytes);
  if (!withdrawn) return withdrawn.error();
  msg.withdrawn = std::move(*withdrawn);

  std::uint16_t attr_len = u.u16();
  auto attr_bytes = u.bytes(attr_len);
  if (!u.ok()) return fail("truncated path attributes");
  auto attrs = decode_path_attributes(attr_bytes, /*four_byte_as=*/as4);
  if (!attrs) return attrs.error();
  msg.attributes = std::move(*attrs);

  auto announced = decode_nlri_list(
      std::span<const std::uint8_t>(payload.data() + u.position(),
                                    payload.size() - u.position()));
  if (!announced) return announced.error();
  msg.announced = std::move(*announced);
  return msg;
}

std::vector<std::uint8_t> encode_bgp4mp(const Bgp4mpMessage& message,
                                        Bgp4mpSubtype subtype) {
  bool as4 = subtype == Bgp4mpSubtype::kMessageAs4;
  BufWriter w;
  if (as4) {
    w.u32(message.peer_asn.value());
    w.u32(message.local_asn.value());
  } else {
    w.u16(static_cast<std::uint16_t>(message.peer_asn.value()));
    w.u16(static_cast<std::uint16_t>(message.local_asn.value()));
  }
  w.u16(message.interface_index);
  w.u16(kAfiIpv4);
  w.u32(message.peer_ip.value());
  w.u32(message.local_ip.value());

  // BGP message: marker + length (patched) + type + payload.
  std::size_t bgp_start = w.size();
  for (int i = 0; i < 16; ++i) w.u8(0xFF);
  std::size_t length_offset = w.size();
  w.u16(0);  // length placeholder
  w.u8(static_cast<std::uint8_t>(message.type));

  if (message.type == BgpMessageType::kUpdate) {
    BufWriter withdrawn;
    for (const Prefix& prefix : message.withdrawn) {
      encode_nlri_prefix(withdrawn, prefix);
    }
    w.u16(static_cast<std::uint16_t>(withdrawn.size()));
    w.bytes(withdrawn.data());

    auto attrs = encode_path_attributes(message.attributes, as4);
    w.u16(static_cast<std::uint16_t>(attrs.size()));
    w.bytes(attrs);

    for (const Prefix& prefix : message.announced) {
      encode_nlri_prefix(w, prefix);
    }
  }
  w.patch_u16(length_offset,
              static_cast<std::uint16_t>(w.size() - bgp_start));
  return w.take();
}

}  // namespace sublet::mrt
