// Big-endian byte-buffer reader/writer for wire formats (MRT, BGP).
//
// All multi-byte integers in MRT and BGP are network byte order. Reader is
// bounds-checked and never reads past the view; callers detect truncation
// via ok()/fail() rather than exceptions so a corrupt record aborts only
// that record, not the whole dump.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace sublet::mrt {

/// Bounds-checked big-endian reader over a byte span (non-owning).
class BufReader {
 public:
  explicit BufReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return !failed_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

  std::uint8_t u8() { return read_int<std::uint8_t>(); }
  std::uint16_t u16() { return read_int<std::uint16_t>(); }
  std::uint32_t u32() { return read_int<std::uint32_t>(); }
  std::uint64_t u64() { return read_int<std::uint64_t>(); }

  /// Read `n` raw bytes; returns empty span and sets failure on underrun.
  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (failed_ || remaining() < n) {
      failed_ = true;
      return {};
    }
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::string string(std::size_t n) {
    auto b = bytes(n);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

  void skip(std::size_t n) { (void)bytes(n); }

 private:
  template <typename T>
  T read_int() {
    auto b = bytes(sizeof(T));
    if (b.size() != sizeof(T)) return T{};
    T value = 0;
    for (std::uint8_t byte : b) value = static_cast<T>((value << 8) | byte);
    return value;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Appending big-endian writer.
class BufWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_int(v); }
  void u32(std::uint32_t v) { append_int(v); }
  void u64(std::uint64_t v) { append_int(v); }

  void bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void string(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Overwrite a previously written big-endian u16 at `offset` (used for
  /// back-patching length fields).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }
  void patch_u32(std::size_t offset, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_[offset + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (24 - 8 * i));
    }
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  template <typename T>
  void append_int(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(
          static_cast<std::uint8_t>(v >> (8 * (sizeof(T) - 1 - i))));
    }
  }

  std::vector<std::uint8_t> buf_;
};

}  // namespace sublet::mrt
