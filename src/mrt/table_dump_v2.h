// TABLE_DUMP_V2 subtype decoding/encoding — RFC 6396 §4.3.
//
// A RIB dump file is a PEER_INDEX_TABLE record followed by one
// RIB_IPV4_UNICAST record per prefix, each holding the prefix and one RIB
// entry per peer that carried a route for it. This is the exact layout
// RouteViews/RIS publish and what bgpdump post-processes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mrt/bgp_attrs.h"
#include "mrt/bytes.h"
#include "mrt/mrt.h"
#include "netbase/asn.h"
#include "netbase/ipv4.h"
#include "util/expected.h"

namespace sublet::mrt {

/// One vantage-point peer of the collector.
struct Peer {
  Ipv4Addr bgp_id;
  Ipv4Addr address;  ///< IPv4 peers only in this build
  Asn asn;
};

/// PEER_INDEX_TABLE (subtype 1).
struct PeerIndexTable {
  Ipv4Addr collector_bgp_id;
  std::string view_name;
  std::vector<Peer> peers;
};

/// One (peer, attributes) pair inside a RIB record.
struct RibEntry {
  std::uint16_t peer_index = 0;
  std::uint32_t originated_time = 0;
  PathAttributes attributes;
};

/// RIB_IPV4_UNICAST (subtype 2).
struct RibPrefixRecord {
  std::uint32_t sequence = 0;
  Prefix prefix;
  std::vector<RibEntry> entries;
};

Expected<PeerIndexTable> decode_peer_index_table(
    std::span<const std::uint8_t> body);
std::vector<std::uint8_t> encode_peer_index_table(const PeerIndexTable& pit);

Expected<RibPrefixRecord> decode_rib_ipv4_unicast(
    std::span<const std::uint8_t> body);
std::vector<std::uint8_t> encode_rib_ipv4_unicast(const RibPrefixRecord& rec);

/// NLRI helpers shared with BGP4MP: prefix encoded as length byte + the
/// minimal number of prefix octets.
void encode_nlri_prefix(BufWriter& w, const Prefix& prefix);
Expected<Prefix> decode_nlri_prefix(BufReader& r);

}  // namespace sublet::mrt
