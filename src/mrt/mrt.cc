#include "mrt/mrt.h"

#include <istream>
#include <ostream>

#include "mrt/bytes.h"

namespace sublet::mrt {

namespace {
constexpr std::size_t kHeaderSize = 12;  // ts(4) + type(2) + subtype(2) + len(4)
// Guard against absurd length fields from corrupt files: real TABLE_DUMP_V2
// records are well under this even for large peer tables.
constexpr std::uint32_t kMaxBody = 64 * 1024 * 1024;
}  // namespace

MrtReader::MrtReader(std::istream& in, std::string source)
    : in_(in), source_(std::move(source)) {}

std::optional<MrtRecord> MrtReader::next() {
  if (error_) return std::nullopt;

  std::uint8_t header[kHeaderSize];
  in_.read(reinterpret_cast<char*>(header), kHeaderSize);
  if (in_.gcount() == 0 && in_.eof()) return std::nullopt;  // clean EOF
  if (static_cast<std::size_t>(in_.gcount()) != kHeaderSize) {
    error_ = fail("truncated MRT header after record " +
                      std::to_string(count_),
                  source_);
    return std::nullopt;
  }

  BufReader r(header);
  MrtRecord rec;
  rec.timestamp = r.u32();
  rec.type = r.u16();
  rec.subtype = r.u16();
  std::uint32_t length = r.u32();
  if (length > kMaxBody) {
    error_ = fail("implausible MRT record length " + std::to_string(length),
                  source_);
    return std::nullopt;
  }

  rec.body.resize(length);
  in_.read(reinterpret_cast<char*>(rec.body.data()), length);
  if (static_cast<std::size_t>(in_.gcount()) != length) {
    error_ = fail("truncated MRT body in record " + std::to_string(count_),
                  source_);
    return std::nullopt;
  }
  ++count_;
  return rec;
}

MrtWriter::MrtWriter(std::ostream& out) : out_(out) {}

void MrtWriter::write(std::uint32_t timestamp, MrtType type,
                      std::uint16_t subtype,
                      std::span<const std::uint8_t> body) {
  BufWriter w;
  w.u32(timestamp);
  w.u16(static_cast<std::uint16_t>(type));
  w.u16(subtype);
  w.u32(static_cast<std::uint32_t>(body.size()));
  out_.write(reinterpret_cast<const char*>(w.data().data()),
             static_cast<std::streamsize>(w.size()));
  out_.write(reinterpret_cast<const char*>(body.data()),
             static_cast<std::streamsize>(body.size()));
  ++count_;
}

}  // namespace sublet::mrt
