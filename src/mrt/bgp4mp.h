// BGP4MP message decoding/encoding — RFC 6396 §4.4.
//
// RouteViews/RIS "updates" files are MRT streams of BGP4MP_MESSAGE(_AS4)
// records, each wrapping a raw BGP message (RFC 4271). The pipeline's
// 15-day observation window and the Figure 3 history reconstruction can be
// driven from updates instead of (or in addition to) RIB snapshots.
//
// Scope: IPv4 unicast UPDATE messages (announcements + withdrawals) and
// tolerant pass-through of KEEPALIVE/OPEN/NOTIFICATION.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mrt/bgp_attrs.h"
#include "mrt/mrt.h"
#include "netbase/asn.h"
#include "netbase/ipv4.h"
#include "util/expected.h"

namespace sublet::mrt {

/// BGP4MP subtypes we handle (RFC 6396 §4.4, RFC 8050 not included).
enum class Bgp4mpSubtype : std::uint16_t {
  kMessage = 1,      ///< 2-byte peer/local AS fields
  kMessageAs4 = 4,   ///< 4-byte AS fields
};

/// BGP message types (RFC 4271 §4.1).
enum class BgpMessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
};

/// One decoded BGP4MP record.
struct Bgp4mpMessage {
  Asn peer_asn;
  Asn local_asn;
  std::uint16_t interface_index = 0;
  Ipv4Addr peer_ip;
  Ipv4Addr local_ip;
  BgpMessageType type = BgpMessageType::kKeepalive;

  // UPDATE payload (empty for other message types).
  std::vector<Prefix> withdrawn;
  PathAttributes attributes;
  std::vector<Prefix> announced;

  bool is_update() const { return type == BgpMessageType::kUpdate; }
};

/// Decode a BGP4MP(_AS4) record body. The subtype determines the AS field
/// width; the wrapped BGP message's AS_PATH width follows it too (AS4
/// sessions carry 4-byte paths).
Expected<Bgp4mpMessage> decode_bgp4mp(std::span<const std::uint8_t> body,
                                      Bgp4mpSubtype subtype);

/// Encode back to an MRT record body (IPv4 AFI only).
std::vector<std::uint8_t> encode_bgp4mp(const Bgp4mpMessage& message,
                                        Bgp4mpSubtype subtype);

}  // namespace sublet::mrt
