// MRT (Multi-Threaded Routing Toolkit) record framing — RFC 6396.
//
// RouteViews and RIPE RIS publish RIB snapshots as MRT TABLE_DUMP_V2 files.
// This header covers the 16-byte common header and record-level streaming;
// table_dump_v2.h decodes the subtypes the pipeline needs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/expected.h"

namespace sublet::mrt {

/// MRT record types (RFC 6396 §4). Only the ones we produce/consume.
enum class MrtType : std::uint16_t {
  kTableDumpV2 = 13,
  kBgp4mp = 16,
};

/// TABLE_DUMP_V2 subtypes (RFC 6396 §4.3).
enum class TableDumpV2Subtype : std::uint16_t {
  kPeerIndexTable = 1,
  kRibIpv4Unicast = 2,
  kRibIpv6Unicast = 4,
  kRibGeneric = 6,
};

/// One framed record: common header fields + raw body.
struct MrtRecord {
  std::uint32_t timestamp = 0;  ///< seconds since epoch
  std::uint16_t type = 0;
  std::uint16_t subtype = 0;
  std::vector<std::uint8_t> body;

  bool is(MrtType t, TableDumpV2Subtype s) const {
    return type == static_cast<std::uint16_t>(t) &&
           subtype == static_cast<std::uint16_t>(s);
  }
};

/// Streaming MRT reader. Iterates records from a binary istream; a record
/// with a bad header or truncated body yields an Error and stops (MRT has
/// no resynchronization marker, so damage is not recoverable mid-file).
class MrtReader {
 public:
  explicit MrtReader(std::istream& in, std::string source = {});

  /// Next record; nullopt at clean EOF. Truncation mid-record is reported
  /// through error() and also ends iteration.
  std::optional<MrtRecord> next();

  const std::optional<Error>& error() const { return error_; }
  std::size_t records_read() const { return count_; }

 private:
  std::istream& in_;
  std::string source_;
  std::optional<Error> error_;
  std::size_t count_ = 0;
};

/// MRT writer: frames bodies with the common header.
class MrtWriter {
 public:
  explicit MrtWriter(std::ostream& out);

  void write(std::uint32_t timestamp, MrtType type, std::uint16_t subtype,
             std::span<const std::uint8_t> body);

  std::size_t records_written() const { return count_; }

 private:
  std::ostream& out_;
  std::size_t count_ = 0;
};

}  // namespace sublet::mrt
