#include "obs/trace.h"

#include <time.h>

#include <fstream>

#include "util/jsonw.h"

namespace sublet::obs {

namespace {

/// Innermost open span on this thread; children read it to find their
/// parent, ScopedSpan saves/restores it around its lifetime.
thread_local SpanId t_current_span = 0;

std::uint64_t thread_cpu_ns() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

SpanId Tracer::current() { return t_current_span; }

void Tracer::commit(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(record));
}

std::uint32_t Tracer::thread_ordinal() {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, fresh] = thread_ordinals_.try_emplace(
      std::this_thread::get_id(),
      static_cast<std::uint32_t>(thread_ordinals_.size()));
  (void)fresh;
  return it->second;
}

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

std::string Tracer::chrome_trace_json() const {
  std::vector<SpanRecord> spans = this->spans();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ',';
    first = false;
    JsonWriter event;
    event.begin_object();
    event.key("name").value(span.name);
    event.key("ph").value("X");
    event.key("pid").value(std::uint64_t{1});
    event.key("tid").value(static_cast<std::uint64_t>(span.tid));
    event.key("ts").value(span.start_us);
    event.key("dur").value(span.wall_ns / 1000);
    event.key("args");
    event.begin_object();
    event.key("id").value(span.id);
    event.key("parent").value(span.parent);
    event.key("cpu_ns").value(span.cpu_ns);
    if (span.bytes != 0) event.key("bytes").value(span.bytes);
    if (span.records != 0) event.key("records").value(span.records);
    event.end_object();
    event.end_object();
    out += event.take();
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << chrome_trace_json() << '\n';
  return static_cast<bool>(out.flush());
}

ScopedSpan::ScopedSpan(std::string_view name) {
  begin(name, t_current_span);
}

ScopedSpan::ScopedSpan(std::string_view name, SpanId parent) {
  begin(name, parent);
}

void ScopedSpan::begin(std::string_view name, SpanId parent) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  id_ = tracer.next_id();
  parent_ = parent;
  name_ = name;
  saved_current_ = t_current_span;
  restore_current_ = true;
  t_current_span = id_;
  cpu_start_ns_ = thread_cpu_ns();
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (id_ == 0) return;
  auto end = std::chrono::steady_clock::now();
  std::uint64_t cpu_end_ns = thread_cpu_ns();
  if (restore_current_) t_current_span = saved_current_;
  Tracer& tracer = Tracer::global();
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.name = std::move(name_);
  record.tid = tracer.thread_ordinal();
  record.start_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(start_ -
                                                            tracer.epoch_)
          .count());
  record.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count());
  record.cpu_ns =
      cpu_end_ns >= cpu_start_ns_ ? cpu_end_ns - cpu_start_ns_ : 0;
  record.bytes = bytes_;
  record.records = records_;
  tracer.commit(std::move(record));
}

}  // namespace sublet::obs
