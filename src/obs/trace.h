// Pipeline stage tracing (docs/OBSERVABILITY.md).
//
// RAII spans measure wall time, thread CPU time, and optional bytes/records
// throughput for each pipeline stage. The tracer is disabled by default;
// when disabled a ScopedSpan construction is one relaxed atomic load and no
// allocation, so instrumentation can stay in place permanently.
//
//   obs::ScopedSpan span("whois.parse");
//   span.add_bytes(text.size());
//   span.add_records(records);
//
// Spans on the same thread nest automatically (a thread-local tracks the
// innermost open span). Work fanned out to a thread pool nests explicitly:
// capture Tracer::current() before dispatch and hand it to the chunk span —
//
//   obs::SpanId parent = obs::Tracer::current();
//   pool.run([parent, ...] {
//     obs::ScopedSpan chunk("whois.parse.chunk", parent);
//     ...
//   });
//
// Completed spans accumulate in Tracer::global(); write_chrome_trace()
// renders them as a Chrome trace-viewer file (chrome://tracing, Perfetto).
// `sublet --trace-json out.json <command>` wires this up end to end.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace sublet::obs {

/// Identifies a completed or open span; 0 means "no span".
using SpanId = std::uint64_t;

/// A finished span as stored by the tracer.
struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;  ///< 0 = top-level
  std::string name;
  std::uint32_t tid = 0;      ///< small per-thread ordinal, not an OS tid
  std::uint64_t start_us = 0; ///< microseconds since tracer epoch
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;   ///< CLOCK_THREAD_CPUTIME_ID delta
  std::uint64_t bytes = 0;
  std::uint64_t records = 0;
};

class ScopedSpan;

class Tracer {
 public:
  static Tracer& global();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// The calling thread's innermost open span (0 if none). Capture this
  /// before fanning out to a pool so worker spans can name their parent.
  static SpanId current();

  /// Completed spans, in completion order.
  std::vector<SpanRecord> spans() const;
  std::size_t span_count() const;
  void clear();

  /// Chrome trace-viewer JSON ({"traceEvents":[...]}, "X" complete events,
  /// timestamps/durations in microseconds).
  std::string chrome_trace_json() const;
  bool write_chrome_trace(const std::string& path) const;

 private:
  friend class ScopedSpan;

  SpanId next_id() {
    return next_.fetch_add(1, std::memory_order_relaxed);
  }
  void commit(SpanRecord record);
  std::uint32_t thread_ordinal();

  std::atomic<bool> enabled_{false};
  std::atomic<SpanId> next_{1};
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::unordered_map<std::thread::id, std::uint32_t> thread_ordinals_;
};

/// RAII span on Tracer::global(). Inert (and free) when tracing is off.
class ScopedSpan {
 public:
  /// Nested under the calling thread's current span, if any.
  explicit ScopedSpan(std::string_view name);
  /// Nested under an explicit parent (cross-thread nesting).
  ScopedSpan(std::string_view name, SpanId parent);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// 0 when tracing was disabled at construction.
  SpanId id() const { return id_; }
  bool active() const { return id_ != 0; }

  void add_bytes(std::uint64_t n) { bytes_ += n; }
  void add_records(std::uint64_t n) { records_ += n; }

 private:
  void begin(std::string_view name, SpanId parent);

  SpanId id_ = 0;
  SpanId parent_ = 0;
  SpanId saved_current_ = 0;
  bool restore_current_ = false;
  std::string name_;
  std::chrono::steady_clock::time_point start_{};
  std::uint64_t cpu_start_ns_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
};

}  // namespace sublet::obs
