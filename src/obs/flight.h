// Per-request flight recorder for the serving stack
// (docs/OBSERVABILITY.md).
//
// One recorder per event-loop shard. The shard thread is the only writer;
// INSPECT handlers on other threads read concurrently, so every shared
// word is an atomic and the ring uses a per-slot seqlock (version odd =
// write in progress, readers retry). Recording a request is a handful of
// relaxed stores into a preallocated slot — no locks, no allocation — so
// the recorder can stay on at production QPS (BM_FlightRecorderOverhead
// prices it under 2% of the serve path).
//
// Three views of the same stream of FlightRecords:
//  - the **ring**: the last `ring_capacity` requests, each with a
//    monotonic read→parse→engine→write stage breakdown captured at the
//    server's state-machine boundaries;
//  - the **slow-request log**: the top-K worst requests by total latency
//    over `slow_threshold_ns`, kept with the request text (`detail`).
//    Only requests already past the threshold pay the mutex + copy, so
//    the log is off the fast path by construction;
//  - **exemplars**: for each power-of-two latency bucket (the same
//    bucketing as obs::Histogram), the sequence number of the most
//    recent request that landed there — the link from a histogram
//    spike to a concrete recorded request.
//
// set_enabled(false) makes record() a single relaxed load + untaken
// branch (the recorder keeps, but stops adding, data) — the knob the
// overhead bench toggles.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sublet::obs {

/// One recorded request. The ring stores it packed into one cache line
/// (stage/total ns saturate at u32, start rounds to µs); this unpacked
/// form is what callers fill and readers get back. Stage semantics
/// (docs/OBSERVABILITY.md):
///   read_ns   — time the complete request sat buffered between the recv
///               that delivered its last byte and dispatch (includes
///               fairness parking);
///   parse_ns  — request tokenization / frame decoding;
///   engine_ns — verb execution (argument parsing + engine lookups +
///               response rendering);
///   write_ns  — response time in the output buffer up to the flush
///               attempt that followed it.
struct FlightRecord {
  std::uint64_t seq = 0;       ///< recorder-assigned, 1-based; 0 = empty
  std::uint64_t start_ns = 0;  ///< arrival, ns on the caller's clock base
  std::uint64_t read_ns = 0;
  std::uint64_t parse_ns = 0;
  std::uint64_t engine_ns = 0;
  std::uint64_t write_ns = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint32_t epoch = 0;      ///< 0 = current engine
  std::uint32_t peer_addr = 0;  ///< IPv4, host byte order
  std::int32_t fd = -1;
  std::uint16_t peer_port = 0;
  std::uint8_t verb = 0;    ///< caller-defined verb code
  std::uint8_t status = 0;  ///< 0 = ok, 1 = error response
};
static_assert(sizeof(FlightRecord) % 8 == 0);

/// A slow-log entry: the record plus the (truncated) request text.
struct SlowFlight {
  FlightRecord record;
  std::string detail;
};

/// One histogram-bucket exemplar: the latest recorded request whose
/// total latency fell in the bucket with inclusive upper bound `le_ns`.
struct FlightExemplar {
  std::uint64_t le_ns = 0;
  std::uint64_t seq = 0;
  std::uint64_t total_ns = 0;
};

class FlightRecorder {
 public:
  struct Options {
    /// Ring slots (rounded up to a power of two). 0 keeps the recorder
    /// permanently inert.
    std::size_t ring_capacity = 256;
    /// Worst requests kept with detail text.
    std::size_t slow_capacity = 16;
    /// total_ns at or above this enters the slow log.
    std::uint64_t slow_threshold_ns = 1'000'000;
    bool enabled = true;
  };

  explicit FlightRecorder(Options options);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on && !slots_.empty(), std::memory_order_relaxed);
  }

  std::uint64_t slow_threshold_ns() const { return threshold_ns_; }
  std::size_t ring_capacity() const { return slots_.size(); }
  std::size_t slow_capacity() const { return slow_capacity_; }

  /// Requests recorded since construction (ring overwrites, so this can
  /// exceed ring_capacity).
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Record one request; `record.seq` is assigned here. `detail` is
  /// copied only if the request enters the slow log (callers may pass an
  /// empty view when they know the request is fast). Returns the assigned
  /// sequence number, or 0 when disabled.
  std::uint64_t record(const FlightRecord& record, std::string_view detail);

  /// Warm the slot the next record() will write. The ring cycles through
  /// more memory than stays cache-resident at production sizes, so that
  /// line is cold by request time; issuing the prefetch when the request
  /// starts being read overlaps the miss with the request's own work
  /// (prefetching at record() time is too early — the line is evicted
  /// again before the shard's next request arrives).
  void prefetch_next() const {
#if defined(__GNUC__) || defined(__clang__)
    if (slots_.empty()) return;
    const std::uint64_t seq = next_.load(std::memory_order_relaxed) + 1;
    __builtin_prefetch(&slots_[static_cast<std::size_t>(seq) & mask_], 1, 3);
#endif
  }

  /// The newest `max_records` ring entries, oldest first. Slots a writer
  /// is mid-update on (or that got lapped during the copy) are skipped.
  std::vector<FlightRecord> tail(std::size_t max_records) const;

  /// The slow log, slowest first.
  std::vector<SlowFlight> slow_log() const;

  /// Exemplars for every latency bucket that has one, ascending by bound.
  std::vector<FlightExemplar> exemplars() const;

  /// Drop everything (tests/benches only; not thread-safe vs writers).
  void clear();

 private:
  // Seqlock slot, packed to exactly one cache line: the ring cycles
  // through more memory than stays cache-resident at production ring
  // sizes, so every record() write misses — one line halves that cost
  // versus storing FlightRecord verbatim (two lines). word 0 is the
  // record's seq and doubles as the seqlock version: 0 while the writer
  // is mid-copy, and since a slot's seq strictly increases lap over lap
  // an unchanged nonzero seq proves a consistent read (no ABA). Payload
  // words are relaxed atomics so concurrent reads are race-free
  // (TSAN-clean) and at worst skipped, never torn. Packing rounds the
  // ring's start_ns to µs and saturates stage/total ns at ~4.29s
  // (u32); the slow log keeps the full-precision FlightRecord.
  static constexpr std::size_t kWords = 8;
  struct alignas(64) Slot {
    std::array<std::atomic<std::uint64_t>, kWords> words{};
  };
  static std::array<std::uint64_t, kWords> pack(const FlightRecord& rec);
  static FlightRecord unpack(const std::array<std::uint64_t, kWords>& words);

  std::atomic<bool> enabled_{false};
  std::uint64_t threshold_ns_ = 0;
  std::size_t slow_capacity_ = 0;

  std::atomic<std::uint64_t> next_{0};  ///< seqs issued; head = next_
  std::vector<Slot> slots_;             ///< power-of-two sized
  std::size_t mask_ = 0;

  // Exemplars: obs::Histogram's power-of-two buckets (65 of them);
  // [bucket] holds the seq + total_ns of the latest request that landed
  // there. seq 0 = bucket never hit.
  static constexpr std::size_t kBuckets = 65;
  std::array<std::atomic<std::uint64_t>, kBuckets> exemplar_seq_{};
  std::array<std::atomic<std::uint64_t>, kBuckets> exemplar_ns_{};

  // Slow log: only requests already past the threshold take this mutex.
  mutable std::mutex slow_mu_;
  std::vector<SlowFlight> slow_;  ///< unordered; min replaced at capacity
};

}  // namespace sublet::obs
