#include "obs/flight.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace sublet::obs {

namespace {

/// Same bucketing as obs::Histogram: bucket 0 holds zeros, bucket b>0
/// holds [2^(b-1), 2^b).
std::size_t bucket_of(std::uint64_t v) {
  return v == 0 ? 0
               : static_cast<std::size_t>(64 - std::countl_zero(v));
}

std::uint64_t bucket_upper_bound(std::size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

std::uint64_t sat32(std::uint64_t v) {
  return std::min<std::uint64_t>(v, 0xFFFFFFFFu);
}

}  // namespace

std::array<std::uint64_t, FlightRecorder::kWords> FlightRecorder::pack(
    const FlightRecord& rec) {
  return {
      rec.seq,
      rec.start_ns / 1000,  // µs: 8 bytes of sub-µs arrival don't earn a line
      sat32(rec.read_ns) | sat32(rec.parse_ns) << 32,
      sat32(rec.engine_ns) | sat32(rec.write_ns) << 32,
      sat32(rec.total_ns) | sat32(rec.bytes_in) << 32,
      sat32(rec.bytes_out) | std::uint64_t{rec.peer_addr} << 32,
      std::uint64_t{rec.epoch} |
          std::uint64_t{static_cast<std::uint32_t>(rec.fd)} << 32,
      std::uint64_t{rec.peer_port} | std::uint64_t{rec.verb} << 16 |
          std::uint64_t{rec.status} << 24,
  };
}

FlightRecord FlightRecorder::unpack(
    const std::array<std::uint64_t, kWords>& words) {
  FlightRecord rec;
  rec.seq = words[0];
  rec.start_ns = words[1] * 1000;
  rec.read_ns = words[2] & 0xFFFFFFFFu;
  rec.parse_ns = words[2] >> 32;
  rec.engine_ns = words[3] & 0xFFFFFFFFu;
  rec.write_ns = words[3] >> 32;
  rec.total_ns = words[4] & 0xFFFFFFFFu;
  rec.bytes_in = words[4] >> 32;
  rec.bytes_out = words[5] & 0xFFFFFFFFu;
  rec.peer_addr = static_cast<std::uint32_t>(words[5] >> 32);
  rec.epoch = static_cast<std::uint32_t>(words[6] & 0xFFFFFFFFu);
  rec.fd = static_cast<std::int32_t>(static_cast<std::uint32_t>(words[6] >> 32));
  rec.peer_port = static_cast<std::uint16_t>(words[7] & 0xFFFF);
  rec.verb = static_cast<std::uint8_t>((words[7] >> 16) & 0xFF);
  rec.status = static_cast<std::uint8_t>((words[7] >> 24) & 0xFF);
  return rec;
}

FlightRecorder::FlightRecorder(Options options)
    : threshold_ns_(options.slow_threshold_ns),
      slow_capacity_(options.slow_capacity) {
  if (options.ring_capacity > 0) {
    slots_ = std::vector<Slot>(std::bit_ceil(options.ring_capacity));
    mask_ = slots_.size() - 1;
  }
  slow_.reserve(slow_capacity_);
  enabled_.store(options.enabled && !slots_.empty(),
                 std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::record(const FlightRecord& record,
                                     std::string_view detail) {
  if (!enabled()) return 0;
  const std::uint64_t seq =
      next_.fetch_add(1, std::memory_order_relaxed) + 1;
  FlightRecord rec = record;
  rec.seq = seq;

  // Seqlock write: zero the seq word (readers treat 0 as mid-write),
  // store the payload as relaxed word stores, publish the seq with
  // release so a reader that sees it sees the words. The recorder is
  // single-writer per shard; a slot's seq strictly increases lap over
  // lap, so a reader re-checking an unchanged nonzero seq cannot be
  // fooled by a concurrent overwrite.
  Slot& slot = slots_[static_cast<std::size_t>(seq) & mask_];
  slot.words[0].store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  const std::array<std::uint64_t, kWords> words = pack(rec);
  for (std::size_t i = 1; i < kWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.words[0].store(seq, std::memory_order_release);

  const std::size_t bucket = bucket_of(rec.total_ns);
  exemplar_ns_[bucket].store(rec.total_ns, std::memory_order_relaxed);
  exemplar_seq_[bucket].store(seq, std::memory_order_relaxed);

  if (rec.total_ns >= threshold_ns_ && slow_capacity_ > 0) {
    std::lock_guard<std::mutex> lock(slow_mu_);
    if (slow_.size() < slow_capacity_) {
      slow_.push_back(SlowFlight{rec, std::string(detail)});
    } else {
      // Replace the current minimum if this request is worse; linear scan
      // is fine at top-K sizes (K defaults to 16).
      std::size_t min_at = 0;
      for (std::size_t i = 1; i < slow_.size(); ++i) {
        if (slow_[i].record.total_ns < slow_[min_at].record.total_ns) {
          min_at = i;
        }
      }
      if (slow_[min_at].record.total_ns < rec.total_ns) {
        slow_[min_at].record = rec;
        slow_[min_at].detail.assign(detail.data(), detail.size());
      }
    }
  }
  return seq;
}

std::vector<FlightRecord> FlightRecorder::tail(
    std::size_t max_records) const {
  std::vector<FlightRecord> out;
  if (slots_.empty()) return out;
  const std::uint64_t head = next_.load(std::memory_order_acquire);
  std::uint64_t want = std::min<std::uint64_t>(
      {head, slots_.size(), max_records});
  out.reserve(static_cast<std::size_t>(want));
  // Newest first, then reverse: the oldest slots are the ones the writer
  // overwrites next, so scanning from the head loses at most the tail
  // end to concurrent writes.
  for (std::uint64_t seq = head; seq > head - want; --seq) {
    const Slot& slot = slots_[static_cast<std::size_t>(seq) & mask_];
    for (int attempt = 0; attempt < 3; ++attempt) {
      std::array<std::uint64_t, kWords> words;
      words[0] = slot.words[0].load(std::memory_order_acquire);
      if (words[0] != seq) break;  // mid-write (0) or already lapped
      for (std::size_t i = 1; i < kWords; ++i) {
        words[i] = slot.words[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.words[0].load(std::memory_order_relaxed) != seq) {
        continue;  // torn by a concurrent write
      }
      out.push_back(unpack(words));
      break;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<SlowFlight> FlightRecorder::slow_log() const {
  std::vector<SlowFlight> out;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    out = slow_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowFlight& a, const SlowFlight& b) {
              if (a.record.total_ns != b.record.total_ns) {
                return a.record.total_ns > b.record.total_ns;
              }
              return a.record.seq < b.record.seq;
            });
  return out;
}

std::vector<FlightExemplar> FlightRecorder::exemplars() const {
  std::vector<FlightExemplar> out;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t seq =
        exemplar_seq_[b].load(std::memory_order_relaxed);
    if (seq == 0) continue;
    out.push_back(FlightExemplar{
        bucket_upper_bound(b), seq,
        exemplar_ns_[b].load(std::memory_order_relaxed)});
  }
  return out;
}

void FlightRecorder::clear() {
  next_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) {
    for (auto& word : slot.words) {
      word.store(0, std::memory_order_relaxed);
    }
  }
  for (std::size_t b = 0; b < kBuckets; ++b) {
    exemplar_seq_[b].store(0, std::memory_order_relaxed);
    exemplar_ns_[b].store(0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_.clear();
}

}  // namespace sublet::obs
