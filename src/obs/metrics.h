// Process-wide metrics registry (docs/OBSERVABILITY.md).
//
// Named counters, gauges, and power-of-two histograms with relaxed-atomic
// hot paths: updating a metric is one (or two) relaxed fetch_adds, safe on
// every hot path in the pipeline and the server. Registration is the only
// locked operation and happens once per call site (keep the returned
// reference; do not re-look-up per update).
//
//   auto& parsed = obs::MetricsRegistry::global().counter(
//       obs::labeled("sublet_whois_records_total", "rir", "ripe"),
//       "WHOIS records parsed");
//   parsed.add(blocks);
//
// Readers take a point-in-time snapshot (snapshot() /
// prometheus_text()) without stopping writers: values are relaxed loads, so
// a snapshot is per-metric consistent, not a cross-metric barrier — exactly
// the guarantee a scrape needs.
//
// Registering the same name twice with the same type returns the same
// instance (idempotent, so static-init call sites in different TUs
// compose). A name re-registered with a *different* type is a bug in the
// caller; the registry logs a warning and hands back a process-wide sink of
// the requested type so the call site keeps working and the original metric
// is not corrupted. The `obs.register` fault-injection site forces that
// collision path in tests.
//
// set_metrics_enabled(false) turns every update into a relaxed load + an
// untaken branch — the knob BM_MetricsHotPath uses to price the
// instrumentation, and an escape hatch for pathological deployments.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sublet::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// Process-wide kill switch for metric *updates* (reads still work).
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on);

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /// Benches re-zero between comparison runs; production code never calls.
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (RIB size, live generation, active connections).
class Gauge {
 public:
  void set(std::int64_t v) {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) {
    if (!metrics_enabled()) return;
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time copy of a histogram, taken by snapshot()/exposition.
struct HistogramSnapshot {
  std::array<std::uint64_t, 65> buckets{};
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
};

/// Lock-free histogram: one bucket per power-of-two value range (bucket 0
/// holds zeros, bucket b>0 holds [2^(b-1), 2^b)). Quantiles are
/// bucket-midpoint approximations — the same scheme the serving layer's
/// latency percentiles have always used.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v) {
    if (!metrics_enabled()) return;
    int bucket = v == 0 ? 0 : 64 - std::countl_zero(v);
    buckets_[static_cast<std::size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const;
  std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Approximate `q`-quantile (0 < q < 1) in recorded units: the midpoint
  /// of the bucket holding the target rank (0.0 for the zero bucket).
  double quantile(double q) const;

  HistogramSnapshot snapshot() const;

  /// Inclusive upper bound of bucket `b` (0, 1, 3, 7, ... 2^b - 1); used
  /// as the Prometheus `le` label.
  static std::uint64_t bucket_upper_bound(std::size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// One registered metric, as captured by MetricsRegistry::snapshot().
struct MetricValue {
  std::string name;  ///< registered name, labels included
  std::string help;
  MetricType type = MetricType::kCounter;
  std::uint64_t counter_value = 0;
  std::int64_t gauge_value = 0;
  HistogramSnapshot histogram;
};

/// Escape a Prometheus label value: backslash, double quote, newline.
std::string label_escape(std::string_view value);

/// Build `family{key="value"}` with the value escaped.
std::string labeled(std::string_view family, std::string_view key,
                    std::string_view value);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or re-fetch) a metric. Returned references live as long as
  /// the registry. `help` is kept from the first registration that
  /// provides one.
  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  Histogram& histogram(std::string_view name, std::string_view help = {});

  std::size_t size() const;

  /// Point-in-time values of every registered metric, in registration
  /// order.
  std::vector<MetricValue> snapshot() const;

  /// Prometheus text exposition (format 0.0.4): families in first-seen
  /// order with # HELP/# TYPE headers; histograms expand to cumulative
  /// _bucket{le=...} series plus _sum and _count.
  std::string prometheus_text() const;

  /// The process-wide registry the pipeline instruments.
  static MetricsRegistry& global();

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// nullptr = fresh name (caller registers); otherwise the existing or
  /// sink entry resolved for (name, type).
  Entry* resolve(std::string_view name, MetricType type);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::unordered_map<std::string_view, std::size_t> index_;
};

}  // namespace sublet::obs
