#include "obs/metrics.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>

#include "util/faultinject.h"
#include "util/log.h"

namespace sublet::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace detail

void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::quantile(double q) const {
  HistogramSnapshot snap = snapshot();
  if (snap.count == 0) return 0.0;
  auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(snap.count));
  if (target >= snap.count) target = snap.count - 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += snap.buckets[b];
    if (seen > target) {
      if (b == 0) return 0.0;
      // Midpoint of [2^(b-1), 2^b) — matches the serving layer's historical
      // latency quantile estimate exactly.
      return 1.5 * static_cast<double>(std::uint64_t{1} << (b - 1));
    }
  }
  return 0.0;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    snap.count += snap.buckets[b];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

std::string label_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string labeled(std::string_view family, std::string_view key,
                    std::string_view value) {
  std::string out(family);
  out += '{';
  out += key;
  out += "=\"";
  out += label_escape(value);
  out += "\"}";
  return out;
}

namespace {

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

/// Shared fallbacks for botched registrations: the call site gets a working
/// metric of the type it asked for, it just isn't exported anywhere.
Counter& sink_counter() {
  static Counter sink;
  return sink;
}
Gauge& sink_gauge() {
  static Gauge sink;
  return sink;
}
Histogram& sink_histogram() {
  static Histogram sink;
  return sink;
}

/// Split a registered name into family and label block:
/// "fam{a=\"b\"}" -> ("fam", "a=\"b\""); "fam" -> ("fam", "").
void split_name(std::string_view name, std::string_view& family,
                std::string_view& labels) {
  auto brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    family = name;
    labels = {};
    return;
  }
  family = name.substr(0, brace);
  labels = name.substr(brace + 1, name.size() - brace - 2);
}

/// "_sum{labels}" / "_sum" style suffixed sample name.
std::string sample_name(std::string_view family, std::string_view labels,
                        std::string_view suffix) {
  std::string out(family);
  out += suffix;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  return out;
}

std::string help_escape(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void emit_sample(std::string& out, const MetricValue& value);

}  // namespace

MetricsRegistry::Entry* MetricsRegistry::resolve(std::string_view name,
                                                 MetricType type) {
  // Callers hold mu_.
  int unused_errno = 0;
  bool collide = fault::inject("obs.register", &unused_errno);
  auto it = index_.find(name);
  if (it == index_.end() && !collide) return nullptr;
  if (it != index_.end()) {
    Entry& entry = *entries_[it->second];
    if (entry.type == type && !collide) return &entry;
    SUBLET_LOGC(kWarn, "obs")
            .kv("metric", std::string(name))
            .kv("registered", type_name(entry.type))
            .kv("requested", type_name(type))
        << "metric registered twice with conflicting types; "
           "returning unexported sink";
  } else {
    SUBLET_LOGC(kWarn, "obs").kv("metric", std::string(name))
        << "metric registration fault injected; returning unexported sink";
  }
  static Entry sink_entry{"", "", MetricType::kCounter, nullptr, nullptr,
                          nullptr};
  return &sink_entry;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = resolve(name, MetricType::kCounter)) {
    if (!existing->counter) return sink_counter();
    if (existing->help.empty() && !help.empty()) existing->help = help;
    return *existing->counter;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->type = MetricType::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter& out = *entry->counter;
  index_.emplace(std::string_view(entry->name), entries_.size());
  entries_.push_back(std::move(entry));
  return out;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = resolve(name, MetricType::kGauge)) {
    if (!existing->gauge) return sink_gauge();
    if (existing->help.empty() && !help.empty()) existing->help = help;
    return *existing->gauge;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->type = MetricType::kGauge;
  entry->gauge = std::make_unique<Gauge>();
  Gauge& out = *entry->gauge;
  index_.emplace(std::string_view(entry->name), entries_.size());
  entries_.push_back(std::move(entry));
  return out;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = resolve(name, MetricType::kHistogram)) {
    if (!existing->histogram) return sink_histogram();
    if (existing->help.empty() && !help.empty()) existing->help = help;
    return *existing->histogram;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->type = MetricType::kHistogram;
  entry->histogram = std::make_unique<Histogram>();
  Histogram& out = *entry->histogram;
  index_.emplace(std::string_view(entry->name), entries_.size());
  entries_.push_back(std::move(entry));
  return out;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<MetricValue> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricValue> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricValue value;
    value.name = entry->name;
    value.help = entry->help;
    value.type = entry->type;
    switch (entry->type) {
      case MetricType::kCounter:
        value.counter_value = entry->counter->value();
        break;
      case MetricType::kGauge:
        value.gauge_value = entry->gauge->value();
        break;
      case MetricType::kHistogram:
        value.histogram = entry->histogram->snapshot();
        break;
    }
    out.push_back(std::move(value));
  }
  return out;
}

std::string MetricsRegistry::prometheus_text() const {
  std::vector<MetricValue> values = snapshot();
  // All samples of a family must sit under a single # TYPE header, so group
  // by family in first-seen order even if registrations interleaved.
  std::vector<std::string_view> family_order;
  std::unordered_map<std::string_view, std::vector<std::size_t>> by_family;
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::string_view family;
    std::string_view labels;
    split_name(values[i].name, family, labels);
    auto [it, fresh] = by_family.try_emplace(family);
    if (fresh) family_order.push_back(family);
    it->second.push_back(i);
  }
  std::string out;
  out.reserve(values.size() * 64);
  for (std::string_view family : family_order) {
    const std::vector<std::size_t>& members = by_family[family];
    std::string_view help;
    for (std::size_t i : members) {
      if (!values[i].help.empty()) {
        help = values[i].help;
        break;
      }
    }
    if (!help.empty()) {
      out += "# HELP ";
      out += family;
      out += ' ';
      out += help_escape(help);
      out += '\n';
    }
    out += "# TYPE ";
    out += family;
    out += ' ';
    out += type_name(values[members.front()].type);
    out += '\n';
    for (std::size_t i : members) {
      emit_sample(out, values[i]);
    }
  }
  return out;
}

namespace {

void emit_sample(std::string& out, const MetricValue& value) {
  std::string_view family;
  std::string_view labels;
  split_name(value.name, family, labels);
  switch (value.type) {
      case MetricType::kCounter: {
        out += value.name;
        out += ' ';
        append_u64(out, value.counter_value);
        out += '\n';
        break;
      }
      case MetricType::kGauge: {
        out += value.name;
        out += ' ';
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%" PRId64, value.gauge_value);
        out += buf;
        out += '\n';
        break;
      }
      case MetricType::kHistogram: {
        const HistogramSnapshot& hist = value.histogram;
        // Trim the tail: emit cumulative buckets up to the last non-empty
        // one, then +Inf. An empty histogram emits just +Inf/_sum/_count.
        std::size_t top = 0;
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          if (hist.buckets[b] != 0) top = b + 1;
        }
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < top; ++b) {
          cumulative += hist.buckets[b];
          std::string le;
          append_u64(le, Histogram::bucket_upper_bound(b));
          std::string bucket_labels(labels);
          if (!bucket_labels.empty()) bucket_labels += ',';
          bucket_labels += "le=\"";
          bucket_labels += le;
          bucket_labels += '"';
          out += sample_name(family, bucket_labels, "_bucket");
          out += ' ';
          append_u64(out, cumulative);
          out += '\n';
        }
        std::string inf_labels(labels);
        if (!inf_labels.empty()) inf_labels += ',';
        inf_labels += "le=\"+Inf\"";
        out += sample_name(family, inf_labels, "_bucket");
        out += ' ';
        append_u64(out, hist.count);
        out += '\n';
        out += sample_name(family, labels, "_sum");
        out += ' ';
        append_u64(out, hist.sum);
        out += '\n';
        out += sample_name(family, labels, "_count");
        out += ' ';
        append_u64(out, hist.count);
        out += '\n';
        break;
      }
  }
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace sublet::obs
