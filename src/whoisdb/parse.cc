#include "whoisdb/parse.h"

#include <fstream>
#include <stdexcept>

#include "rpsl/rpsl.h"
#include "util/strings.h"
#include "whoisdb/status.h"

namespace sublet::whois {

namespace {

void note(std::vector<Error>* diagnostics, Error error) {
  if (diagnostics) diagnostics->push_back(std::move(error));
}

/// Parse an address block value that may be a range ("a - b") or CIDR.
std::optional<AddrRange> parse_block_value(std::string_view value) {
  if (auto range = AddrRange::parse(value)) return range;
  if (auto prefix = Prefix::parse(trim(value))) {
    return AddrRange{prefix->first(), prefix->last()};
  }
  return std::nullopt;
}

std::vector<std::string> collect_strings(
    const std::vector<std::string_view>& views) {
  return {views.begin(), views.end()};
}

// ---------------------------------------------------------------- RPSL ----

void consume_rpsl_object(const rpsl::Object& obj, WhoisDb& db,
                         const std::string& source,
                         std::vector<Error>* diagnostics) {
  Rir rir = db.rir();
  if (obj.cls() == "inetnum") {
    auto range = parse_block_value(obj.get("inetnum"));
    if (!range) {
      note(diagnostics, fail("bad inetnum range '" +
                                 std::string(obj.get("inetnum")) + "'",
                             source, obj.line));
      return;
    }
    InetBlock block;
    block.range = *range;
    block.netname = std::string(obj.get("netname"));
    block.status = std::string(obj.get("status"));
    block.portability = classify_status(rir, block.status);
    block.org_id = std::string(obj.get("org"));
    block.maintainers = collect_strings(obj.all("mnt-by"));
    block.country = std::string(obj.get("country"));
    block.rir = rir;
    db.add_block(std::move(block));
  } else if (obj.cls() == "aut-num") {
    auto asn = Asn::parse(obj.get("aut-num"));
    if (!asn) {
      note(diagnostics, fail("bad aut-num '" +
                                 std::string(obj.get("aut-num")) + "'",
                             source, obj.line));
      return;
    }
    AutNumRec rec;
    rec.asn = *asn;
    rec.as_name = std::string(obj.get("as-name"));
    rec.org_id = std::string(obj.get("org"));
    rec.maintainers = collect_strings(obj.all("mnt-by"));
    rec.rir = rir;
    db.add_autnum(std::move(rec));
  } else if (obj.cls() == "organisation") {
    OrgRec org;
    org.id = std::string(obj.get("organisation"));
    if (org.id.empty()) {
      note(diagnostics, fail("organisation without handle", source, obj.line));
      return;
    }
    org.name = std::string(obj.get("org-name"));
    org.maintainers = collect_strings(obj.all("mnt-by"));
    for (auto ref : obj.all("mnt-ref")) org.maintainers.emplace_back(ref);
    org.country = std::string(obj.get("country"));
    org.rir = rir;
    db.add_org(std::move(org));
  }
  // mntner, person, route, ... objects are irrelevant to the pipeline.
}

// ---------------------------------------------------------------- ARIN ----

void consume_arin_object(const rpsl::Object& obj, WhoisDb& db,
                         const std::string& source,
                         std::vector<Error>* diagnostics) {
  if (obj.cls() == "nethandle") {
    auto range = parse_block_value(obj.get("netrange"));
    if (!range) {
      note(diagnostics, fail("bad NetRange '" +
                                 std::string(obj.get("netrange")) + "'",
                             source, obj.line));
      return;
    }
    InetBlock block;
    block.range = *range;
    block.netname = std::string(obj.get("netname"));
    block.status = std::string(obj.get("nettype"));
    block.portability = classify_status(Rir::kArin, block.status);
    block.org_id = std::string(obj.get("orgid"));
    // ARIN has no maintainer objects: the managing handle is the OrgID.
    if (!block.org_id.empty()) block.maintainers = {block.org_id};
    block.country = std::string(obj.get("country"));
    block.rir = Rir::kArin;
    db.add_block(std::move(block));
  } else if (obj.cls() == "ashandle") {
    auto asn = Asn::parse(obj.get("ashandle"));
    if (!asn) {
      note(diagnostics, fail("bad ASHandle '" +
                                 std::string(obj.get("ashandle")) + "'",
                             source, obj.line));
      return;
    }
    AutNumRec rec;
    rec.asn = *asn;
    rec.as_name = std::string(obj.get("asname"));
    rec.org_id = std::string(obj.get("orgid"));
    if (!rec.org_id.empty()) rec.maintainers = {rec.org_id};
    rec.rir = Rir::kArin;
    db.add_autnum(std::move(rec));
  } else if (obj.cls() == "orgid") {
    OrgRec org;
    org.id = std::string(obj.get("orgid"));
    if (org.id.empty()) {
      note(diagnostics, fail("OrgID without handle", source, obj.line));
      return;
    }
    org.name = std::string(obj.get("orgname"));
    org.maintainers = {org.id};
    org.country = std::string(obj.get("country"));
    org.rir = Rir::kArin;
    db.add_org(std::move(org));
  }
}

// -------------------------------------------------------------- LACNIC ----

void consume_lacnic_object(const rpsl::Object& obj, WhoisDb& db,
                           const std::string& source,
                           std::vector<Error>* diagnostics) {
  if (obj.cls() == "inetnum") {
    auto range = parse_block_value(obj.get("inetnum"));
    if (!range) {
      note(diagnostics, fail("bad LACNIC inetnum '" +
                                 std::string(obj.get("inetnum")) + "'",
                             source, obj.line));
      return;
    }
    InetBlock block;
    block.range = *range;
    block.status = std::string(obj.get("status"));
    block.portability = classify_status(Rir::kLacnic, block.status);
    block.org_id = std::string(obj.get("ownerid"));
    if (!block.org_id.empty()) block.maintainers = {block.org_id};
    block.country = std::string(obj.get("country"));
    block.rir = Rir::kLacnic;
    std::string owner_id = block.org_id;
    db.add_block(std::move(block));

    // LACNIC embeds the organisation in the block (§5.1): synthesize it.
    if (!owner_id.empty() && !db.org(owner_id)) {
      OrgRec org;
      org.id = owner_id;
      org.name = std::string(obj.get("owner"));
      org.maintainers = {org.id};
      org.rir = Rir::kLacnic;
      db.add_org(std::move(org));
    }
  } else if (obj.cls() == "aut-num") {
    auto asn = Asn::parse(obj.get("aut-num"));
    if (!asn) {
      note(diagnostics, fail("bad LACNIC aut-num '" +
                                 std::string(obj.get("aut-num")) + "'",
                             source, obj.line));
      return;
    }
    AutNumRec rec;
    rec.asn = *asn;
    rec.org_id = std::string(obj.get("ownerid"));
    if (!rec.org_id.empty()) rec.maintainers = {rec.org_id};
    rec.rir = Rir::kLacnic;
    std::string owner_id = rec.org_id;
    db.add_autnum(std::move(rec));
    if (!owner_id.empty() && !db.org(owner_id)) {
      OrgRec org;
      org.id = owner_id;
      org.name = std::string(obj.get("owner"));
      org.maintainers = {org.id};
      org.rir = Rir::kLacnic;
      db.add_org(std::move(org));
    }
  }
}

}  // namespace

WhoisDb parse_whois_db(std::istream& in, Rir rir, std::string source,
                       std::vector<Error>* diagnostics) {
  WhoisDb db(rir);
  rpsl::Parser parser(in, source);
  while (auto obj = parser.next()) {
    switch (rir) {
      case Rir::kRipe:
      case Rir::kApnic:
      case Rir::kAfrinic:
        consume_rpsl_object(*obj, db, source, diagnostics);
        break;
      case Rir::kArin:
        consume_arin_object(*obj, db, source, diagnostics);
        break;
      case Rir::kLacnic:
        consume_lacnic_object(*obj, db, source, diagnostics);
        break;
    }
  }
  if (diagnostics) {
    for (const auto& d : parser.diagnostics()) diagnostics->push_back(d);
  }
  return db;
}

WhoisDb load_whois_file(const std::string& path, Rir rir,
                        std::vector<Error>* diagnostics) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open WHOIS database: " + path);
  return parse_whois_db(in, rir, path, diagnostics);
}

}  // namespace sublet::whois
