#include "whoisdb/parse.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <streambuf>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpsl/rpsl.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "whoisdb/status.h"

namespace sublet::whois {

namespace {

// ------------------------------------------------------------- metrics ----

struct RirParseMetrics {
  obs::Counter& records;     ///< blocks + aut-nums + orgs added to the db
  obs::Counter& paragraphs;  ///< objects the RPSL parser produced
  obs::Counter& errors;      ///< parse/consume diagnostics
};

std::string rir_label(Rir rir) {
  std::string lower;
  for (char c : rir_name(rir)) {
    lower += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  return lower;
}

RirParseMetrics& parse_metrics(Rir rir) {
  static std::array<RirParseMetrics, kAllRirs.size()> metrics = [] {
    auto& reg = obs::MetricsRegistry::global();
    auto make = [&](Rir r) {
      std::string label = rir_label(r);
      return RirParseMetrics{
          reg.counter(
              obs::labeled("sublet_whois_records_total", "rir", label),
              "WHOIS records (address blocks, aut-nums, orgs) parsed"),
          reg.counter(
              obs::labeled("sublet_whois_paragraphs_total", "rir", label),
              "WHOIS paragraph objects consumed by the parser"),
          reg.counter(
              obs::labeled("sublet_whois_parse_errors_total", "rir", label),
              "WHOIS parse and consume diagnostics"),
      };
    };
    return std::array<RirParseMetrics, kAllRirs.size()>{
        make(Rir::kRipe), make(Rir::kArin), make(Rir::kApnic),
        make(Rir::kAfrinic), make(Rir::kLacnic)};
  }();
  return metrics[static_cast<std::size_t>(rir)];
}

/// Register the per-RIR families at program start so a process that never
/// parses (e.g. `sublet serve` on a snapshot) still exports them at zero.
const bool g_parse_metrics_registered = [] {
  for (Rir rir : kAllRirs) parse_metrics(rir);
  return true;
}();

void note(std::vector<Error>* diagnostics, Error error) {
  if (diagnostics) diagnostics->push_back(std::move(error));
}

/// Parse an address block value that may be a range ("a - b") or CIDR.
std::optional<AddrRange> parse_block_value(std::string_view value) {
  if (auto range = AddrRange::parse(value)) return range;
  if (auto prefix = Prefix::parse(trim(value))) {
    return AddrRange{prefix->first(), prefix->last()};
  }
  return std::nullopt;
}

std::vector<std::string> collect_strings(
    const std::vector<std::string_view>& views) {
  return {views.begin(), views.end()};
}

// ---------------------------------------------------------------- RPSL ----

void consume_rpsl_object(const rpsl::Object& obj, WhoisDb& db,
                         const std::string& source,
                         std::vector<Error>* diagnostics) {
  Rir rir = db.rir();
  if (obj.cls() == "inetnum") {
    auto range = parse_block_value(obj.get("inetnum"));
    if (!range) {
      note(diagnostics, fail("bad inetnum range '" +
                                 std::string(obj.get("inetnum")) + "'",
                             source, obj.line));
      return;
    }
    InetBlock block;
    block.range = *range;
    block.netname = std::string(obj.get("netname"));
    block.status = std::string(obj.get("status"));
    block.portability = classify_status(rir, block.status);
    block.org_id = std::string(obj.get("org"));
    block.maintainers = collect_strings(obj.all("mnt-by"));
    block.country = std::string(obj.get("country"));
    block.rir = rir;
    db.add_block(std::move(block));
  } else if (obj.cls() == "aut-num") {
    auto asn = Asn::parse(obj.get("aut-num"));
    if (!asn) {
      note(diagnostics, fail("bad aut-num '" +
                                 std::string(obj.get("aut-num")) + "'",
                             source, obj.line));
      return;
    }
    AutNumRec rec;
    rec.asn = *asn;
    rec.as_name = std::string(obj.get("as-name"));
    rec.org_id = std::string(obj.get("org"));
    rec.maintainers = collect_strings(obj.all("mnt-by"));
    rec.rir = rir;
    db.add_autnum(std::move(rec));
  } else if (obj.cls() == "organisation") {
    OrgRec org;
    org.id = std::string(obj.get("organisation"));
    if (org.id.empty()) {
      note(diagnostics, fail("organisation without handle", source, obj.line));
      return;
    }
    org.name = std::string(obj.get("org-name"));
    org.maintainers = collect_strings(obj.all("mnt-by"));
    for (auto ref : obj.all("mnt-ref")) org.maintainers.emplace_back(ref);
    org.country = std::string(obj.get("country"));
    org.rir = rir;
    db.add_org(std::move(org));
  }
  // mntner, person, route, ... objects are irrelevant to the pipeline.
}

// ---------------------------------------------------------------- ARIN ----

void consume_arin_object(const rpsl::Object& obj, WhoisDb& db,
                         const std::string& source,
                         std::vector<Error>* diagnostics) {
  if (obj.cls() == "nethandle") {
    auto range = parse_block_value(obj.get("netrange"));
    if (!range) {
      note(diagnostics, fail("bad NetRange '" +
                                 std::string(obj.get("netrange")) + "'",
                             source, obj.line));
      return;
    }
    InetBlock block;
    block.range = *range;
    block.netname = std::string(obj.get("netname"));
    block.status = std::string(obj.get("nettype"));
    block.portability = classify_status(Rir::kArin, block.status);
    block.org_id = std::string(obj.get("orgid"));
    // ARIN has no maintainer objects: the managing handle is the OrgID.
    if (!block.org_id.empty()) block.maintainers = {block.org_id};
    block.country = std::string(obj.get("country"));
    block.rir = Rir::kArin;
    db.add_block(std::move(block));
  } else if (obj.cls() == "ashandle") {
    auto asn = Asn::parse(obj.get("ashandle"));
    if (!asn) {
      note(diagnostics, fail("bad ASHandle '" +
                                 std::string(obj.get("ashandle")) + "'",
                             source, obj.line));
      return;
    }
    AutNumRec rec;
    rec.asn = *asn;
    rec.as_name = std::string(obj.get("asname"));
    rec.org_id = std::string(obj.get("orgid"));
    if (!rec.org_id.empty()) rec.maintainers = {rec.org_id};
    rec.rir = Rir::kArin;
    db.add_autnum(std::move(rec));
  } else if (obj.cls() == "orgid") {
    OrgRec org;
    org.id = std::string(obj.get("orgid"));
    if (org.id.empty()) {
      note(diagnostics, fail("OrgID without handle", source, obj.line));
      return;
    }
    org.name = std::string(obj.get("orgname"));
    org.maintainers = {org.id};
    org.country = std::string(obj.get("country"));
    org.rir = Rir::kArin;
    db.add_org(std::move(org));
  }
}

// -------------------------------------------------------------- LACNIC ----

void consume_lacnic_object(const rpsl::Object& obj, WhoisDb& db,
                           const std::string& source,
                           std::vector<Error>* diagnostics) {
  if (obj.cls() == "inetnum") {
    auto range = parse_block_value(obj.get("inetnum"));
    if (!range) {
      note(diagnostics, fail("bad LACNIC inetnum '" +
                                 std::string(obj.get("inetnum")) + "'",
                             source, obj.line));
      return;
    }
    InetBlock block;
    block.range = *range;
    block.status = std::string(obj.get("status"));
    block.portability = classify_status(Rir::kLacnic, block.status);
    block.org_id = std::string(obj.get("ownerid"));
    if (!block.org_id.empty()) block.maintainers = {block.org_id};
    block.country = std::string(obj.get("country"));
    block.rir = Rir::kLacnic;
    std::string owner_id = block.org_id;
    db.add_block(std::move(block));

    // LACNIC embeds the organisation in the block (§5.1): synthesize it.
    if (!owner_id.empty() && !db.org(owner_id)) {
      OrgRec org;
      org.id = owner_id;
      org.name = std::string(obj.get("owner"));
      org.maintainers = {org.id};
      org.rir = Rir::kLacnic;
      db.add_org(std::move(org));
    }
  } else if (obj.cls() == "aut-num") {
    auto asn = Asn::parse(obj.get("aut-num"));
    if (!asn) {
      note(diagnostics, fail("bad LACNIC aut-num '" +
                                 std::string(obj.get("aut-num")) + "'",
                             source, obj.line));
      return;
    }
    AutNumRec rec;
    rec.asn = *asn;
    rec.org_id = std::string(obj.get("ownerid"));
    if (!rec.org_id.empty()) rec.maintainers = {rec.org_id};
    rec.rir = Rir::kLacnic;
    std::string owner_id = rec.org_id;
    db.add_autnum(std::move(rec));
    if (!owner_id.empty() && !db.org(owner_id)) {
      OrgRec org;
      org.id = owner_id;
      org.name = std::string(obj.get("owner"));
      org.maintainers = {org.id};
      org.rir = Rir::kLacnic;
      db.add_org(std::move(org));
    }
  }
}

void consume_object(const rpsl::Object& obj, Rir rir, WhoisDb& db,
                    const std::string& source,
                    std::vector<Error>* diagnostics) {
  switch (rir) {
    case Rir::kRipe:
    case Rir::kApnic:
    case Rir::kAfrinic:
      consume_rpsl_object(obj, db, source, diagnostics);
      break;
    case Rir::kArin:
      consume_arin_object(obj, db, source, diagnostics);
      break;
    case Rir::kLacnic:
      consume_lacnic_object(obj, db, source, diagnostics);
      break;
  }
}

/// Read-only streambuf over a text slice — lets the chunked path reuse the
/// istream-based rpsl::Parser without copying each slice into a string.
class ViewBuf : public std::streambuf {
 public:
  explicit ViewBuf(std::string_view text) {
    char* begin = const_cast<char*>(text.data());
    setg(begin, begin, begin + text.size());
  }
};

/// Parse one slice into `db`, with diagnostics split into the consume
/// stage (emitted during the object loop, in input order) and the parser
/// stage (appended after the loop) so a chunk merge can reproduce the
/// serial diagnostic order exactly.
void parse_slice(std::string_view text, Rir rir, WhoisDb& db,
                 const std::string& source, std::size_t line_offset,
                 std::vector<Error>* consume_diags,
                 std::vector<Error>* parser_diags) {
  // Line-count heuristic: RPSL objects average 6-8 lines, most of them
  // address blocks — pre-size the record vectors before the hot loop.
  std::size_t lines =
      static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n'));
  db.reserve(lines / 8, lines / 32);

  std::size_t blocks_before = db.blocks().size();
  std::size_t autnums_before = db.autnums().size();
  std::size_t orgs_before = db.all_orgs().size();
  std::size_t consume_diags_before = consume_diags ? consume_diags->size() : 0;
  std::size_t paragraphs = 0;

  ViewBuf buf(text);
  std::istream in(&buf);
  rpsl::Parser parser(in, source, line_offset);
  while (auto obj = parser.next()) {
    ++paragraphs;
    consume_object(*obj, rir, db, source, consume_diags);
  }
  if (parser_diags) {
    parser_diags->insert(parser_diags->end(), parser.diagnostics().begin(),
                         parser.diagnostics().end());
  }

  RirParseMetrics& metrics = parse_metrics(rir);
  metrics.paragraphs.add(paragraphs);
  metrics.records.add((db.blocks().size() - blocks_before) +
                      (db.autnums().size() - autnums_before) +
                      (db.all_orgs().size() - orgs_before));
  std::size_t errors = parser.diagnostics().size();
  if (consume_diags) errors += consume_diags->size() - consume_diags_before;
  metrics.errors.add(errors);
}

struct Slice {
  std::string_view text;
  std::size_t line_offset = 0;
};

/// Split `text` into up to `max_slices` pieces at blank-line boundaries.
/// An RPSL object never spans a blank line, so every piece parses
/// independently; pieces keep their absolute starting line number.
std::vector<Slice> split_paragraph_slices(std::string_view text,
                                          std::size_t max_slices) {
  std::vector<Slice> slices;
  std::size_t target = text.size() / max_slices;
  std::size_t start = 0, line = 0;
  while (start < text.size()) {
    std::size_t cut = text.size();
    if (slices.size() + 1 < max_slices && start + target < text.size()) {
      // "\n\n" = end of a line followed by an empty line: a safe boundary.
      std::size_t blank = text.find("\n\n", start + target);
      if (blank != std::string_view::npos) cut = blank + 1;
    }
    std::string_view piece = text.substr(start, cut - start);
    slices.push_back({piece, line});
    line += static_cast<std::size_t>(
        std::count(piece.begin(), piece.end(), '\n'));
    start = cut;
  }
  return slices;
}

struct SliceResult {
  WhoisDb db;
  std::vector<Error> consume_diags;
  std::vector<Error> parser_diags;
};

}  // namespace

WhoisDb parse_whois_text(std::string_view text, Rir rir, std::string source,
                         std::vector<Error>* diagnostics, unsigned threads) {
  obs::ScopedSpan span("whois.parse");
  span.add_bytes(text.size());
  unsigned t = par::resolve_threads(threads);
  // Below ~2 slices of 16 KiB the fan-out costs more than it saves.
  constexpr std::size_t kMinSliceBytes = 1 << 14;
  std::size_t max_slices =
      std::min<std::size_t>(text.size() / kMinSliceBytes,
                            static_cast<std::size_t>(t) * 4);
  if (t <= 1 || max_slices < 2) {
    WhoisDb db(rir);
    std::vector<Error> parser_diags;
    parse_slice(text, rir, db, source, 0, diagnostics,
                diagnostics ? &parser_diags : nullptr);
    if (diagnostics) {
      diagnostics->insert(diagnostics->end(), parser_diags.begin(),
                          parser_diags.end());
    }
    span.add_records(db.blocks().size() + db.autnums().size());
    return db;
  }

  auto slices = split_paragraph_slices(text, max_slices);
  // Chunk spans run on pool threads: hand them the stage span explicitly so
  // they nest under it in the trace.
  obs::SpanId parse_span = span.id();
  auto results = par::parallel_map(
      slices,
      [&](const Slice& slice) {
        obs::ScopedSpan chunk("whois.parse.chunk", parse_span);
        chunk.add_bytes(slice.text.size());
        SliceResult result{WhoisDb(rir), {}, {}};
        parse_slice(slice.text, rir, result.db, source, slice.line_offset,
                    &result.consume_diags, &result.parser_diags);
        chunk.add_records(result.db.blocks().size() +
                          result.db.autnums().size());
        return result;
      },
      t);

  // Merge in input order: record order, join semantics, and diagnostics
  // come out identical to the serial parse. LACNIC orgs are synthesized
  // first-wins (§5.1); explicit org objects shadow earlier ones.
  WhoisDb db(rir);
  auto org_merge = rir == Rir::kLacnic ? WhoisDb::OrgMerge::kKeepExisting
                                       : WhoisDb::OrgMerge::kOverwrite;
  for (SliceResult& result : results) {
    db.merge(std::move(result.db), org_merge);
  }
  if (diagnostics) {
    for (const SliceResult& result : results) {
      diagnostics->insert(diagnostics->end(), result.consume_diags.begin(),
                          result.consume_diags.end());
    }
    for (const SliceResult& result : results) {
      diagnostics->insert(diagnostics->end(), result.parser_diags.begin(),
                          result.parser_diags.end());
    }
  }
  span.add_records(db.blocks().size() + db.autnums().size());
  return db;
}

WhoisDb parse_whois_db(std::istream& in, Rir rir, std::string source,
                       std::vector<Error>* diagnostics, unsigned threads) {
  unsigned t = par::resolve_threads(threads);
  if (t > 1) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_whois_text(buffer.view(), rir, std::move(source),
                            diagnostics, t);
  }
  obs::ScopedSpan span("whois.parse");
  WhoisDb db(rir);
  std::size_t paragraphs = 0;
  std::size_t consume_diags_before = diagnostics ? diagnostics->size() : 0;
  rpsl::Parser parser(in, source);
  while (auto obj = parser.next()) {
    ++paragraphs;
    consume_object(*obj, rir, db, source, diagnostics);
  }
  if (diagnostics) {
    for (const auto& d : parser.diagnostics()) diagnostics->push_back(d);
  }
  RirParseMetrics& metrics = parse_metrics(rir);
  metrics.paragraphs.add(paragraphs);
  metrics.records.add(db.blocks().size() + db.autnums().size() +
                      db.all_orgs().size());
  std::size_t errors = parser.diagnostics().size();
  if (diagnostics) {
    errors += diagnostics->size() - consume_diags_before -
              parser.diagnostics().size();
  }
  metrics.errors.add(errors);
  span.add_records(db.blocks().size() + db.autnums().size());
  return db;
}

WhoisDb load_whois_file(const std::string& path, Rir rir,
                        std::vector<Error>* diagnostics, unsigned threads) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open WHOIS database: " + path);
  unsigned t = par::resolve_threads(threads);
  if (t <= 1) return parse_whois_db(in, rir, path, diagnostics, 1);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return parse_whois_text(text, rir, path, diagnostics, t);
}

}  // namespace sublet::whois
