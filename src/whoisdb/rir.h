// The five Regional Internet Registries.
#pragma once

#include <array>
#include <optional>
#include <string_view>

namespace sublet::whois {

enum class Rir { kRipe = 0, kArin = 1, kApnic = 2, kAfrinic = 3, kLacnic = 4 };

inline constexpr std::array<Rir, 5> kAllRirs = {
    Rir::kRipe, Rir::kArin, Rir::kApnic, Rir::kAfrinic, Rir::kLacnic};

constexpr std::string_view rir_name(Rir rir) {
  switch (rir) {
    case Rir::kRipe: return "RIPE";
    case Rir::kArin: return "ARIN";
    case Rir::kApnic: return "APNIC";
    case Rir::kAfrinic: return "AFRINIC";
    case Rir::kLacnic: return "LACNIC";
  }
  return "?";
}

std::optional<Rir> rir_from_name(std::string_view name);

}  // namespace sublet::whois
