#include "whoisdb/write.h"

#include <ostream>

namespace sublet::whois {

void write_db_header(std::ostream& out, Rir rir) {
  out << "% " << rir_name(rir) << " database snapshot\n\n";
}

namespace {

void write_rpsl_block(std::ostream& out, const InetBlock& block) {
  out << "inetnum:        " << block.range.to_string() << "\n";
  if (!block.netname.empty()) out << "netname:        " << block.netname << "\n";
  if (!block.org_id.empty()) out << "org:            " << block.org_id << "\n";
  if (!block.country.empty()) out << "country:        " << block.country << "\n";
  out << "status:         " << block.status << "\n";
  for (const std::string& mnt : block.maintainers) {
    out << "mnt-by:         " << mnt << "\n";
  }
  out << "source:         " << rir_name(block.rir) << "\n\n";
}

void write_arin_block(std::ostream& out, const InetBlock& block,
                      const std::string& net_handle) {
  out << "NetHandle:      "
      << (net_handle.empty() ? "NET-" + block.netname : net_handle) << "\n";
  out << "NetRange:       " << block.range.to_string() << "\n";
  out << "NetType:        " << block.status << "\n";
  // ARIN's managing handle is the OrgID; fall back to the first maintainer.
  const std::string& org = !block.org_id.empty()
                               ? block.org_id
                               : (block.maintainers.empty()
                                      ? block.org_id
                                      : block.maintainers.front());
  if (!org.empty()) out << "OrgID:          " << org << "\n";
  if (!block.netname.empty()) out << "NetName:        " << block.netname << "\n";
  if (!block.country.empty()) out << "Country:        " << block.country << "\n";
  out << "\n";
}

void write_lacnic_block(std::ostream& out, const InetBlock& block,
                        const std::string& owner_name) {
  for (const Prefix& prefix : block.range.to_prefixes()) {
    out << "inetnum:        " << prefix.to_string() << "\n";
    out << "status:         " << block.status << "\n";
    if (!owner_name.empty()) out << "owner:          " << owner_name << "\n";
    const std::string& owner_id = !block.org_id.empty()
                                      ? block.org_id
                                      : (block.maintainers.empty()
                                             ? block.org_id
                                             : block.maintainers.front());
    if (!owner_id.empty()) out << "ownerid:        " << owner_id << "\n";
    if (!block.country.empty()) out << "country:        " << block.country << "\n";
    out << "\n";
  }
}

}  // namespace

void write_block(std::ostream& out, const InetBlock& block,
                 const std::string& owner_name,
                 const std::string& net_handle) {
  switch (block.rir) {
    case Rir::kArin:
      write_arin_block(out, block, net_handle);
      break;
    case Rir::kLacnic:
      write_lacnic_block(out, block, owner_name);
      break;
    default:
      write_rpsl_block(out, block);
      break;
  }
}

void write_autnum(std::ostream& out, const AutNumRec& autnum,
                  const std::string& owner_name) {
  switch (autnum.rir) {
    case Rir::kArin:
      out << "ASHandle:       " << autnum.asn.to_string() << "\n";
      if (!autnum.org_id.empty()) out << "OrgID:          " << autnum.org_id << "\n";
      out << "ASName:         "
          << (autnum.as_name.empty() ? "AS-" + std::to_string(autnum.asn.value())
                                     : autnum.as_name)
          << "\n\n";
      break;
    case Rir::kLacnic:
      out << "aut-num:        " << autnum.asn.to_string() << "\n";
      if (!owner_name.empty()) out << "owner:          " << owner_name << "\n";
      if (!autnum.org_id.empty()) out << "ownerid:        " << autnum.org_id << "\n";
      out << "\n";
      break;
    default:
      out << "aut-num:        " << autnum.asn.to_string() << "\n";
      out << "as-name:        "
          << (autnum.as_name.empty() ? "AS-" + std::to_string(autnum.asn.value())
                                     : autnum.as_name)
          << "\n";
      if (!autnum.org_id.empty()) out << "org:            " << autnum.org_id << "\n";
      for (const std::string& mnt : autnum.maintainers) {
        out << "mnt-by:         " << mnt << "\n";
      }
      out << "source:         " << rir_name(autnum.rir) << "\n\n";
      break;
  }
}

void write_org(std::ostream& out, const OrgRec& org) {
  switch (org.rir) {
    case Rir::kArin:
      out << "OrgID:          " << org.id << "\n";
      out << "OrgName:        " << org.name << "\n";
      if (!org.country.empty()) out << "Country:        " << org.country << "\n";
      out << "\n";
      break;
    case Rir::kLacnic:
      break;  // no standalone organisation objects
    default:
      out << "organisation:   " << org.id << "\n";
      out << "org-name:       " << org.name << "\n";
      for (const std::string& mnt : org.maintainers) {
        out << "mnt-by:         " << mnt << "\n";
      }
      if (!org.country.empty()) out << "country:        " << org.country << "\n";
      out << "source:         " << rir_name(org.rir) << "\n\n";
      break;
  }
}

}  // namespace sublet::whois
