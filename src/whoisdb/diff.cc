#include "whoisdb/diff.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/strings.h"

namespace sublet::whois {

namespace {

std::map<Prefix, const InetBlock*> index_blocks(const WhoisDb& db,
                                                int max_prefix_len) {
  std::map<Prefix, const InetBlock*> out;
  for (const InetBlock& block : db.blocks()) {
    if (!block.range.valid()) continue;
    for (const Prefix& prefix : block.range.to_prefixes()) {
      if (prefix.length() > max_prefix_len) continue;
      out[prefix] = &block;  // later duplicate registrations shadow earlier
    }
  }
  return out;
}

std::string maintainer_key(const InetBlock& block) {
  std::set<std::string> set;
  for (const std::string& mnt : block.maintainers) set.insert(to_lower(mnt));
  std::vector<std::string> sorted(set.begin(), set.end());
  return join(sorted, " ");
}

}  // namespace

std::vector<BlockChange> diff_databases(const WhoisDb& before,
                                        const WhoisDb& after,
                                        int max_prefix_len) {
  auto old_index = index_blocks(before, max_prefix_len);
  auto new_index = index_blocks(after, max_prefix_len);

  std::vector<BlockChange> changes;
  for (const auto& [prefix, new_block] : new_index) {
    auto it = old_index.find(prefix);
    if (it == old_index.end()) {
      changes.push_back({prefix, BlockChange::Kind::kAdded, "",
                         maintainer_key(*new_block)});
      continue;
    }
    const InetBlock* old_block = it->second;
    std::string old_mnt = maintainer_key(*old_block);
    std::string new_mnt = maintainer_key(*new_block);
    if (old_mnt != new_mnt) {
      changes.push_back({prefix, BlockChange::Kind::kMaintainerChanged,
                         old_mnt, new_mnt});
    }
    if (!iequals(old_block->status, new_block->status)) {
      changes.push_back({prefix, BlockChange::Kind::kStatusChanged,
                         old_block->status, new_block->status});
    }
    if (!iequals(old_block->org_id, new_block->org_id)) {
      changes.push_back({prefix, BlockChange::Kind::kOrgChanged,
                         old_block->org_id, new_block->org_id});
    }
  }
  for (const auto& [prefix, old_block] : old_index) {
    if (!new_index.contains(prefix)) {
      changes.push_back({prefix, BlockChange::Kind::kRemoved,
                         maintainer_key(*old_block), ""});
    }
  }
  std::sort(changes.begin(), changes.end(),
            [](const BlockChange& a, const BlockChange& b) {
              if (a.prefix != b.prefix) return a.prefix < b.prefix;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return changes;
}

}  // namespace sublet::whois
