#include "whoisdb/alloc_tree.h"

namespace sublet::whois {

AllocationTree AllocationTree::build(const WhoisDb& db, AllocOptions options) {
  AllocationTree tree;
  // Collect (prefix, block) pairs in parse order and bulk-build the trie in
  // one freeze() pass. freeze() keeps the last occurrence of a duplicate
  // prefix, which preserves the documented re-registration shadowing rule.
  std::vector<std::pair<Prefix, const InetBlock*>> entries;
  entries.reserve(db.blocks().size());
  for (const InetBlock& block : db.blocks()) {
    if (!block.range.valid()) continue;
    if (!options.include_legacy && block.portability == Portability::kLegacy) {
      ++tree.skipped_legacy_;
      continue;
    }
    for (const Prefix& prefix : block.range.to_prefixes()) {
      if (prefix.length() > options.max_prefix_len) {
        ++tree.skipped_hyper_;
        continue;
      }
      entries.emplace_back(prefix, &block);
    }
  }
  tree.trie_ = PrefixTrie<const InetBlock*>::freeze(std::move(entries));

  for (auto& [prefix, value] : tree.trie_.roots()) {
    tree.roots_.emplace_back(prefix, *value);
  }
  for (auto& [prefix, value] : tree.trie_.leaves()) {
    tree.leaves_.emplace_back(prefix, *value);
  }
  return tree;
}

std::optional<AllocEntry> AllocationTree::root_of(const Prefix& prefix) const {
  auto hit = trie_.least_specific_covering(prefix);
  if (!hit) return std::nullopt;
  return AllocEntry{hit->first, *hit->second};
}

const InetBlock* AllocationTree::find(const Prefix& prefix) const {
  const InetBlock* const* entry = trie_.find(prefix);
  return entry ? *entry : nullptr;
}

}  // namespace sublet::whois
