#include "whoisdb/alloc_tree.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sublet::whois {

AllocationTree AllocationTree::build(const WhoisDb& db, AllocOptions options) {
  obs::ScopedSpan span("alloc_tree.build");
  AllocationTree tree;
  // Collect (prefix, block) pairs in parse order and bulk-build the trie in
  // one freeze() pass. freeze() keeps the last occurrence of a duplicate
  // prefix, which preserves the documented re-registration shadowing rule.
  std::vector<std::pair<Prefix, const InetBlock*>> entries;
  entries.reserve(db.blocks().size());
  for (const InetBlock& block : db.blocks()) {
    if (!block.range.valid()) continue;
    if (!options.include_legacy && block.portability == Portability::kLegacy) {
      ++tree.skipped_legacy_;
      continue;
    }
    for (const Prefix& prefix : block.range.to_prefixes()) {
      if (prefix.length() > options.max_prefix_len) {
        ++tree.skipped_hyper_;
        continue;
      }
      entries.emplace_back(prefix, &block);
    }
  }
  tree.trie_ = PrefixTrie<const InetBlock*>::freeze(std::move(entries));

  for (auto& [prefix, value] : tree.trie_.roots()) {
    tree.roots_.emplace_back(prefix, *value);
  }
  for (auto& [prefix, value] : tree.trie_.leaves()) {
    tree.leaves_.emplace_back(prefix, *value);
  }
  span.add_records(tree.leaves_.size());
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("sublet_alloc_tree_builds_total",
              "Allocation trie freeze passes")
      .add(1);
  reg.gauge("sublet_alloc_tree_leaves",
            "Leaf allocations in the most recent trie build")
      .set(static_cast<std::int64_t>(tree.leaves_.size()));
  return tree;
}

std::optional<AllocEntry> AllocationTree::root_of(const Prefix& prefix) const {
  auto hit = trie_.least_specific_covering(prefix);
  if (!hit) return std::nullopt;
  return AllocEntry{hit->first, *hit->second};
}

const InetBlock* AllocationTree::find(const Prefix& prefix) const {
  const InetBlock* const* entry = trie_.find(prefix);
  return entry ? *entry : nullptr;
}

}  // namespace sublet::whois
