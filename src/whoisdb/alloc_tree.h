// Address allocation tree — paper step 2.
//
// All non-legacy address blocks of one RIR are converted from ranges to
// CIDR prefixes (one tree node per covering prefix), hyper-specifics longer
// than /24 are dropped, and the resulting prefix forest exposes its roots
// (portable space allocated by the RIR) and leaves (the most specific
// sub-allocations — the lease candidates).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "netbase/prefix_trie.h"
#include "whoisdb/model.h"

namespace sublet::whois {

struct AllocOptions {
  /// Prefixes longer than this are hyper-specifics for internal
  /// infrastructure use and are excluded (§5.1; Sediqi et al. 2022).
  int max_prefix_len = 24;
  /// Legacy space has no defined portability and is excluded by default.
  bool include_legacy = false;
};

/// One entry of the allocation forest. `block` points into the WhoisDb the
/// tree was built from — the tree must not outlive that database.
using AllocEntry = std::pair<Prefix, const InetBlock*>;

class AllocationTree {
 public:
  /// Build from a parsed database. Blocks whose range is invalid are
  /// skipped. When two blocks map to the same prefix the more recently
  /// parsed one wins (mirrors databases where a re-registration shadows a
  /// stale object).
  static AllocationTree build(const WhoisDb& db, AllocOptions options = {});

  /// Structural roots: entries with no covering entry. Paper: portable
  /// blocks directly allocated by the RIR.
  const std::vector<AllocEntry>& roots() const { return roots_; }

  /// Structural leaves: entries with no covered entry. Paper: the
  /// sub-allocations whose lease status we classify.
  const std::vector<AllocEntry>& leaves() const { return leaves_; }

  /// The root entry covering `prefix` (the least-specific covering entry),
  /// or nullopt for prefixes outside the forest.
  std::optional<AllocEntry> root_of(const Prefix& prefix) const;

  /// Exact-prefix lookup.
  const InetBlock* find(const Prefix& prefix) const;

  /// Blocks excluded by the hyper-specific filter / legacy rule, for
  /// accounting and the A3 ablation.
  std::size_t skipped_hyper_specific() const { return skipped_hyper_; }
  std::size_t skipped_legacy() const { return skipped_legacy_; }

  std::size_t size() const { return trie_.size(); }

 private:
  PrefixTrie<const InetBlock*> trie_;
  std::vector<AllocEntry> roots_;
  std::vector<AllocEntry> leaves_;
  std::size_t skipped_hyper_ = 0;
  std::size_t skipped_legacy_ = 0;
};

}  // namespace sublet::whois
