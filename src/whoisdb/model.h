// Typed WHOIS database model shared by all five RIR dialects.
//
// The paper's step 1 reduces each RIR database to three object kinds:
// address blocks (inetnum/NetHandle), AS numbers (aut-num/ASHandle), and
// organisations (organisation/OrgID/owner). Maintainer handles are kept on
// blocks and organisations because the evaluation (§5.3) joins registered
// brokers to their blocks through maintainers.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "netbase/asn.h"
#include "netbase/ipv4.h"
#include "whoisdb/rir.h"

namespace sublet::whois {

/// RIR portability category (§2.1 of the paper).
enum class Portability {
  kPortable,     ///< directly distributed by the RIR; holder picks any ISP
  kNonPortable,  ///< sub-allocated/assigned by an address provider
  kLegacy,       ///< pre-RIR space; portability undefined
  kUnknown,      ///< unrecognized status string
};

constexpr std::string_view portability_name(Portability p) {
  switch (p) {
    case Portability::kPortable: return "portable";
    case Portability::kNonPortable: return "non-portable";
    case Portability::kLegacy: return "legacy";
    case Portability::kUnknown: return "unknown";
  }
  return "?";
}

/// One address block (inetnum / NetHandle / LACNIC inetnum).
struct InetBlock {
  AddrRange range{};                   ///< inclusive address range
  std::string netname;
  std::string status;                  ///< raw status / NetType text
  Portability portability = Portability::kUnknown;
  std::string org_id;                  ///< org / OrgID / ownerid (raw case)
  std::vector<std::string> maintainers;  ///< mnt-by; ARIN/LACNIC: org handle
  std::string country;
  Rir rir = Rir::kRipe;
};

/// One AS number record (aut-num / ASHandle).
struct AutNumRec {
  Asn asn;
  std::string as_name;
  std::string org_id;
  std::vector<std::string> maintainers;
  Rir rir = Rir::kRipe;
};

/// One organisation record (organisation / OrgID / owner).
struct OrgRec {
  std::string id;                      ///< handle (raw case)
  std::string name;
  std::vector<std::string> maintainers;  ///< mnt-by + mnt-ref
  std::string country;
  Rir rir = Rir::kRipe;
};

/// A parsed single-RIR database with the joins the pipeline needs.
class WhoisDb {
 public:
  explicit WhoisDb(Rir rir) : rir_(rir) {}

  Rir rir() const { return rir_; }

  void add_block(InetBlock block) { blocks_.push_back(std::move(block)); }
  void add_autnum(AutNumRec autnum);
  void add_org(OrgRec org);

  /// Pre-size the record vectors (bulk parsers estimate counts from the
  /// input size before inserting).
  void reserve(std::size_t blocks, std::size_t autnums = 0);

  /// How merge() resolves two org records with the same handle.
  enum class OrgMerge {
    kOverwrite,     ///< `other` wins — matches re-parsing explicit objects
                    ///  where the most recently parsed record shadows
    kKeepExisting,  ///< this db wins — matches LACNIC's synthesized orgs,
                    ///  where only the first owner/ownerid pair counts
  };

  /// Append every record of `other` (same RIR) after this database's
  /// records, preserving insertion order — the chunk-merge step of the
  /// parallel parser. Block and aut-num order is concatenation; duplicate
  /// ASNs keep the first-seen record (as in a serial parse); org conflicts
  /// resolve per `org_merge`.
  void merge(WhoisDb&& other, OrgMerge org_merge);

  const std::vector<InetBlock>& blocks() const { return blocks_; }
  const std::vector<AutNumRec>& autnums() const { return autnums_; }

  /// Organisation by handle (case-insensitive), or nullptr.
  const OrgRec* org(std::string_view id) const;

  /// All org records (iteration order unspecified).
  std::vector<const OrgRec*> all_orgs() const;

  /// RIR-assigned ASNs of an organisation: every aut-num whose org field
  /// matches `org_id` (case-insensitive). Paper step 3.
  std::vector<Asn> asns_for_org(std::string_view org_id) const;

  /// aut-num record lookup.
  const AutNumRec* autnum(Asn asn) const;

  std::size_t block_count() const { return blocks_.size(); }

 private:
  Rir rir_;
  std::vector<InetBlock> blocks_;
  std::vector<AutNumRec> autnums_;
  std::unordered_map<std::string, OrgRec> orgs_;             // key lowercased
  std::unordered_map<std::string, std::vector<std::size_t>> org_to_autnums_;
  std::unordered_map<std::uint32_t, std::size_t> asn_index_;
};

}  // namespace sublet::whois
