// Per-RIR status vocabulary → portability (paper §2.1).
#pragma once

#include <string_view>

#include "whoisdb/model.h"

namespace sublet::whois {

/// Classify a raw status / NetType string for the given RIR.
///
/// Vocabulary (case-insensitive):
///  - RIPE / AFRINIC: ALLOCATED PA, ALLOCATED PI, ALLOCATED UNSPECIFIED,
///    ASSIGNED PI, ASSIGNED ANYCAST (portable); SUB-ALLOCATED PA,
///    ASSIGNED PA (non-portable); LEGACY.
///  - APNIC: ALLOCATED PORTABLE, ASSIGNED PORTABLE (portable);
///    ALLOCATED NON-PORTABLE, ASSIGNED NON-PORTABLE (non-portable).
///  - ARIN (NetType): allocation, assignment, direct allocation, direct
///    assignment (portable); reallocation, reassignment (non-portable).
///  - LACNIC: allocated, assigned (portable); reallocated, reassigned
///    (non-portable).
/// Anything else maps to kUnknown.
Portability classify_status(Rir rir, std::string_view status);

}  // namespace sublet::whois
