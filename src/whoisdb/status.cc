#include "whoisdb/status.h"

#include "util/strings.h"

namespace sublet::whois {

namespace {

Portability classify_ripe_style(std::string_view s) {
  if (iequals(s, "ALLOCATED PA") || iequals(s, "ALLOCATED PI") ||
      iequals(s, "ALLOCATED UNSPECIFIED") || iequals(s, "ASSIGNED PI") ||
      iequals(s, "ASSIGNED ANYCAST")) {
    return Portability::kPortable;
  }
  if (iequals(s, "SUB-ALLOCATED PA") || iequals(s, "ASSIGNED PA")) {
    return Portability::kNonPortable;
  }
  if (iequals(s, "LEGACY")) return Portability::kLegacy;
  return Portability::kUnknown;
}

Portability classify_apnic(std::string_view s) {
  if (iequals(s, "ALLOCATED PORTABLE") || iequals(s, "ASSIGNED PORTABLE")) {
    return Portability::kPortable;
  }
  if (iequals(s, "ALLOCATED NON-PORTABLE") ||
      iequals(s, "ASSIGNED NON-PORTABLE")) {
    return Portability::kNonPortable;
  }
  if (iequals(s, "LEGACY")) return Portability::kLegacy;
  return Portability::kUnknown;
}

Portability classify_arin(std::string_view s) {
  if (iequals(s, "allocation") || iequals(s, "assignment") ||
      iequals(s, "direct allocation") || iequals(s, "direct assignment")) {
    return Portability::kPortable;
  }
  if (iequals(s, "reallocation") || iequals(s, "reassignment")) {
    return Portability::kNonPortable;
  }
  // ARIN marks legacy space as direct allocations with a legacy flag in the
  // registration date era; our generator emits the explicit marker.
  if (iequals(s, "legacy")) return Portability::kLegacy;
  return Portability::kUnknown;
}

Portability classify_lacnic(std::string_view s) {
  if (iequals(s, "allocated") || iequals(s, "assigned")) {
    return Portability::kPortable;
  }
  if (iequals(s, "reallocated") || iequals(s, "reassigned")) {
    return Portability::kNonPortable;
  }
  if (iequals(s, "legacy")) return Portability::kLegacy;
  return Portability::kUnknown;
}

}  // namespace

Portability classify_status(Rir rir, std::string_view status) {
  std::string_view s = trim(status);
  switch (rir) {
    case Rir::kRipe:
    case Rir::kAfrinic:
      return classify_ripe_style(s);
    case Rir::kApnic:
      return classify_apnic(s);
    case Rir::kArin:
      return classify_arin(s);
    case Rir::kLacnic:
      return classify_lacnic(s);
  }
  return Portability::kUnknown;
}

}  // namespace sublet::whois
