// WHOIS database serialization — the write side of the three dialects.
//
// Complements parse.h: objects written here parse back identically through
// parse_whois_db(). Used by the synthetic-Internet generator and by any
// tool that needs to produce registry-shaped fixtures.
#pragma once

#include <iosfwd>
#include <string>

#include "whoisdb/model.h"

namespace sublet::whois {

/// Write a file header comment appropriate for the dialect.
void write_db_header(std::ostream& out, Rir rir);

/// Serialize one address block in the RIR's dialect. For ARIN the first
/// maintainer doubles as the OrgID (ARIN has no maintainer objects); for
/// LACNIC multi-prefix ranges become one CIDR record each and the org name
/// is embedded as `owner`.
void write_block(std::ostream& out, const InetBlock& block,
                 const std::string& owner_name = {},
                 const std::string& net_handle = {});

/// Serialize an AS number record (aut-num / ASHandle).
void write_autnum(std::ostream& out, const AutNumRec& autnum,
                  const std::string& owner_name = {});

/// Serialize an organisation record. LACNIC has no standalone org objects
/// (§5.1) — this is a no-op for LACNIC records.
void write_org(std::ostream& out, const OrgRec& org);

}  // namespace sublet::whois
