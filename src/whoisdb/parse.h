// Dialect frontends: raw RPSL-style objects → typed WhoisDb.
//
// Three on-disk dialects cover the five RIRs:
//  - RPSL (RIPE, APNIC, AFRINIC): inetnum / aut-num / organisation objects,
//    address blocks as inclusive ranges, maintainers in mnt-by / mnt-ref;
//  - ARIN bulk: NetHandle / ASHandle / OrgID blocks, NetRange + NetType,
//    organisations joined by OrgID (ARIN has no maintainer objects, so the
//    OrgID doubles as the "maintainer" handle, mirroring how the paper maps
//    ARIN brokers);
//  - LACNIC: inetnum blocks in CIDR notation with owner/ownerid inline
//    (LACNIC does not store organisations independently — §5.1); org
//    records are synthesized from the ownerid/owner pairs encountered.
//
// Parsing is parallel by default: inputs are split at paragraph (blank
// line) boundaries — an RPSL object can never span one — the slices are
// parsed on a thread pool, and the per-slice databases are merged back in
// input order. The result (records, joins, diagnostics, and their order)
// is identical to a serial parse; `threads = 1` runs the untouched
// streaming path. See docs/THREADING.md.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/expected.h"
#include "whoisdb/model.h"

namespace sublet::whois {

/// Parse one RIR's database from a stream. Per-record problems (bad range,
/// unknown class, missing handle) are appended to `diagnostics` and the
/// record skipped; parsing continues. `threads`: 0 = process default
/// (par::set_default_threads / --threads), 1 = serial streaming parse,
/// N = parse paragraph chunks on N threads (the stream is slurped first).
WhoisDb parse_whois_db(std::istream& in, Rir rir, std::string source = {},
                       std::vector<Error>* diagnostics = nullptr,
                       unsigned threads = 1);

/// Parse a whole in-memory database. Same semantics as parse_whois_db;
/// the natural entry point for the chunked parallel path.
WhoisDb parse_whois_text(std::string_view text, Rir rir,
                         std::string source = {},
                         std::vector<Error>* diagnostics = nullptr,
                         unsigned threads = 0);

/// Open and parse a database file. Throws std::runtime_error if
/// unreadable. `threads` as in parse_whois_text (default: process-wide).
WhoisDb load_whois_file(const std::string& path, Rir rir,
                        std::vector<Error>* diagnostics = nullptr,
                        unsigned threads = 0);

}  // namespace sublet::whois
