// Dialect frontends: raw RPSL-style objects → typed WhoisDb.
//
// Three on-disk dialects cover the five RIRs:
//  - RPSL (RIPE, APNIC, AFRINIC): inetnum / aut-num / organisation objects,
//    address blocks as inclusive ranges, maintainers in mnt-by / mnt-ref;
//  - ARIN bulk: NetHandle / ASHandle / OrgID blocks, NetRange + NetType,
//    organisations joined by OrgID (ARIN has no maintainer objects, so the
//    OrgID doubles as the "maintainer" handle, mirroring how the paper maps
//    ARIN brokers);
//  - LACNIC: inetnum blocks in CIDR notation with owner/ownerid inline
//    (LACNIC does not store organisations independently — §5.1); org
//    records are synthesized from the ownerid/owner pairs encountered.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/expected.h"
#include "whoisdb/model.h"

namespace sublet::whois {

/// Parse one RIR's database from a stream. Per-record problems (bad range,
/// unknown class, missing handle) are appended to `diagnostics` and the
/// record skipped; parsing continues.
WhoisDb parse_whois_db(std::istream& in, Rir rir, std::string source = {},
                       std::vector<Error>* diagnostics = nullptr);

/// Open and parse a database file. Throws std::runtime_error if unreadable.
WhoisDb load_whois_file(const std::string& path, Rir rir,
                        std::vector<Error>* diagnostics = nullptr);

}  // namespace sublet::whois
