// Registry churn: structural diff between two WHOIS database snapshots.
//
// Lease onboarding leaves registry fingerprints before BGP ever sees the
// prefix: a new sub-allocation appears, or an existing block's maintainer
// flips to a broker handle. Diffing monthly snapshots surfaces those
// events (complements the BGP-driven churn in leasing/churn.h).
#pragma once

#include <string>
#include <vector>

#include "netbase/ipv4.h"
#include "whoisdb/model.h"

namespace sublet::whois {

struct BlockChange {
  enum class Kind {
    kAdded,              ///< block present only in the newer snapshot
    kRemoved,            ///< block present only in the older snapshot
    kMaintainerChanged,  ///< same prefix, different maintainer set
    kStatusChanged,      ///< same prefix, different status text
    kOrgChanged,         ///< same prefix, different org handle
  };
  Prefix prefix;
  Kind kind = Kind::kAdded;
  std::string before;  ///< old value ("" for kAdded)
  std::string after;   ///< new value ("" for kRemoved)
};

constexpr std::string_view change_kind_name(BlockChange::Kind kind) {
  switch (kind) {
    case BlockChange::Kind::kAdded: return "added";
    case BlockChange::Kind::kRemoved: return "removed";
    case BlockChange::Kind::kMaintainerChanged: return "maintainer-changed";
    case BlockChange::Kind::kStatusChanged: return "status-changed";
    case BlockChange::Kind::kOrgChanged: return "org-changed";
  }
  return "?";
}

/// Diff two snapshots of the same RIR's database. Blocks are keyed by
/// their covering CIDR prefixes (hyper-specifics beyond `max_prefix_len`
/// ignored, mirroring the pipeline's step 2). A prefix with several field
/// changes yields several BlockChange rows, ordered by prefix then kind.
std::vector<BlockChange> diff_databases(const WhoisDb& before,
                                        const WhoisDb& after,
                                        int max_prefix_len = 24);

}  // namespace sublet::whois
