#include "whoisdb/model.h"

#include "util/strings.h"

namespace sublet::whois {

std::optional<Rir> rir_from_name(std::string_view name) {
  for (Rir rir : kAllRirs) {
    if (iequals(name, rir_name(rir))) return rir;
  }
  return std::nullopt;
}

void WhoisDb::add_autnum(AutNumRec autnum) {
  std::size_t index = autnums_.size();
  asn_index_.emplace(autnum.asn.value(), index);
  if (!autnum.org_id.empty()) {
    org_to_autnums_[to_lower(autnum.org_id)].push_back(index);
  }
  autnums_.push_back(std::move(autnum));
}

void WhoisDb::add_org(OrgRec org) {
  std::string key = to_lower(org.id);
  orgs_[key] = std::move(org);
}

void WhoisDb::reserve(std::size_t blocks, std::size_t autnums) {
  blocks_.reserve(blocks_.size() + blocks);
  if (autnums) {
    autnums_.reserve(autnums_.size() + autnums);
    asn_index_.reserve(asn_index_.size() + autnums);
  }
}

void WhoisDb::merge(WhoisDb&& other, OrgMerge org_merge) {
  blocks_.insert(blocks_.end(),
                 std::make_move_iterator(other.blocks_.begin()),
                 std::make_move_iterator(other.blocks_.end()));
  // add_autnum rebuilds asn_index_/org_to_autnums_ against the combined
  // indices; emplace semantics keep the first-seen record per ASN.
  autnums_.reserve(autnums_.size() + other.autnums_.size());
  for (AutNumRec& autnum : other.autnums_) add_autnum(std::move(autnum));
  for (auto& [key, org] : other.orgs_) {
    if (org_merge == OrgMerge::kKeepExisting) {
      orgs_.emplace(key, std::move(org));
    } else {
      orgs_[key] = std::move(org);
    }
  }
}

const OrgRec* WhoisDb::org(std::string_view id) const {
  auto it = orgs_.find(to_lower(id));
  return it == orgs_.end() ? nullptr : &it->second;
}

std::vector<const OrgRec*> WhoisDb::all_orgs() const {
  std::vector<const OrgRec*> out;
  out.reserve(orgs_.size());
  for (const auto& [key, org] : orgs_) out.push_back(&org);
  return out;
}

std::vector<Asn> WhoisDb::asns_for_org(std::string_view org_id) const {
  auto it = org_to_autnums_.find(to_lower(org_id));
  if (it == org_to_autnums_.end()) return {};
  std::vector<Asn> out;
  out.reserve(it->second.size());
  for (std::size_t index : it->second) out.push_back(autnums_[index].asn);
  return out;
}

const AutNumRec* WhoisDb::autnum(Asn asn) const {
  auto it = asn_index_.find(asn.value());
  return it == asn_index_.end() ? nullptr : &autnums_[it->second];
}

}  // namespace sublet::whois
