// Abusive-ASN list readers: Spamhaus ASN-DROP and serial-hijacker lists.
//
// ASN-DROP ships as JSON Lines ({"asn":213371,"rir":"ripencc",...}); the
// historical format was "AS123 ; name". Both are accepted. The serial
// hijacker list (Testart et al. IMC'19) is one ASN per line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_set>
#include <vector>

#include "netbase/asn.h"
#include "util/expected.h"

namespace sublet::abuse {

/// A set of ASNs considered abusive, with provenance-free membership tests.
class AsnSet {
 public:
  void add(Asn asn) { asns_.insert(asn.value()); }
  bool contains(Asn asn) const { return asns_.contains(asn.value()); }
  std::size_t size() const { return asns_.size(); }
  std::vector<Asn> all() const;

  /// Parse ASN-DROP: JSON Lines with an "asn" field, or "AS123 ; comment"
  /// lines. Unparseable lines are diagnosed and skipped.
  static AsnSet parse_drop(std::istream& in, std::string source = {},
                           std::vector<Error>* diagnostics = nullptr);

  /// Parse a plain list: one ASN per line ("123" or "AS123"), '#' comments.
  static AsnSet parse_plain(std::istream& in, std::string source = {},
                            std::vector<Error>* diagnostics = nullptr);

  static AsnSet load_drop(const std::string& path,
                          std::vector<Error>* diagnostics = nullptr);
  static AsnSet load_plain(const std::string& path,
                           std::vector<Error>* diagnostics = nullptr);

  /// Serialize as JSON Lines in the ASN-DROP layout (sorted).
  void write_drop(std::ostream& out) const;
  /// Serialize as a plain list (sorted).
  void write_plain(std::ostream& out) const;

 private:
  std::unordered_set<std::uint32_t> asns_;
};

}  // namespace sublet::abuse
