#include "abuse/asn_lists.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/strings.h"

namespace sublet::abuse {

std::vector<Asn> AsnSet::all() const {
  std::vector<Asn> out;
  out.reserve(asns_.size());
  for (std::uint32_t v : asns_) out.push_back(Asn(v));
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Extract the number following `"asn":` in a JSON-lines record. A full
/// JSON parser is unnecessary: the field is numeric and unescaped.
std::optional<Asn> extract_json_asn(std::string_view line) {
  auto pos = line.find("\"asn\"");
  if (pos == std::string_view::npos) return std::nullopt;
  pos = line.find(':', pos);
  if (pos == std::string_view::npos) return std::nullopt;
  ++pos;
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  std::size_t end = pos;
  while (end < line.size() && line[end] >= '0' && line[end] <= '9') ++end;
  if (end == pos) return std::nullopt;
  return Asn::parse(line.substr(pos, end - pos));
}

}  // namespace

AsnSet AsnSet::parse_drop(std::istream& in, std::string source,
                          std::vector<Error>* diagnostics) {
  AsnSet set;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view view = trim(line);
    if (view.empty() || view.front() == ';' || view.front() == '#') continue;
    if (view.front() == '{') {
      if (auto asn = extract_json_asn(view)) {
        set.add(*asn);
        continue;
      }
      // Metadata records ({"type":"metadata",...}) carry no "asn" field.
      if (view.find("\"type\"") != std::string_view::npos) continue;
      if (diagnostics) {
        diagnostics->push_back(fail("JSON record without asn", source, line_no));
      }
      continue;
    }
    // Historical "AS123 ; SOMENAME" format.
    auto semi = view.find(';');
    if (semi != std::string_view::npos) view = trim(view.substr(0, semi));
    if (auto asn = Asn::parse(view)) {
      set.add(*asn);
    } else if (diagnostics) {
      diagnostics->push_back(
          fail("bad DROP line '" + std::string(view) + "'", source, line_no));
    }
  }
  return set;
}

AsnSet AsnSet::parse_plain(std::istream& in, std::string source,
                           std::vector<Error>* diagnostics) {
  AsnSet set;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view view = trim(line);
    if (view.empty() || view.front() == '#') continue;
    if (auto asn = Asn::parse(view)) {
      set.add(*asn);
    } else if (diagnostics) {
      diagnostics->push_back(
          fail("bad ASN '" + std::string(view) + "'", source, line_no));
    }
  }
  return set;
}

AsnSet AsnSet::load_drop(const std::string& path,
                         std::vector<Error>* diagnostics) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open DROP list: " + path);
  return parse_drop(in, path, diagnostics);
}

AsnSet AsnSet::load_plain(const std::string& path,
                          std::vector<Error>* diagnostics) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open ASN list: " + path);
  return parse_plain(in, path, diagnostics);
}

void AsnSet::write_drop(std::ostream& out) const {
  for (Asn asn : all()) {
    out << "{\"asn\":" << asn.value() << ",\"rir\":\"sim\",\"asname\":\"AS"
        << asn.value() << "\"}\n";
  }
}

void AsnSet::write_plain(std::ostream& out) const {
  out << "# one ASN per line\n";
  for (Asn asn : all()) out << asn.value() << '\n';
}

}  // namespace sublet::abuse
