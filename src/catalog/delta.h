// Delta snapshot: one epoch encoded as changes against a named base
// (docs/TIMETRAVEL.md).
//
// `encode_delta` diffs two canonical record lists into a SUBLDELT image;
// `Delta` opens and fully validates one — same untrusted-input posture as
// snapshot::Snapshot: magic/version/CRC, section bounds and alignment,
// meta cross-checks, monotone string offsets, and every record span
// checked against the delta-local pools, so the apply path can index the
// sections unchecked.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/format.h"
#include "leasing/types.h"
#include "snapshot/snapshot.h"
#include "util/expected.h"

namespace sublet::catalog {

/// Canonical record order for every catalog artifact: sorted by (network
/// bits, prefix length), duplicate prefixes collapsed keeping the last —
/// the same winner PrefixTrie::freeze picks. Both the full snapshot of an
/// epoch and the delta against its base are encoded from canonical lists,
/// which is what makes "full snapshot of epoch K" and "base + delta chain
/// re-encoded" byte-identical (the differential suite pins this).
std::vector<leasing::LeaseInference> canonical_inferences(
    std::vector<leasing::LeaseInference> inferences);

/// Field-by-field record equality (evidence included) — the delta encoder
/// keeps a record out of the upsert set only when nothing changed.
bool same_inference(const leasing::LeaseInference& a,
                    const leasing::LeaseInference& b);

/// Encode `next` as a delta against `base`. Both lists must be canonical
/// (see canonical_inferences). Returns the SUBLDELT image.
std::vector<std::uint8_t> encode_delta(
    std::uint32_t base_epoch, const std::vector<leasing::LeaseInference>& base,
    std::uint32_t epoch, const std::vector<leasing::LeaseInference>& next);

class Delta {
 public:
  /// Open and fully validate a delta file (heap read; deltas are small).
  static Expected<Delta> open(const std::string& path);
  /// Validate an in-memory image (tests).
  static Expected<Delta> from_bytes(std::vector<std::uint8_t> bytes);

  std::uint32_t epoch() const {
    return static_cast<std::uint32_t>(counts_.epoch);
  }
  std::uint32_t base_epoch() const {
    return static_cast<std::uint32_t>(counts_.base_epoch);
  }

  std::span<const RemovedEntry> removed() const { return removed_; }
  std::span<const snapshot::RecordRow> rows() const { return rows_; }
  std::span<const char> string_blob() const { return string_blob_; }
  std::span<const std::uint32_t> string_offsets() const {
    return string_offsets_;
  }
  std::span<const std::uint32_t> asn_pool() const { return asn_pool_; }
  std::span<const std::uint32_t> handle_pool() const { return handle_pool_; }
  std::size_t string_count() const { return string_offsets_.size() - 1; }

  std::string_view string_at(std::uint32_t id) const {
    return std::string_view(string_blob_.data() + string_offsets_[id],
                            string_offsets_[id + 1] - string_offsets_[id]);
  }

  /// Rebuild the full LeaseInference for upsert row `idx` — the slow
  /// canonical reconstruction path (Catalog::reconstruct, verify --deep).
  leasing::LeaseInference materialize(std::size_t idx) const;

  std::size_t file_bytes() const { return buffer_.bytes().size(); }

 private:
  static Expected<Delta> parse(snapshot::Buffer buffer);

  snapshot::Buffer buffer_;
  DeltaCounts counts_;
  std::span<const RemovedEntry> removed_;
  std::span<const snapshot::RecordRow> rows_;
  std::span<const char> string_blob_;
  std::span<const std::uint32_t> string_offsets_;
  std::span<const std::uint32_t> asn_pool_;
  std::span<const std::uint32_t> handle_pool_;
};

}  // namespace sublet::catalog
