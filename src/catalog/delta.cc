#include "catalog/delta.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "snapshot/format.h"
#include "util/binio.h"

namespace sublet::catalog {

static_assert(std::endian::native == std::endian::little,
              "delta bulk sections are raw little-endian arenas");

namespace {

/// (network, length) ordering shared by every catalog artifact.
bool key_less(const Prefix& a, const Prefix& b) {
  if (a.network().value() != b.network().value()) {
    return a.network().value() < b.network().value();
  }
  return a.length() < b.length();
}

/// Deduplicating string pool, identical algorithm to the snapshot
/// writer's: id = insertion index, id 0 = empty string.
class StringPool {
 public:
  std::uint32_t intern(const std::string& s) {
    auto [it, inserted] =
        ids_.emplace(s, static_cast<std::uint32_t>(offsets_.size() - 1));
    if (inserted) {
      blob_ += s;
      offsets_.push_back(static_cast<std::uint32_t>(blob_.size()));
    }
    return it->second;
  }

  const std::string& blob() const { return blob_; }
  const std::vector<std::uint32_t>& offsets() const { return offsets_; }
  std::size_t count() const { return offsets_.size() - 1; }

 private:
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::string blob_;
  std::vector<std::uint32_t> offsets_ = {0};
};

}  // namespace

std::vector<leasing::LeaseInference> canonical_inferences(
    std::vector<leasing::LeaseInference> inferences) {
  std::stable_sort(inferences.begin(), inferences.end(),
                   [](const leasing::LeaseInference& a,
                      const leasing::LeaseInference& b) {
                     return key_less(a.prefix, b.prefix);
                   });
  // Collapse duplicate prefixes keeping the last — the same winner the
  // trie freeze picks, so records and trie never disagree.
  std::size_t out = 0;
  for (std::size_t i = 0; i < inferences.size(); ++i) {
    if (i + 1 < inferences.size() &&
        inferences[i + 1].prefix == inferences[i].prefix) {
      continue;
    }
    if (out != i) inferences[out] = std::move(inferences[i]);
    ++out;
  }
  inferences.resize(out);
  return inferences;
}

bool same_inference(const leasing::LeaseInference& a,
                    const leasing::LeaseInference& b) {
  return a.prefix == b.prefix && a.rir == b.rir && a.group == b.group &&
         a.root_prefix == b.root_prefix && a.holder_org == b.holder_org &&
         a.holder_asns == b.holder_asns && a.leaf_origins == b.leaf_origins &&
         a.root_origins == b.root_origins &&
         a.leaf_maintainers == b.leaf_maintainers &&
         a.root_maintainers == b.root_maintainers && a.netname == b.netname;
}

std::vector<std::uint8_t> encode_delta(
    std::uint32_t base_epoch, const std::vector<leasing::LeaseInference>& base,
    std::uint32_t epoch,
    const std::vector<leasing::LeaseInference>& next) {
  // Two-pointer diff over the canonical orders: records only in `base`
  // are removals, records only in `next` (or changed in place) upserts.
  std::vector<RemovedEntry> removed;
  std::vector<const leasing::LeaseInference*> upserts;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < base.size() || j < next.size()) {
    if (j == next.size() ||
        (i < base.size() && key_less(base[i].prefix, next[j].prefix))) {
      RemovedEntry gone;
      gone.prefix_key = base[i].prefix.network().value();
      gone.prefix_len = static_cast<std::uint8_t>(base[i].prefix.length());
      removed.push_back(gone);
      ++i;
    } else if (i == base.size() ||
               key_less(next[j].prefix, base[i].prefix)) {
      upserts.push_back(&next[j]);
      ++j;
    } else {
      if (!same_inference(base[i], next[j])) upserts.push_back(&next[j]);
      ++i;
      ++j;
    }
  }

  StringPool strings;
  strings.intern(std::string());  // id 0 = empty string
  std::vector<std::uint32_t> asn_pool;
  std::vector<std::uint32_t> handle_pool;
  std::vector<snapshot::RecordRow> rows;
  rows.reserve(upserts.size());

  auto pack_asns = [&](const std::vector<Asn>& asns, std::uint32_t& off,
                       std::uint32_t& count) {
    off = static_cast<std::uint32_t>(asn_pool.size());
    count = static_cast<std::uint32_t>(asns.size());
    for (Asn asn : asns) asn_pool.push_back(asn.value());
  };
  auto pack_handles = [&](const std::vector<std::string>& handles,
                          std::uint32_t& off, std::uint32_t& count) {
    off = static_cast<std::uint32_t>(handle_pool.size());
    count = static_cast<std::uint32_t>(handles.size());
    for (const std::string& h : handles) {
      handle_pool.push_back(strings.intern(h));
    }
  };
  for (const leasing::LeaseInference* r : upserts) {
    snapshot::RecordRow row;
    row.prefix_key = r->prefix.network().value();
    row.prefix_len = static_cast<std::uint8_t>(r->prefix.length());
    row.root_key = r->root_prefix.network().value();
    row.root_len = static_cast<std::uint8_t>(r->root_prefix.length());
    row.rir = static_cast<std::uint8_t>(r->rir);
    row.group = static_cast<std::uint8_t>(r->group);
    row.holder_org = strings.intern(r->holder_org);
    row.netname = strings.intern(r->netname);
    pack_asns(r->holder_asns, row.holder_asns_off, row.holder_asns_count);
    pack_asns(r->leaf_origins, row.leaf_origins_off, row.leaf_origins_count);
    pack_asns(r->root_origins, row.root_origins_off, row.root_origins_count);
    pack_handles(r->leaf_maintainers, row.leaf_maint_off,
                 row.leaf_maint_count);
    pack_handles(r->root_maintainers, row.root_maint_off,
                 row.root_maint_count);
    rows.push_back(row);
  }

  ByteWriter meta;
  meta.varint(epoch);
  meta.varint(base_epoch);
  meta.varint(removed.size());
  meta.varint(rows.size());
  meta.varint(strings.count());
  meta.varint(strings.blob().size());
  meta.varint(asn_pool.size());
  meta.varint(handle_pool.size());

  auto as_bytes = [](const auto& vec) {
    return std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(vec.data()),
        vec.size() * sizeof(vec[0]));
  };

  ByteWriter payload;
  struct SectionEntry {
    DeltaSectionId id;
    std::uint64_t offset;
    std::uint64_t length;
  };
  std::vector<SectionEntry> sections;
  auto emit = [&](DeltaSectionId id, std::span<const std::uint8_t> bytes) {
    payload.pad_to(snapshot::kSectionAlignment);
    sections.push_back(SectionEntry{id, payload.size(), bytes.size()});
    payload.bytes(bytes);
  };
  emit(DeltaSectionId::kMeta, meta.data());
  emit(DeltaSectionId::kRemoved, as_bytes(removed));
  emit(DeltaSectionId::kStringBlob,
       {reinterpret_cast<const std::uint8_t*>(strings.blob().data()),
        strings.blob().size()});
  emit(DeltaSectionId::kStringOffsets, as_bytes(strings.offsets()));
  emit(DeltaSectionId::kAsnPool, as_bytes(asn_pool));
  emit(DeltaSectionId::kHandlePool, as_bytes(handle_pool));
  emit(DeltaSectionId::kRecords, as_bytes(rows));

  ByteWriter table;
  for (const SectionEntry& s : sections) {
    table.u32(static_cast<std::uint32_t>(s.id));
    table.u32(0);
    table.u64(s.offset);
    table.u64(s.length);
  }

  std::uint32_t crc = crc32(table.data());
  crc = crc32(payload.data(), crc);

  ByteWriter out;
  out.string(std::string_view(kDeltaMagic, sizeof(kDeltaMagic)));
  out.u16(kDeltaVersion);
  out.u16(snapshot::kFlagLittleEndian);
  out.u32(static_cast<std::uint32_t>(kDeltaSectionCount));
  out.u64(payload.size());
  out.u32(crc);
  out.u32(0);  // reserved
  out.bytes(table.data());
  out.bytes(payload.data());
  return out.take();
}

Expected<Delta> Delta::open(const std::string& path) {
  auto buffer = snapshot::Buffer::read_file(path);
  if (!buffer) return buffer.error();
  auto delta = parse(std::move(*buffer));
  if (!delta) {
    Error error = delta.error();
    error.source = path;
    return error;
  }
  return delta;
}

Expected<Delta> Delta::from_bytes(std::vector<std::uint8_t> bytes) {
  return parse(snapshot::Buffer(std::move(bytes)));
}

Expected<Delta> Delta::parse(snapshot::Buffer buffer) {
  const std::span<const std::uint8_t> file = buffer.bytes();
  if (file.size() < snapshot::kHeaderSize) {
    return fail("truncated delta header");
  }
  ByteReader header(file.subspan(0, snapshot::kHeaderSize));
  if (std::memcmp(header.bytes(sizeof(kDeltaMagic)).data(), kDeltaMagic,
                  sizeof(kDeltaMagic)) != 0) {
    return fail("bad delta magic");
  }
  const std::uint16_t version = header.u16();
  if (version != kDeltaVersion) {
    return fail("unsupported delta version " + std::to_string(version));
  }
  const std::uint16_t flags = header.u16();
  if ((flags & snapshot::kFlagLittleEndian) == 0) {
    return fail("delta is not little-endian");
  }
  const std::uint32_t section_count = header.u32();
  const std::uint64_t payload_size = header.u64();
  const std::uint32_t expect_crc = header.u32();
  if (section_count != kDeltaSectionCount) {
    return fail("unexpected delta section count " +
                std::to_string(section_count));
  }
  const std::uint64_t table_bytes =
      std::uint64_t{section_count} * snapshot::kSectionEntrySize;
  if (file.size() - snapshot::kHeaderSize < table_bytes ||
      file.size() - snapshot::kHeaderSize - table_bytes != payload_size) {
    return fail("delta payload size does not match the file");
  }
  const std::span<const std::uint8_t> rest =
      file.subspan(snapshot::kHeaderSize);
  if (crc32(rest) != expect_crc) return fail("delta checksum mismatch");

  const std::span<const std::uint8_t> payload =
      rest.subspan(static_cast<std::size_t>(table_bytes));
  ByteReader table(rest.subspan(0, static_cast<std::size_t>(table_bytes)));
  struct SectionView {
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    bool present = false;
  };
  SectionView sections[kDeltaSectionCount + 1];
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint32_t id = table.u32();
    table.u32();  // reserved
    const std::uint64_t offset = table.u64();
    const std::uint64_t length = table.u64();
    if (id == 0 || id > kDeltaSectionCount) {
      return fail("unknown delta section id " + std::to_string(id));
    }
    if (offset > payload_size || length > payload_size - offset) {
      return fail("delta section overruns the payload");
    }
    if (offset % snapshot::kSectionAlignment != 0) {
      return fail("delta section is misaligned");
    }
    if (sections[id].present) {
      return fail("duplicate delta section id " + std::to_string(id));
    }
    sections[id] = SectionView{offset, length, true};
  }
  for (std::uint32_t id = 1; id <= kDeltaSectionCount; ++id) {
    if (!sections[id].present) {
      return fail("missing delta section id " + std::to_string(id));
    }
  }
  auto section = [&](DeltaSectionId id) {
    const SectionView& s = sections[static_cast<std::uint32_t>(id)];
    return payload.subspan(static_cast<std::size_t>(s.offset),
                           static_cast<std::size_t>(s.length));
  };

  ByteReader meta(section(DeltaSectionId::kMeta));
  DeltaCounts counts;
  counts.epoch = meta.varint();
  counts.base_epoch = meta.varint();
  counts.removed = meta.varint();
  counts.records = meta.varint();
  counts.strings = meta.varint();
  counts.string_blob_bytes = meta.varint();
  counts.asn_pool = meta.varint();
  counts.handle_pool = meta.varint();
  if (!meta.ok()) return fail("corrupt delta meta section");
  if (counts.epoch == 0 || counts.epoch > 0xFFFFFFFFull ||
      counts.base_epoch == 0 || counts.base_epoch >= counts.epoch) {
    return fail("delta epoch chain is not strictly forward");
  }
  if (counts.strings == 0) return fail("delta string pool is empty");

  auto expect_len = [&](DeltaSectionId id, std::uint64_t want,
                        const char* what) -> std::optional<Error> {
    const SectionView& s = sections[static_cast<std::uint32_t>(id)];
    if (s.length != want) {
      return fail(std::string("delta ") + what + " section length mismatch");
    }
    return std::nullopt;
  };
  if (auto e = expect_len(DeltaSectionId::kRemoved,
                          counts.removed * sizeof(RemovedEntry), "removed")) {
    return *e;
  }
  if (auto e = expect_len(DeltaSectionId::kStringBlob,
                          counts.string_blob_bytes, "string blob")) {
    return *e;
  }
  if (auto e = expect_len(DeltaSectionId::kStringOffsets,
                          (counts.strings + 1) * sizeof(std::uint32_t),
                          "string offsets")) {
    return *e;
  }
  if (auto e = expect_len(DeltaSectionId::kAsnPool,
                          counts.asn_pool * sizeof(std::uint32_t),
                          "ASN pool")) {
    return *e;
  }
  if (auto e = expect_len(DeltaSectionId::kHandlePool,
                          counts.handle_pool * sizeof(std::uint32_t),
                          "handle pool")) {
    return *e;
  }
  if (auto e = expect_len(DeltaSectionId::kRecords,
                          counts.records * sizeof(snapshot::RecordRow),
                          "records")) {
    return *e;
  }

  Delta delta;
  delta.buffer_ = std::move(buffer);
  delta.counts_ = counts;
  const std::span<const std::uint8_t> base =
      delta.buffer_.bytes().subspan(snapshot::kHeaderSize +
                                    static_cast<std::size_t>(table_bytes));
  auto view = [&](DeltaSectionId id) {
    const SectionView& s = sections[static_cast<std::uint32_t>(id)];
    return base.subspan(static_cast<std::size_t>(s.offset),
                        static_cast<std::size_t>(s.length));
  };
  auto gone = view(DeltaSectionId::kRemoved);
  delta.removed_ = {reinterpret_cast<const RemovedEntry*>(gone.data()),
                    static_cast<std::size_t>(counts.removed)};
  auto rows = view(DeltaSectionId::kRecords);
  delta.rows_ = {reinterpret_cast<const snapshot::RecordRow*>(rows.data()),
                 static_cast<std::size_t>(counts.records)};
  auto blob = view(DeltaSectionId::kStringBlob);
  delta.string_blob_ = {reinterpret_cast<const char*>(blob.data()),
                        blob.size()};
  auto offsets = view(DeltaSectionId::kStringOffsets);
  delta.string_offsets_ = {
      reinterpret_cast<const std::uint32_t*>(offsets.data()),
      static_cast<std::size_t>(counts.strings + 1)};
  auto asns = view(DeltaSectionId::kAsnPool);
  delta.asn_pool_ = {reinterpret_cast<const std::uint32_t*>(asns.data()),
                     static_cast<std::size_t>(counts.asn_pool)};
  auto handles = view(DeltaSectionId::kHandlePool);
  delta.handle_pool_ = {
      reinterpret_cast<const std::uint32_t*>(handles.data()),
      static_cast<std::size_t>(counts.handle_pool)};

  if (delta.string_offsets_[0] != 0 ||
      delta.string_offsets_[counts.strings] != blob.size()) {
    return fail("delta string offsets do not span the blob");
  }
  for (std::size_t s = 0; s < counts.strings; ++s) {
    if (delta.string_offsets_[s] > delta.string_offsets_[s + 1]) {
      return fail("delta string offsets are not monotone");
    }
  }
  auto canonical = [](std::uint32_t key, std::uint8_t len) {
    if (len > 32) return false;
    const std::uint32_t mask =
        len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
    return (key & ~mask) == 0;
  };
  for (const RemovedEntry& r : delta.removed_) {
    if (!canonical(r.prefix_key, r.prefix_len)) {
      return fail("delta removed entry is not a canonical prefix");
    }
  }
  auto span_ok = [](std::uint32_t off, std::uint32_t count,
                    std::size_t pool) {
    return off <= pool && count <= pool - off;
  };
  for (const snapshot::RecordRow& row : delta.rows_) {
    if (!canonical(row.prefix_key, row.prefix_len) || row.root_len > 32 ||
        row.rir >= whois::kAllRirs.size() ||
        row.group > static_cast<std::uint8_t>(
                        leasing::InferenceGroup::kLeasedWithRoot)) {
      return fail("delta record has out-of-range fields");
    }
    if (row.holder_org >= counts.strings || row.netname >= counts.strings) {
      return fail("delta record references a missing string");
    }
    if (!span_ok(row.holder_asns_off, row.holder_asns_count,
                 delta.asn_pool_.size()) ||
        !span_ok(row.leaf_origins_off, row.leaf_origins_count,
                 delta.asn_pool_.size()) ||
        !span_ok(row.root_origins_off, row.root_origins_count,
                 delta.asn_pool_.size()) ||
        !span_ok(row.leaf_maint_off, row.leaf_maint_count,
                 delta.handle_pool_.size()) ||
        !span_ok(row.root_maint_off, row.root_maint_count,
                 delta.handle_pool_.size())) {
      return fail("delta record evidence span out of range");
    }
  }
  for (std::uint32_t id : delta.handle_pool_) {
    if (id >= counts.strings) {
      return fail("delta handle pool references a missing string");
    }
  }
  return delta;
}

leasing::LeaseInference Delta::materialize(std::size_t idx) const {
  const snapshot::RecordRow& row = rows_[idx];
  leasing::LeaseInference r;
  r.prefix = *Prefix::make(Ipv4Addr(row.prefix_key), row.prefix_len);
  r.root_prefix = *Prefix::make(Ipv4Addr(row.root_key), row.root_len);
  r.rir = static_cast<whois::Rir>(row.rir);
  r.group = static_cast<leasing::InferenceGroup>(row.group);
  r.holder_org = std::string(string_at(row.holder_org));
  r.netname = std::string(string_at(row.netname));
  auto asns = [&](std::uint32_t off, std::uint32_t count) {
    std::vector<Asn> out;
    out.reserve(count);
    for (std::uint32_t k = 0; k < count; ++k) {
      out.push_back(Asn(asn_pool_[off + k]));
    }
    return out;
  };
  auto handles = [&](std::uint32_t off, std::uint32_t count) {
    std::vector<std::string> out;
    out.reserve(count);
    for (std::uint32_t k = 0; k < count; ++k) {
      out.emplace_back(string_at(handle_pool_[off + k]));
    }
    return out;
  };
  r.holder_asns = asns(row.holder_asns_off, row.holder_asns_count);
  r.leaf_origins = asns(row.leaf_origins_off, row.leaf_origins_count);
  r.root_origins = asns(row.root_origins_off, row.root_origins_count);
  r.leaf_maintainers = handles(row.leaf_maint_off, row.leaf_maint_count);
  r.root_maintainers = handles(row.root_maint_off, row.root_maint_count);
  return r;
}

}  // namespace sublet::catalog
