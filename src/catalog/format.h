// On-disk layout of the multi-epoch snapshot catalog (docs/TIMETRAVEL.md).
//
// A catalog is a directory of dated snapshot files plus one index:
//
//   catalog.idx         versioned epoch index (layout below)
//   epoch-<ts>.snap     full snapshot (src/snapshot/format.h, SUBLSNAP)
//   epoch-<ts>.dsnap    delta snapshot against a named base epoch
//
// Delta snapshot file ("SUBLDELT"): the same 32-byte header + aligned
// section-table + trailing-CRC scheme as the full snapshot, carrying only
// what changed since the base epoch — removed leaf prefixes plus upserted
// records with their own deduplicated string/ASN/handle pools. No trie
// sections: the apply path patches the base epoch's trie in memory
// (docs/TIMETRAVEL.md). Sections, in SectionId order:
//
//   kMeta            varints: epoch, base_epoch, removed / record /
//                    string / blob-byte / asn-pool / handle-pool counts
//   kRemoved         RemovedEntry[removed]: leaves present in the base
//                    but absent from this epoch
//   kStringBlob      concatenated deduplicated string bytes (id 0 = "")
//   kStringOffsets   u32[string_count + 1] offsets into the blob
//   kAsnPool         u32[] ASN values; rows reference (off, count)
//   kHandlePool      u32[] delta-local string ids; rows reference spans
//   kRecords         RecordRow[records], delta-local pool references,
//                    sorted by (network, length) — inserted records and
//                    full replacements for changed ones
//
// catalog.idx ("SUBLCIDX"): a 32-byte header in the same shape (magic,
// version, flags, entry count, payload size, payload CRC-32, reserved)
// followed by the entry payload. Entries are ordered by strictly
// ascending epoch timestamp; each is:
//
//   epoch        u32   unix seconds
//   kind         u8    EpochKind (full | delta)
//   pad          u8[3] zero
//   base_epoch   u32   delta: an earlier epoch in this index; full: 0
//   records      u64   record count of the materialized epoch
//   bytes        u64   file size, for the delta-size guard and ls
//   name_len     u16   file name length
//   name         bytes file name within the catalog directory (no '/',
//                      no NUL — validated, the index is untrusted input)
//
// The index is rewritten atomically (tmp + rename) on every append, so a
// reader never observes a half-written epoch list.
#pragma once

#include <cstdint>
#include <type_traits>

namespace sublet::catalog {

inline constexpr char kDeltaMagic[8] = {'S', 'U', 'B', 'L',
                                        'D', 'E', 'L', 'T'};
inline constexpr std::uint16_t kDeltaVersion = 1;
inline constexpr std::size_t kDeltaSectionCount = 7;

enum class DeltaSectionId : std::uint32_t {
  kMeta = 1,
  kRemoved = 2,
  kStringBlob = 3,
  kStringOffsets = 4,
  kAsnPool = 5,
  kHandlePool = 6,
  kRecords = 7,
};

/// One leaf removed relative to the base epoch. 8 bytes so the section is
/// a plain little-endian array, like every other bulk section.
struct RemovedEntry {
  std::uint32_t prefix_key = 0;  ///< network bits, host-order value
  std::uint8_t prefix_len = 0;
  std::uint8_t pad[3] = {0, 0, 0};
};
static_assert(sizeof(RemovedEntry) == 8);
static_assert(std::is_trivially_copyable_v<RemovedEntry>);

/// Counts carried in a delta's kMeta section.
struct DeltaCounts {
  std::uint64_t epoch = 0;
  std::uint64_t base_epoch = 0;
  std::uint64_t removed = 0;
  std::uint64_t records = 0;
  std::uint64_t strings = 0;
  std::uint64_t string_blob_bytes = 0;
  std::uint64_t asn_pool = 0;
  std::uint64_t handle_pool = 0;
};

inline constexpr char kIndexMagic[8] = {'S', 'U', 'B', 'L',
                                        'C', 'I', 'D', 'X'};
inline constexpr std::uint16_t kIndexVersion = 1;
inline constexpr std::size_t kIndexHeaderSize = 32;

enum class EpochKind : std::uint8_t { kFull = 0, kDelta = 1 };

inline constexpr const char* kIndexFileName = "catalog.idx";

}  // namespace sublet::catalog
