// Multi-epoch snapshot catalog: time-travel serving (docs/TIMETRAVEL.md).
//
// A catalog directory holds one full snapshot per chain anchor plus delta
// snapshots for the epochs after it, described by `catalog.idx`
// (src/catalog/format.h). `Catalog` materializes any epoch on demand —
// full snapshots load directly, deltas apply against their base chain in
// memory — and keeps a bounded LRU of materialized EngineState
// generations so the server's AT / HISTORY verbs stay cheap for the
// epochs clients actually ask about.
//
// Authoring lives here too: `catalog_init` starts a catalog with one full
// snapshot, `catalog_append` diffs the next epoch against the previous one
// and writes a delta — or falls back to a fresh full snapshot (a new chain
// anchor) when the delta exceeds `max_delta_fraction` of the chain's
// anchor size. The index is rewritten atomically, so a serving catalog can
// be appended to with zero downtime: `refresh()` picks up the new epoch
// and every previously materialized epoch keeps serving.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/format.h"
#include "leasing/types.h"
#include "serve/epoch_source.h"
#include "snapshot/snapshot.h"
#include "util/expected.h"

namespace sublet::catalog {

/// One catalog.idx row (format.h documents the on-disk layout).
struct EpochEntry {
  std::uint32_t epoch = 0;       ///< unix seconds, strictly ascending
  EpochKind kind = EpochKind::kFull;
  std::uint32_t base_epoch = 0;  ///< delta: earlier epoch; full: 0
  std::uint64_t records = 0;     ///< materialized record count
  std::uint64_t bytes = 0;       ///< file size on disk
  std::string name;              ///< file name inside the catalog dir
};

/// Serialize `entries` as a catalog.idx image (header + CRC'd payload).
std::vector<std::uint8_t> encode_index(const std::vector<EpochEntry>& entries);

/// Parse and fully validate a catalog.idx image: magic/version/CRC, entry
/// bounds, strictly ascending epochs, delta bases resolving to an earlier
/// entry, and file names free of '/' and NUL. Fault site
/// `catalog.index_parse` forces the error path.
Expected<std::vector<EpochEntry>> parse_index(
    std::span<const std::uint8_t> bytes);

/// Read + parse `<dir>/catalog.idx`.
Expected<std::vector<EpochEntry>> read_index(const std::string& dir);

/// Atomically rewrite `<dir>/catalog.idx` (tmp + fsync + rename). Throws
/// std::runtime_error on I/O failure (DESIGN.md §3).
void write_index_file(const std::string& dir,
                      const std::vector<EpochEntry>& entries);

struct CatalogOptions {
  /// Materialized epochs kept hot; the latest epoch is pinned on top of
  /// this, so it can never be evicted by history traffic.
  std::size_t lru_capacity = 8;
  snapshot::Snapshot::Mode mode = snapshot::Snapshot::Mode::kMap;
  /// Build the DIR-24-8 stride table for the latest epoch only; history
  /// epochs serve from the Patricia walk + jump table (docs/TIMETRAVEL.md
  /// explains the tradeoff).
  bool stride_latest = true;
};

class Catalog : public serve::EpochSource {
 public:
  /// Open `<dir>/catalog.idx` and validate the epoch list. No epoch is
  /// materialized yet. Crash leftovers from a killed append — `*.tmp`
  /// files and epoch files the index does not reference — are swept
  /// (best-effort) before the catalog is returned, so open() must never
  /// run concurrently with an in-flight catalog_append() on the same
  /// directory. Fault site `catalog.open` forces the error path.
  static Expected<std::unique_ptr<Catalog>> open(std::string dir,
                                                 CatalogOptions options = {});

  const std::string& dir() const { return dir_; }
  std::vector<EpochEntry> entries() const;

  // serve::EpochSource
  std::vector<std::uint32_t> epochs() const override;
  Expected<std::shared_ptr<const serve::EngineState>> epoch_at(
      std::uint32_t at) override;
  Expected<std::shared_ptr<const serve::EngineState>> refresh() override;

  /// Materialize exactly `epoch` (must be listed). Full snapshots load
  /// from disk; deltas materialize their base chain first, then apply in
  /// memory (fault site `catalog.apply_delta`). Results are cached in the
  /// LRU; a failure leaves every previously materialized epoch untouched.
  Expected<std::shared_ptr<const serve::EngineState>> materialize(
      std::uint32_t epoch);

  /// Slow canonical reconstruction: the epoch's records as a canonical
  /// LeaseInference list, rebuilt record-by-record along the delta chain.
  /// encode_snapshot() of this list is byte-identical to the full snapshot
  /// the authoring path would have written for `epoch` — the differential
  /// suite and `catalog verify --deep` pin exactly that.
  Expected<std::vector<leasing::LeaseInference>> reconstruct(
      std::uint32_t epoch) const;

  struct EpochCheck {
    std::uint32_t epoch = 0;
    bool ok = false;
    std::string detail;  ///< failure reason, or empty
  };
  struct VerifyReport {
    std::vector<EpochCheck> checks;  ///< one per epoch, index order
    std::size_t broken = 0;
    bool ok() const { return broken == 0; }
  };

  /// Check every epoch without crashing on damage: files open and pass
  /// CRC/structure validation, record counts and sizes match the index,
  /// and delta base chains resolve to a healthy anchor (an epoch whose
  /// base is missing or corrupt reports broken, as does every epoch
  /// chained on top of it). `deep` additionally reconstructs each healthy
  /// epoch and re-encodes it, comparing against the chain's semantics.
  VerifyReport verify(bool deep = false) const;

  std::size_t cached_epochs() const;

 private:
  Catalog(std::string dir, CatalogOptions options,
          std::vector<EpochEntry> entries);

  /// Entry for `epoch`, or nullptr. Caller holds no lock (entries_ is
  /// immutable behind a shared_ptr swap).
  std::shared_ptr<const std::vector<EpochEntry>> snapshot_entries() const;

  /// Materialize with build_mu_ held; recurses along the delta chain.
  Expected<std::shared_ptr<const serve::EngineState>> materialize_locked(
      const std::vector<EpochEntry>& entries, std::uint32_t epoch);

  /// Apply `delta_name` on top of `base`; returns the new state.
  Expected<std::shared_ptr<const serve::EngineState>> apply_delta(
      const serve::EngineState& base, const EpochEntry& entry,
      bool is_latest);

  std::shared_ptr<const serve::EngineState> cache_get(std::uint32_t epoch);
  void cache_put(std::uint32_t epoch,
                 std::shared_ptr<const serve::EngineState> state);

  std::string dir_;
  CatalogOptions options_;

  mutable std::mutex entries_mu_;
  std::shared_ptr<const std::vector<EpochEntry>> entries_;

  /// Serializes materializations (chains can recurse); cache_mu_ alone
  /// guards the LRU so hits never wait behind a build.
  std::mutex build_mu_;
  mutable std::mutex cache_mu_;
  struct CacheSlot {
    std::shared_ptr<const serve::EngineState> state;
    std::list<std::uint32_t>::iterator lru_it;
  };
  std::unordered_map<std::uint32_t, CacheSlot> cache_;
  std::list<std::uint32_t> lru_;  ///< front = most recently used
  std::shared_ptr<const serve::EngineState> latest_;  ///< pinned
};

/// Authoring options for catalog_append.
struct AppendOptions {
  /// A delta larger than this fraction of its chain anchor's full-snapshot
  /// size is abandoned for a fresh full snapshot (a new chain anchor).
  double max_delta_fraction = 0.5;
  bool force_full = false;
};

/// Create `<dir>` (if needed) and write epoch `epoch` as the catalog's
/// first full snapshot plus the index. Fails if the catalog already has an
/// index. Returns the entry written.
Expected<EpochEntry> catalog_init(
    const std::string& dir, std::uint32_t epoch,
    std::vector<leasing::LeaseInference> inferences);

/// Append epoch `epoch` (> every existing epoch): diff against the
/// previous epoch and write a delta, or fall back to a full snapshot per
/// `AppendOptions`. The index is rewritten atomically last, so a serving
/// Catalog only ever observes the complete epoch. Returns the entry
/// written (kind tells which way the size guard went).
Expected<EpochEntry> catalog_append(
    const std::string& dir, std::uint32_t epoch,
    std::vector<leasing::LeaseInference> inferences,
    const AppendOptions& options = {});

}  // namespace sublet::catalog
