#include "catalog/catalog.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <utility>

#include "catalog/delta.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "snapshot/writer.h"
#include "util/binio.h"
#include "util/faultinject.h"

namespace sublet::catalog {

namespace {

struct CatalogMetrics {
  obs::Gauge& epochs;
  obs::Counter& materializations;
  obs::Counter& lru_evictions;
};

CatalogMetrics& metrics() {
  static CatalogMetrics m{
      obs::MetricsRegistry::global().gauge(
          "sublet_catalog_epochs", "Epochs listed in the open catalog"),
      obs::MetricsRegistry::global().counter(
          "sublet_catalog_materializations_total",
          "Epoch materializations (full loads and delta applies)"),
      obs::MetricsRegistry::global().counter(
          "sublet_catalog_lru_evictions_total",
          "Materialized epochs evicted from the catalog LRU")};
  return m;
}

std::string join(const std::string& dir, const std::string& name) {
  return dir + "/" + name;
}

/// Open a full snapshot with the `catalog.open` failure point in front.
Expected<snapshot::Snapshot> open_snapshot_checked(
    const std::string& path, snapshot::Snapshot::Mode mode) {
  int err = 0;
  if (fault::inject("catalog.open", &err)) {
    return fail_code("injected catalog.open fault for " + path, err);
  }
  return snapshot::Snapshot::open(path, mode);
}

Expected<Delta> open_delta_checked(const std::string& path) {
  int err = 0;
  if (fault::inject("catalog.open", &err)) {
    return fail_code("injected catalog.open fault for " + path, err);
  }
  return Delta::open(path);
}

const EpochEntry* entry_for(const std::vector<EpochEntry>& entries,
                            std::uint32_t epoch) {
  for (const EpochEntry& e : entries) {
    if (e.epoch == epoch) return &e;
  }
  return nullptr;
}

/// Chain for `epoch`: full anchor first, then each delta in apply order.
Expected<std::vector<const EpochEntry*>> chain_for(
    const std::vector<EpochEntry>& entries, std::uint32_t epoch) {
  std::vector<const EpochEntry*> chain;
  const EpochEntry* cur = entry_for(entries, epoch);
  if (cur == nullptr) {
    return fail("epoch " + std::to_string(epoch) + " is not in the catalog");
  }
  while (cur->kind == EpochKind::kDelta) {
    chain.push_back(cur);
    cur = entry_for(entries, cur->base_epoch);
    if (cur == nullptr) {
      return fail("epoch " + std::to_string(chain.back()->epoch) +
                  " names missing base epoch " +
                  std::to_string(chain.back()->base_epoch));
    }
  }
  chain.push_back(cur);
  std::reverse(chain.begin(), chain.end());
  return chain;
}

/// Crash-safe small-file publish, same scheme as the snapshot writer:
/// <path>.tmp + fsync + rename, then a best-effort directory fsync.
/// Fault site `catalog.rename` forces the rename step to fail (or, armed
/// with fault::kCrash, kills the process with the `.tmp` still on disk —
/// the kill-restart tests' torn-index artifact).
void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error("cannot write " + tmp + ": " +
                             std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw std::runtime_error("short write to " + tmp + ": " +
                               std::strerror(saved));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    throw std::runtime_error("fsync failed for " + tmp + ": " +
                             std::strerror(saved));
  }
  ::close(fd);
  int rename_rc;
  int injected = 0;
  if (fault::inject("catalog.rename", &injected)) {
    rename_rc = -1;
    errno = injected;
  } else {
    rename_rc = ::rename(tmp.c_str(), path.c_str());
  }
  if (rename_rc != 0) {
    int saved = errno;
    ::unlink(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " to " + path + ": " +
                             std::strerror(saved));
  }
  std::string dir = path;
  std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash + 1);
  int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
}

/// Canonical record list of `epoch`, rebuilt record-by-record: full anchor
/// materialized, then each delta in the chain replayed through an ordered
/// map so the result comes out in canonical (network, length) order.
Expected<std::vector<leasing::LeaseInference>> reconstruct_epoch(
    const std::string& dir, const std::vector<EpochEntry>& entries,
    std::uint32_t epoch) {
  auto chain = chain_for(entries, epoch);
  if (!chain) return chain.error();

  auto full = open_snapshot_checked(join(dir, chain->front()->name),
                                    snapshot::Snapshot::Mode::kRead);
  if (!full) return full.error();

  using Key = std::pair<std::uint32_t, int>;
  std::map<Key, leasing::LeaseInference> by_key;
  for (std::size_t i = 0; i < full->record_count(); ++i) {
    leasing::LeaseInference r = full->materialize(i);
    Key key{r.prefix.network().value(), r.prefix.length()};
    by_key.insert_or_assign(key, std::move(r));
  }
  for (std::size_t c = 1; c < chain->size(); ++c) {
    auto delta = open_delta_checked(join(dir, (*chain)[c]->name));
    if (!delta) return delta.error();
    for (const RemovedEntry& gone : delta->removed()) {
      by_key.erase(Key{gone.prefix_key, gone.prefix_len});
    }
    for (std::size_t i = 0; i < delta->rows().size(); ++i) {
      leasing::LeaseInference r = delta->materialize(i);
      Key key{r.prefix.network().value(), r.prefix.length()};
      by_key.insert_or_assign(key, std::move(r));
    }
  }
  std::vector<leasing::LeaseInference> out;
  out.reserve(by_key.size());
  for (auto& [key, r] : by_key) out.push_back(std::move(r));
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_index(
    const std::vector<EpochEntry>& entries) {
  ByteWriter payload;
  for (const EpochEntry& e : entries) {
    payload.u32(e.epoch);
    payload.u8(static_cast<std::uint8_t>(e.kind));
    payload.u8(0);
    payload.u8(0);
    payload.u8(0);
    payload.u32(e.base_epoch);
    payload.u64(e.records);
    payload.u64(e.bytes);
    payload.u16(static_cast<std::uint16_t>(e.name.size()));
    payload.string(e.name);
  }
  std::uint32_t crc = crc32(payload.data());

  ByteWriter out;
  out.string(std::string_view(kIndexMagic, sizeof(kIndexMagic)));
  out.u16(kIndexVersion);
  out.u16(snapshot::kFlagLittleEndian);
  out.u32(static_cast<std::uint32_t>(entries.size()));
  out.u64(payload.size());
  out.u32(crc);
  out.u32(0);  // reserved
  out.bytes(payload.data());
  return out.take();
}

Expected<std::vector<EpochEntry>> parse_index(
    std::span<const std::uint8_t> bytes) {
  int err = 0;
  if (fault::inject("catalog.index_parse", &err)) {
    return fail_code("injected catalog.index_parse fault", err);
  }
  if (bytes.size() < kIndexHeaderSize) {
    return fail("truncated catalog index header");
  }
  ByteReader header(bytes.subspan(0, kIndexHeaderSize));
  if (std::memcmp(header.bytes(sizeof(kIndexMagic)).data(), kIndexMagic,
                  sizeof(kIndexMagic)) != 0) {
    return fail("bad catalog index magic");
  }
  const std::uint16_t version = header.u16();
  if (version != kIndexVersion) {
    return fail("unsupported catalog index version " +
                std::to_string(version));
  }
  const std::uint16_t flags = header.u16();
  if ((flags & snapshot::kFlagLittleEndian) == 0) {
    return fail("catalog index is not little-endian");
  }
  const std::uint32_t count = header.u32();
  const std::uint64_t payload_size = header.u64();
  const std::uint32_t expect_crc = header.u32();
  if (bytes.size() - kIndexHeaderSize != payload_size) {
    return fail("catalog index payload size does not match the file");
  }
  const std::span<const std::uint8_t> payload =
      bytes.subspan(kIndexHeaderSize);
  if (crc32(payload) != expect_crc) {
    return fail("catalog index checksum mismatch");
  }
  if (count == 0) return fail("catalog index lists no epochs");

  ByteReader reader(payload);
  std::vector<EpochEntry> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    EpochEntry e;
    e.epoch = reader.u32();
    const std::uint8_t kind = reader.u8();
    reader.u8();
    reader.u8();
    reader.u8();
    e.base_epoch = reader.u32();
    e.records = reader.u64();
    e.bytes = reader.u64();
    const std::uint16_t name_len = reader.u16();
    if (!reader.ok() || reader.remaining() < name_len) {
      return fail("catalog index entry overruns the payload");
    }
    e.name = reader.string(name_len);
    if (kind > static_cast<std::uint8_t>(EpochKind::kDelta)) {
      return fail("catalog index entry has unknown kind " +
                  std::to_string(kind));
    }
    e.kind = static_cast<EpochKind>(kind);
    if (e.epoch == 0) return fail("catalog index entry has epoch 0");
    if (!entries.empty() && e.epoch <= entries.back().epoch) {
      return fail("catalog index epochs are not strictly ascending");
    }
    if (e.name.empty() || e.name.find('/') != std::string::npos ||
        e.name.find('\0') != std::string::npos) {
      return fail("catalog index entry has an unsafe file name");
    }
    if (e.kind == EpochKind::kFull) {
      if (e.base_epoch != 0) {
        return fail("full epoch " + std::to_string(e.epoch) +
                    " must not name a base");
      }
    } else {
      if (entry_for(entries, e.base_epoch) == nullptr) {
        return fail("delta epoch " + std::to_string(e.epoch) +
                    " names base " + std::to_string(e.base_epoch) +
                    " which is not an earlier epoch");
      }
    }
    entries.push_back(std::move(e));
  }
  if (reader.remaining() != 0) {
    return fail("catalog index has trailing bytes");
  }
  return entries;
}

Expected<std::vector<EpochEntry>> read_index(const std::string& dir) {
  auto buffer = snapshot::Buffer::read_file(join(dir, kIndexFileName));
  if (!buffer) return buffer.error();
  auto entries = parse_index(buffer->bytes());
  if (!entries) {
    Error error = entries.error();
    error.source = join(dir, kIndexFileName);
    return error;
  }
  return entries;
}

void write_index_file(const std::string& dir,
                      const std::vector<EpochEntry>& entries) {
  write_file_atomic(join(dir, kIndexFileName), encode_index(entries));
}

// ---- Catalog ------------------------------------------------------------

Catalog::Catalog(std::string dir, CatalogOptions options,
                 std::vector<EpochEntry> entries)
    : dir_(std::move(dir)),
      options_(options),
      entries_(std::make_shared<const std::vector<EpochEntry>>(
          std::move(entries))) {}

namespace {

/// Sweep crash leftovers from a killed append (docs/ROBUSTNESS.md): any
/// `*.tmp` (a torn atomic publish that never renamed) and any
/// `epoch-*.snap` / `epoch-*.dsnap` the index does not reference (the
/// epoch file landed but the process died before the index rename).
/// Best-effort — an unreadable directory just skips the sweep — and only
/// safe because open() is never run concurrently with an in-flight
/// append to the same directory.
std::size_t sweep_crash_leftovers(const std::string& dir,
                                  const std::vector<EpochEntry>& entries) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return 0;
  std::size_t removed = 0;
  for (const auto& dirent : it) {
    if (!dirent.is_regular_file(ec)) continue;
    const std::string name = dirent.path().filename().string();
    bool stale = false;
    if (name.size() > 4 && name.ends_with(".tmp")) {
      stale = true;
    } else if (name.starts_with("epoch-") &&
               (name.ends_with(".snap") || name.ends_with(".dsnap"))) {
      stale = true;
      for (const EpochEntry& entry : entries) {
        if (entry.name == name) {
          stale = false;
          break;
        }
      }
    }
    if (!stale) continue;
    if (std::filesystem::remove(dirent.path(), ec) && !ec) ++removed;
  }
  return removed;
}

}  // namespace

Expected<std::unique_ptr<Catalog>> Catalog::open(std::string dir,
                                                 CatalogOptions options) {
  int err = 0;
  if (fault::inject("catalog.open", &err)) {
    return fail_code("injected catalog.open fault for " + dir, err);
  }
  auto entries = read_index(dir);
  if (!entries) return entries.error();
  sweep_crash_leftovers(dir, *entries);
  metrics().epochs.set(static_cast<std::int64_t>(entries->size()));
  return std::unique_ptr<Catalog>(
      new Catalog(std::move(dir), options, std::move(*entries)));
}

std::shared_ptr<const std::vector<EpochEntry>> Catalog::snapshot_entries()
    const {
  std::lock_guard<std::mutex> lock(entries_mu_);
  return entries_;
}

std::vector<EpochEntry> Catalog::entries() const {
  return *snapshot_entries();
}

std::vector<std::uint32_t> Catalog::epochs() const {
  auto entries = snapshot_entries();
  std::vector<std::uint32_t> out;
  out.reserve(entries->size());
  for (const EpochEntry& e : *entries) out.push_back(e.epoch);
  return out;
}

std::shared_ptr<const serve::EngineState> Catalog::cache_get(
    std::uint32_t epoch) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(epoch);
  if (it == cache_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.state;
}

void Catalog::cache_put(std::uint32_t epoch,
                        std::shared_ptr<const serve::EngineState> state) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(epoch);
  if (it != cache_.end()) {
    it->second.state = std::move(state);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(epoch);
  cache_.emplace(epoch, CacheSlot{std::move(state), lru_.begin()});
  while (cache_.size() > options_.lru_capacity && !lru_.empty()) {
    const std::uint32_t victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
    metrics().lru_evictions.add(1);
  }
}

std::size_t Catalog::cached_epochs() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.size();
}

Expected<std::shared_ptr<const serve::EngineState>> Catalog::epoch_at(
    std::uint32_t at) {
  auto entries = snapshot_entries();
  const EpochEntry* pick = nullptr;
  for (const EpochEntry& e : *entries) {
    if (at != 0 && e.epoch > at) break;
    pick = &e;
  }
  if (pick == nullptr) {
    return fail("no epoch at or before " + std::to_string(at) +
                " (catalog starts at " +
                std::to_string(entries->front().epoch) + ")");
  }
  return materialize(pick->epoch);
}

Expected<std::shared_ptr<const serve::EngineState>> Catalog::materialize(
    std::uint32_t epoch) {
  if (auto hit = cache_get(epoch)) return hit;
  auto entries = snapshot_entries();
  std::lock_guard<std::mutex> lock(build_mu_);
  return materialize_locked(*entries, epoch);
}

Expected<std::shared_ptr<const serve::EngineState>>
Catalog::materialize_locked(const std::vector<EpochEntry>& entries,
                            std::uint32_t epoch) {
  if (auto hit = cache_get(epoch)) return hit;  // raced a parallel build
  const EpochEntry* entry = entry_for(entries, epoch);
  if (entry == nullptr) {
    return fail("epoch " + std::to_string(epoch) +
                " is not in the catalog");
  }
  const bool is_latest = epoch == entries.back().epoch;

  Expected<std::shared_ptr<const serve::EngineState>> state =
      fail("unreachable");
  if (entry->kind == EpochKind::kFull) {
    auto snap = open_snapshot_checked(join(dir_, entry->name),
                                      options_.mode);
    if (!snap) return snap.error();
    auto trie = snap->build_trie(is_latest && options_.stride_latest
                                     ? TrieStride::kBuild
                                     : TrieStride::kOff);
    if (!trie) return trie.error();
    state = serve::EngineState::adopt_with_trie(
        std::make_unique<snapshot::Snapshot>(std::move(*snap)),
        std::move(*trie), join(dir_, entry->name), epoch, epoch);
  } else {
    auto base = materialize_locked(entries, entry->base_epoch);
    if (!base) return base.error();
    state = apply_delta(**base, *entry, is_latest);
  }
  if (!state) return state.error();
  metrics().materializations.add(1);
  cache_put(epoch, *state);
  if (is_latest) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    latest_ = *state;
  }
  return state;
}

Expected<std::shared_ptr<const serve::EngineState>> Catalog::apply_delta(
    const serve::EngineState& base, const EpochEntry& entry,
    bool is_latest) {
  auto delta = open_delta_checked(join(dir_, entry.name));
  if (!delta) return delta.error();
  if (delta->epoch() != entry.epoch ||
      delta->base_epoch() != entry.base_epoch) {
    return fail("delta " + entry.name +
                " header disagrees with the catalog index");
  }
  int err = 0;
  if (fault::inject("catalog.apply_delta", &err)) {
    return fail_code("injected catalog.apply_delta fault for " + entry.name,
                     err);
  }
  obs::ScopedSpan span("catalog.apply_delta");
  span.add_bytes(delta->file_bytes());
  span.add_records(delta->rows().size() + delta->removed().size());

  const snapshot::Snapshot& bs = base.snapshot();
  const serve::QueryEngine& be = base.engine();
  const PrefixTrie<std::uint32_t>& base_trie = be.trie();

  // Decide up front whether this delta touches the trie's structure: a
  // removal of a live leaf or an insert of a new one. In-place-only
  // deltas (the common small-churn case) leave the base trie
  // bit-identical — structure, values, jump table, stride table — so the
  // new epoch SHARES the base's trie handle instead of copying the
  // arena. Sharing also requires the base to carry the stride table when
  // this epoch is the latest and wants one.
  bool mutates_structure = false;
  for (const RemovedEntry& gone : delta->removed()) {
    const Prefix prefix =
        *Prefix::make(Ipv4Addr(gone.prefix_key), gone.prefix_len);
    if (base_trie.find(prefix) != nullptr) {
      mutates_structure = true;
      break;
    }
  }
  if (!mutates_structure) {
    for (const snapshot::RecordRow& src : delta->rows()) {
      const Prefix prefix =
          *Prefix::make(Ipv4Addr(src.prefix_key), src.prefix_len);
      if (base_trie.find(prefix) == nullptr) {
        mutates_structure = true;
        break;
      }
    }
  }
  const bool need_stride = is_latest && options_.stride_latest;
  const bool share_trie =
      !mutates_structure && (!need_stride || base_trie.has_stride_table());

  snapshot::Snapshot::OwnedParts parts;
  parts.rows.assign(bs.records().begin(), bs.records().end());
  parts.string_blob.assign(bs.string_blob().data(), bs.string_blob().size());
  parts.string_offsets.assign(bs.string_offsets().begin(),
                              bs.string_offsets().end());
  parts.asn_pool.assign(bs.asn_pool().begin(), bs.asn_pool().end());
  parts.handle_pool.assign(bs.handle_pool().begin(), bs.handle_pool().end());

  // Which base rows survive (increasing), and which surviving rows the
  // delta rewrites in place — the engine patches its aggregation columns
  // from the base epoch's instead of rebuilding them (EngineState::
  // adopt_patched), so a small delta costs O(changed), not O(records).
  std::vector<std::uint32_t> surviving;
  std::vector<std::uint32_t> patched;

  PrefixTrie<std::uint32_t> trie;
  bool removed_any = false;
  if (!share_trie) {
    trie = base_trie.core_copy();
    // Retire removed leaves first: O(depth) metadata edits on the trie,
    // then one compaction pass so the record array (which STATS scans in
    // full) carries no dead rows.
    std::vector<char> dead(parts.rows.size(), 0);
    for (const RemovedEntry& gone : delta->removed()) {
      const Prefix prefix =
          *Prefix::make(Ipv4Addr(gone.prefix_key), gone.prefix_len);
      if (const std::uint32_t* idx = trie.find(prefix)) {
        dead[*idx] = 1;
        trie.erase(prefix);
        removed_any = true;
      }
    }
    if (removed_any) {
      std::vector<std::uint32_t> remap(parts.rows.size(), 0);
      surviving.reserve(parts.rows.size());
      std::size_t out = 0;
      for (std::size_t i = 0; i < parts.rows.size(); ++i) {
        if (dead[i]) continue;
        remap[i] = static_cast<std::uint32_t>(out);
        surviving.push_back(static_cast<std::uint32_t>(i));
        if (out != i) parts.rows[out] = parts.rows[i];
        ++out;
      }
      parts.rows.resize(out);
      // Orphaned value slots (from this or earlier applies) remap to row
      // 0 — harmless, nothing reachable points at them.
      trie.for_each_value([&](std::uint32_t& v) {
        v = v < remap.size() ? remap[v] : 0;
      });
    }
  }

  // Concatenate the delta's pools behind the base's; every delta-local
  // reference shifts by the base pool size. Strings the base already had
  // are stored twice — bounded dead weight a fresh chain anchor resets.
  const std::uint32_t base_strings =
      static_cast<std::uint32_t>(parts.string_offsets.size() - 1);
  const std::uint32_t base_blob =
      static_cast<std::uint32_t>(parts.string_blob.size());
  const std::uint32_t base_asns =
      static_cast<std::uint32_t>(parts.asn_pool.size());
  const std::uint32_t base_handles =
      static_cast<std::uint32_t>(parts.handle_pool.size());
  parts.string_blob.append(delta->string_blob().data(),
                           delta->string_blob().size());
  for (std::size_t s = 1; s < delta->string_offsets().size(); ++s) {
    parts.string_offsets.push_back(base_blob + delta->string_offsets()[s]);
  }
  parts.asn_pool.insert(parts.asn_pool.end(), delta->asn_pool().begin(),
                        delta->asn_pool().end());
  for (std::uint32_t id : delta->handle_pool()) {
    parts.handle_pool.push_back(base_strings + id);
  }

  bool inserted_any = false;
  for (const snapshot::RecordRow& src : delta->rows()) {
    snapshot::RecordRow row = src;
    row.holder_org += base_strings;
    row.netname += base_strings;
    row.holder_asns_off += base_asns;
    row.leaf_origins_off += base_asns;
    row.root_origins_off += base_asns;
    row.leaf_maint_off += base_handles;
    row.root_maint_off += base_handles;
    const Prefix prefix =
        *Prefix::make(Ipv4Addr(row.prefix_key), row.prefix_len);
    if (share_trie) {
      // The pre-pass proved every row hits an existing leaf, and the
      // shared trie's values are the base row indices unchanged.
      const std::uint32_t* hit = base_trie.find(prefix);
      parts.rows[*hit] = row;
      patched.push_back(*hit);
      continue;
    }
    if (const std::uint32_t* hit = trie.find(prefix)) {
      parts.rows[*hit] = row;  // changed in place; trie untouched
      patched.push_back(*hit);
    } else {
      const std::uint32_t idx =
          static_cast<std::uint32_t>(parts.rows.size());
      parts.rows.push_back(row);
      trie.insert(prefix, idx);
      inserted_any = true;
    }
  }

  auto snap = std::make_unique<snapshot::Snapshot>(
      snapshot::Snapshot::from_parts(std::move(parts)));
  if (share_trie) {
    return serve::EngineState::adopt_patched(
        std::move(snap), be.shared_trie(), be, surviving, patched,
        join(dir_, entry.name), entry.epoch, entry.epoch);
  }

  // In-place-only applies (no erase, no insert) leave the node arena
  // identical to the base trie's, so its jump table is still exact —
  // reached when only the stride requirement forced the copy.
  if (removed_any || inserted_any) {
    trie.build_jump_table();
  } else {
    trie.adopt_jump_table(base_trie);
  }
  if (need_stride) trie.build_stride_table();

  return serve::EngineState::adopt_patched(
      std::move(snap),
      std::make_shared<const PrefixTrie<std::uint32_t>>(std::move(trie)),
      be, surviving, patched, join(dir_, entry.name), entry.epoch,
      entry.epoch);
}

Expected<std::shared_ptr<const serve::EngineState>> Catalog::refresh() {
  auto entries = read_index(dir_);
  if (!entries) return entries.error();
  auto fresh =
      std::make_shared<const std::vector<EpochEntry>>(std::move(*entries));

  auto old = snapshot_entries();
  {
    // Keep cached epochs whose index entry is unchanged; drop the rest so
    // a rewritten chain cannot serve stale bytes.
    std::lock_guard<std::mutex> lock(cache_mu_);
    for (auto it = cache_.begin(); it != cache_.end();) {
      const EpochEntry* was = entry_for(*old, it->first);
      const EpochEntry* now = entry_for(*fresh, it->first);
      const bool same = was != nullptr && now != nullptr &&
                        was->kind == now->kind && was->name == now->name &&
                        was->base_epoch == now->base_epoch &&
                        was->bytes == now->bytes;
      if (same) {
        ++it;
      } else {
        lru_.erase(it->second.lru_it);
        it = cache_.erase(it);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(entries_mu_);
    entries_ = fresh;
  }
  metrics().epochs.set(static_cast<std::int64_t>(fresh->size()));
  std::lock_guard<std::mutex> lock(build_mu_);
  return materialize_locked(*fresh, fresh->back().epoch);
}

Expected<std::vector<leasing::LeaseInference>> Catalog::reconstruct(
    std::uint32_t epoch) const {
  return reconstruct_epoch(dir_, *snapshot_entries(), epoch);
}

Catalog::VerifyReport Catalog::verify(bool deep) const {
  auto entries = snapshot_entries();
  VerifyReport report;
  std::map<std::uint32_t, bool> healthy;
  for (const EpochEntry& e : *entries) {
    EpochCheck check;
    check.epoch = e.epoch;
    std::error_code ec;
    const std::uint64_t on_disk =
        std::filesystem::file_size(join(dir_, e.name), ec);
    if (ec) {
      check.detail = e.name + ": " + ec.message();
    } else if (on_disk != e.bytes) {
      check.detail = e.name + ": file is " + std::to_string(on_disk) +
                     " bytes, index says " + std::to_string(e.bytes);
    } else if (e.kind == EpochKind::kFull) {
      auto snap = snapshot::Snapshot::open(join(dir_, e.name),
                                           snapshot::Snapshot::Mode::kRead);
      if (!snap) {
        check.detail = snap.error().to_string();
      } else if (snap->record_count() != e.records) {
        check.detail = e.name + ": " +
                       std::to_string(snap->record_count()) +
                       " records, index says " + std::to_string(e.records);
      } else {
        check.ok = true;
      }
    } else {
      auto delta = Delta::open(join(dir_, e.name));
      if (!delta) {
        check.detail = delta.error().to_string();
      } else if (delta->epoch() != e.epoch ||
                 delta->base_epoch() != e.base_epoch) {
        check.detail = e.name + ": header disagrees with the index";
      } else if (auto it = healthy.find(e.base_epoch);
                 it == healthy.end() || !it->second) {
        check.detail = "base chain broken at epoch " +
                       std::to_string(e.base_epoch);
      } else {
        check.ok = true;
      }
    }
    if (check.ok && deep) {
      auto records = reconstruct_epoch(dir_, *entries, e.epoch);
      if (!records) {
        check.ok = false;
        check.detail = records.error().to_string();
      } else if (records->size() != e.records) {
        check.ok = false;
        check.detail = "reconstructs to " +
                       std::to_string(records->size()) +
                       " records, index says " + std::to_string(e.records);
      } else if (e.kind == EpochKind::kFull) {
        auto file = snapshot::Buffer::read_file(join(dir_, e.name));
        const std::vector<std::uint8_t> want =
            snapshot::encode_snapshot(*records);
        if (!file || file->bytes().size() != want.size() ||
            !std::equal(want.begin(), want.end(), file->bytes().begin())) {
          check.ok = false;
          check.detail = "full snapshot is not canonical";
        }
      }
    }
    healthy[e.epoch] = check.ok;
    if (!check.ok) ++report.broken;
    report.checks.push_back(std::move(check));
  }
  return report;
}

// ---- Authoring ----------------------------------------------------------

Expected<EpochEntry> catalog_init(
    const std::string& dir, std::uint32_t epoch,
    std::vector<leasing::LeaseInference> inferences) {
  if (epoch == 0) return fail("epoch 0 is reserved for \"latest\"");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return fail("cannot create " + dir + ": " + ec.message());
  if (std::filesystem::exists(join(dir, kIndexFileName))) {
    return fail(dir + " already holds a catalog (use append)");
  }
  auto canonical = canonical_inferences(std::move(inferences));

  EpochEntry entry;
  entry.epoch = epoch;
  entry.kind = EpochKind::kFull;
  entry.records = canonical.size();
  entry.name = "epoch-" + std::to_string(epoch) + ".snap";
  try {
    snapshot::write_snapshot_file(join(dir, entry.name), canonical);
    entry.bytes = std::filesystem::file_size(join(dir, entry.name));
    write_index_file(dir, {entry});
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  return entry;
}

Expected<EpochEntry> catalog_append(
    const std::string& dir, std::uint32_t epoch,
    std::vector<leasing::LeaseInference> inferences,
    const AppendOptions& options) {
  auto entries = read_index(dir);
  if (!entries) return entries.error();
  if (epoch <= entries->back().epoch) {
    return fail("epoch " + std::to_string(epoch) +
                " is not after the catalog's last epoch " +
                std::to_string(entries->back().epoch));
  }
  const std::uint32_t prev = entries->back().epoch;
  auto base = reconstruct_epoch(dir, *entries, prev);
  if (!base) return base.error();
  auto next = canonical_inferences(std::move(inferences));

  EpochEntry entry;
  entry.epoch = epoch;
  entry.records = next.size();

  std::vector<std::uint8_t> delta_bytes;
  bool full = options.force_full;
  if (!full) {
    delta_bytes = encode_delta(prev, *base, epoch, next);
    // Size guard against the chain's anchor: once the chain's deltas grow
    // past the configured fraction of a fresh full snapshot, cut a new
    // anchor instead of stretching the chain.
    auto chain = chain_for(*entries, prev);
    if (!chain) return chain.error();
    const std::uint64_t anchor_bytes = chain->front()->bytes;
    full = delta_bytes.size() >
           static_cast<std::uint64_t>(options.max_delta_fraction *
                                      static_cast<double>(anchor_bytes));
  }

  try {
    if (full) {
      entry.kind = EpochKind::kFull;
      entry.base_epoch = 0;
      entry.name = "epoch-" + std::to_string(epoch) + ".snap";
      snapshot::write_snapshot_file(join(dir, entry.name), next);
      entry.bytes = std::filesystem::file_size(join(dir, entry.name));
    } else {
      entry.kind = EpochKind::kDelta;
      entry.base_epoch = prev;
      entry.name = "epoch-" + std::to_string(epoch) + ".dsnap";
      write_file_atomic(join(dir, entry.name), delta_bytes);
      entry.bytes = delta_bytes.size();
    }
    // The epoch file is on disk but the index does not name it yet — the
    // append's crash window. A death here (fault site armed with
    // fault::kCrash, or a real machine crash) leaves an orphaned epoch
    // file the next Catalog::open sweeps away.
    int err = 0;
    if (fault::inject("catalog.append_publish", &err)) {
      return fail_code("injected catalog.append_publish fault for " + dir,
                       err);
    }
    entries->push_back(entry);
    write_index_file(dir, *entries);
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  return entry;
}

}  // namespace sublet::catalog
