// abuse_monitor: the threat-intel scenario from the paper's motivation —
// cross-reference inferred leases with the Spamhaus ASN-DROP list, the
// serial-hijacker list, and RPKI ROAs, and emit a watchlist of leased
// prefixes in abusive hands (CSV on stdout).
//
//   ./abuse_monitor [dataset-dir] > watchlist.csv
#include <iostream>

#include "asgraph/as_graph.h"
#include "example_util.h"
#include "leasing/abuse_analysis.h"
#include "leasing/dataset.h"
#include "leasing/pipeline.h"
#include "util/csv.h"

using namespace sublet;

int main(int argc, char** argv) {
  std::string dir = examples::dataset_dir(argc, argv);
  leasing::DatasetBundle bundle = leasing::load_dataset(dir);
  asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);
  leasing::Pipeline pipeline(bundle.rib, graph);

  std::vector<leasing::LeaseInference> results;
  for (const whois::WhoisDb& db : bundle.whois) {
    auto partial = pipeline.classify(db);
    results.insert(results.end(), partial.begin(), partial.end());
  }

  const rpki::VrpSet* vrps = bundle.current_vrps();
  CsvWriter csv(std::cout);
  csv.write_row({"prefix", "rir", "origin_asns", "holder_org", "facilitator",
                 "drop_listed", "serial_hijacker", "rpki"});

  std::size_t flagged = 0, leases = 0;
  for (const auto& r : results) {
    if (!r.leased()) continue;
    ++leases;
    bool drop = false, hijacker = false;
    for (Asn origin : r.leaf_origins) {
      drop |= bundle.drop.contains(origin);
      hijacker |= bundle.hijackers.contains(origin);
    }
    if (!drop && !hijacker) continue;
    ++flagged;

    std::string origins;
    for (Asn origin : r.leaf_origins) {
      if (!origins.empty()) origins += ' ';
      origins += origin.to_string();
    }
    std::string rpki_state = "no-data";
    if (vrps && !r.leaf_origins.empty()) {
      rpki_state = std::string(
          validity_name(vrps->validate(r.prefix, r.leaf_origins.front())));
    }
    csv.write_row({r.prefix.to_string(), std::string(rir_name(r.rir)),
                   origins, r.holder_org,
                   r.leaf_maintainers.empty() ? "" : r.leaf_maintainers[0],
                   drop ? "1" : "0", hijacker ? "1" : "0", rpki_state});
  }

  std::cerr << "[abuse_monitor] " << flagged << " of " << leases
            << " inferred leases originate from blocklisted ASes\n";
  std::cerr << "[abuse_monitor] note: RPKI 'valid' on an abusive lease is "
               "the paper's §6.4 warning — leasing lets attackers obtain "
               "legitimate ROAs\n";
  return 0;
}
