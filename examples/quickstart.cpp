// Quickstart: load a dataset bundle, run the lease-inference pipeline, and
// print a per-RIR summary — the smallest end-to-end use of the library.
//
//   ./quickstart [dataset-dir]
#include <iostream>

#include "asgraph/as_graph.h"
#include "example_util.h"
#include "leasing/dataset.h"
#include "leasing/pipeline.h"
#include "util/table.h"

using namespace sublet;

int main(int argc, char** argv) {
  // 1. Load everything the method consumes: WHOIS databases, BGP RIBs,
  //    AS relationships, as2org (plus RPKI/abuse lists used elsewhere).
  std::string dir = examples::dataset_dir(argc, argv);
  leasing::DatasetBundle bundle = leasing::load_dataset(dir);

  // 2. Build the relatedness graph and the pipeline.
  asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);
  leasing::Pipeline pipeline(bundle.rib, graph);

  // 3. Classify every RIR's allocation-tree leaves.
  TextTable table({"RIR", "Leaves", "Leased", "Share"});
  std::size_t total_leaves = 0, total_leased = 0;
  for (const whois::WhoisDb& db : bundle.whois) {
    auto results = pipeline.classify(db);
    auto counts = leasing::Pipeline::count_groups(results);
    table.add_row({std::string(rir_name(db.rir())),
                   with_commas(counts.total()), with_commas(counts.leased()),
                   percent(counts.total()
                               ? static_cast<double>(counts.leased()) /
                                     counts.total()
                               : 0)});
    total_leaves += counts.total();
    total_leased += counts.leased();
  }
  std::cout << table.to_string() << "\n";
  std::cout << "Inferred " << with_commas(total_leased)
            << " leased prefixes out of " << with_commas(total_leaves)
            << " classified sub-allocations ("
            << with_commas(bundle.rib.prefix_count())
            << " prefixes routed in BGP).\n";
  return 0;
}
