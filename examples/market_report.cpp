// market_report: the analyst scenario — a per-RIR view of the leasing
// market: volumes, the dominant holders and facilitators, originator
// concentration, and lease-history reconstruction for a sampled prefix.
//
//   ./market_report [dataset-dir]
#include <iostream>
#include <set>

#include "asgraph/as_graph.h"
#include "example_util.h"
#include "leasing/dataset.h"
#include "leasing/ecosystem.h"
#include "leasing/pipeline.h"
#include "leasing/timeline.h"
#include "simnet/timeline_scenario.h"
#include "util/table.h"

using namespace sublet;

int main(int argc, char** argv) {
  std::string dir = examples::dataset_dir(argc, argv);
  leasing::DatasetBundle bundle = leasing::load_dataset(dir);
  asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);
  leasing::Pipeline pipeline(bundle.rib, graph);

  std::vector<leasing::LeaseInference> results;
  for (const whois::WhoisDb& db : bundle.whois) {
    auto partial = pipeline.classify(db);
    results.insert(results.end(), partial.begin(), partial.end());
  }
  leasing::Ecosystem eco(results, &bundle.as2org);

  std::cout << "=== IP leasing market report ===\n\n";
  for (whois::Rir rir : whois::kAllRirs) {
    auto rir_results = std::vector<leasing::LeaseInference>();
    for (const auto& r : results) {
      if (r.rir == rir) rir_results.push_back(r);
    }
    auto counts = leasing::Pipeline::count_groups(rir_results);
    std::cout << rir_name(rir) << ": " << with_commas(counts.leased())
              << " leases across " << with_commas(counts.total())
              << " sub-allocations\n";

    auto holders = eco.top_holders(rir, 3);
    for (const auto& h : holders) {
      std::string name = h.name;
      if (const whois::WhoisDb* db = bundle.db_for(rir)) {
        if (const whois::OrgRec* org = db->org(h.name)) {
          if (!org->name.empty()) name = org->name;
        }
      }
      std::cout << "    holder      " << name << " (" << h.count
                << " leases)\n";
    }
    for (const auto& f : eco.top_facilitators(rir, 2)) {
      std::cout << "    facilitator " << f.name << " (" << f.count
                << " leases)\n";
    }
    std::cout << "\n";
  }

  std::cout << "Global top originators of leased space:\n";
  for (const auto& o : eco.top_originators(5)) {
    std::cout << "    " << o.name << " — " << o.count << " prefixes\n";
  }

  // Lease-history reconstruction (the Figure 3 workflow) for the scripted
  // scenario prefix — with real data this would consume the RPKI archive
  // plus dated RIB snapshots for any prefix in the report.
  std::cout << "\nLease history of a facilitator-managed prefix:\n";
  auto scenario = sim::build_timeline_scenario();
  auto events = leasing::LeaseTimeline::collect(
      scenario.prefix, scenario.archive, scenario.bgp_history,
      scenario.start, scenario.end);
  for (const auto& period : leasing::LeaseTimeline::segment(events)) {
    std::cout << "    " << scenario.prefix.to_string() << "  "
              << (period.is_as0_gap() ? "quarantined (AS0)"
                                      : "leased to " + period.asn.to_string())
              << "  [" << period.start << " .. " << period.end << "]\n";
  }
  return 0;
}
