// audit_prefix: Figure-2-style walkthrough of why a prefix is (not) a
// lease — the operator-facing "explain this verdict" tool.
//
//   ./audit_prefix [dataset-dir] [prefix ...]
//
// Without explicit prefixes, it audits one inferred lease and one ISP
// customer so the contrast is visible.
#include <iostream>

#include "asgraph/as_graph.h"
#include "example_util.h"
#include "leasing/dataset.h"
#include "leasing/pipeline.h"

using namespace sublet;

int main(int argc, char** argv) {
  std::string dir = examples::dataset_dir(argc, argv);
  leasing::DatasetBundle bundle = leasing::load_dataset(dir);
  asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);
  leasing::Pipeline pipeline(bundle.rib, graph);

  std::vector<Prefix> targets;
  for (int i = 2; i < argc; ++i) {
    if (auto prefix = Prefix::parse(argv[i])) {
      targets.push_back(*prefix);
    } else {
      std::cerr << "skipping unparseable prefix '" << argv[i] << "'\n";
    }
  }

  if (targets.empty()) {
    // Pick demonstration prefixes: one lease, one customer.
    for (const whois::WhoisDb& db : bundle.whois) {
      const Prefix* lease = nullptr;
      const Prefix* customer = nullptr;
      auto results = pipeline.classify(db);
      for (const auto& r : results) {
        if (!lease && r.leased()) lease = &r.prefix;
        if (!customer && r.group == leasing::InferenceGroup::kIspCustomer) {
          customer = &r.prefix;
        }
        if (lease && customer) break;
      }
      if (lease) targets.push_back(*lease);
      if (customer) targets.push_back(*customer);
      if (!targets.empty()) break;
    }
  }

  for (const Prefix& prefix : targets) {
    // Find the RIR whose allocation tree contains the prefix.
    bool found = false;
    for (const whois::WhoisDb& db : bundle.whois) {
      auto tree = whois::AllocationTree::build(db);
      if (!tree.root_of(prefix)) continue;
      std::cout << pipeline.explain(prefix, db) << "\n";
      found = true;
      break;
    }
    if (!found) {
      std::cout << prefix.to_string()
                << ": not found in any RIR's allocation tree\n\n";
    }
  }
  return 0;
}
