// Shared plumbing for the example programs: locate or generate a dataset.
//
// Every example takes an optional dataset directory as argv[1] (the layout
// leasing/load_dataset() documents). Without one, a small synthetic world
// is generated under /tmp so the examples run out of the box.
#pragma once

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "simnet/builder.h"
#include "simnet/emit.h"

namespace sublet::examples {

inline std::string dataset_dir(int argc, char** argv,
                               double default_scale = 0.1) {
  if (argc > 1) return argv[1];
  std::string dir = "/tmp/sublet-example-data";
  if (!std::filesystem::exists(dir + "/.complete")) {
    std::cerr << "[example] no dataset given; generating a demo world under "
              << dir << " ...\n";
    std::filesystem::remove_all(dir);
    sim::WorldConfig config;
    config.seed = 1;
    config.scale = default_scale;
    sim::emit_world(sim::build_world(config), dir);
    std::ofstream(dir + "/.complete") << "ok\n";
  }
  return dir;
}

}  // namespace sublet::examples
