# End-to-end smoke test for the `sublet` CLI, run under ctest:
#   generate -> infer -> evaluate -> abuse -> report -> explain -> dump ->
#   churn -> snapshot write/verify/read -> serve/query/shutdown, plus
#   exit-code checks for unknown subcommands and bad flags.
if(NOT DEFINED SUBLET_BIN)
  message(FATAL_ERROR "pass -DSUBLET_BIN=<path to sublet>")
endif()

set(WORK "$ENV{TMPDIR}")
if(WORK STREQUAL "")
  set(WORK "/tmp")
endif()
set(DATA "${WORK}/sublet-cli-smoke")
file(REMOVE_RECURSE "${DATA}")

function(run_step)
  execute_process(COMMAND ${ARGV}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}\n${err}")
  endif()
  set(STEP_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

# Assert the command exits non-zero AND prints usage to stderr — the
# contract for unknown subcommands and unrecognized flags.
function(run_fail)
  execute_process(COMMAND ${ARGV}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(code EQUAL 0)
    message(FATAL_ERROR "expected failure but got exit 0: ${ARGV}\n${out}")
  endif()
  if(NOT err MATCHES "usage: sublet")
    message(FATAL_ERROR "expected usage on stderr (${ARGV}):\n${err}")
  endif()
endfunction()

run_step("${SUBLET_BIN}" generate "${DATA}" --scale 0.03 --seed 11)

run_step("${SUBLET_BIN}" infer "${DATA}" -o "${DATA}/leases-a.csv")
if(NOT STEP_OUTPUT MATCHES "inferred leased")
  message(FATAL_ERROR "infer produced no summary: ${STEP_OUTPUT}")
endif()

# --- observability: --trace-json writes a Chrome trace with the pipeline
# stage spans (docs/OBSERVABILITY.md) ---
run_step("${SUBLET_BIN}" --trace-json "${DATA}/trace.json" --log-json
         infer "${DATA}" -o "${DATA}/leases-traced.csv")
file(READ "${DATA}/trace.json" TRACE_JSON)
if(NOT TRACE_JSON MATCHES "\"traceEvents\"")
  message(FATAL_ERROR "trace file is not Chrome trace JSON: ${TRACE_JSON}")
endif()
foreach(span "dataset.load" "whois.parse" "rib.load" "alloc_tree.build"
        "classify")
  if(NOT TRACE_JSON MATCHES "\"name\":\"${span}\"")
    message(FATAL_ERROR "trace is missing the ${span} stage span")
  endif()
endforeach()

run_step("${SUBLET_BIN}" evaluate "${DATA}")
if(NOT STEP_OUTPUT MATCHES "precision")
  message(FATAL_ERROR "evaluate printed no metrics: ${STEP_OUTPUT}")
endif()

run_step("${SUBLET_BIN}" abuse "${DATA}")
if(NOT STEP_OUTPUT MATCHES "risk ratio")
  message(FATAL_ERROR "abuse printed no ratio: ${STEP_OUTPUT}")
endif()

run_step("${SUBLET_BIN}" report "${DATA}")
if(NOT STEP_OUTPUT MATCHES "Inference groups per region")
  message(FATAL_ERROR "report missing sections: ${STEP_OUTPUT}")
endif()

run_step("${SUBLET_BIN}" explain "${DATA}" 20.0.0.0/24)
if(NOT STEP_OUTPUT MATCHES "verdict")
  message(FATAL_ERROR "explain printed no verdict: ${STEP_OUTPUT}")
endif()

file(GLOB MRT_FILES "${DATA}/bgp/*.mrt")
list(GET MRT_FILES 0 FIRST_MRT)
run_step("${SUBLET_BIN}" dump "${FIRST_MRT}")
if(NOT STEP_OUTPUT MATCHES "TABLE_DUMP2")
  message(FATAL_ERROR "dump produced no bgpdump lines")
endif()

# churn against itself: everything stable.
run_step("${SUBLET_BIN}" churn "${DATA}/leases-a.csv" "${DATA}/leases-a.csv")
if(NOT STEP_OUTPUT MATCHES "churn rate:      0.0%")
  message(FATAL_ERROR "self-churn should be zero: ${STEP_OUTPUT}")
endif()

# --- exit codes: unknown subcommand / bad flags must refuse loudly ---
run_fail("${SUBLET_BIN}")
run_fail("${SUBLET_BIN}" frobnicate)
run_fail("${SUBLET_BIN}" infer "${DATA}" --bogus-flag)
run_fail("${SUBLET_BIN}" snapshot frob "${DATA}/leases-a.csv")
run_fail("${SUBLET_BIN}" snapshot write "${DATA}/leases-a.csv")
run_fail("${SUBLET_BIN}" serve)
run_fail("${SUBLET_BIN}" serve "${DATA}/nope.snap" --bad-flag)
run_fail("${SUBLET_BIN}" serve "${DATA}/nope.snap" --max-conns junk)
run_fail("${SUBLET_BIN}" serve "${DATA}/nope.snap" --shards junk)
run_fail("${SUBLET_BIN}" serve "${DATA}/nope.snap" --shards 0)
run_fail("${SUBLET_BIN}" query not-a-host-port)
run_fail("${SUBLET_BIN}" query 127.0.0.1:1 --reload)

# --- snapshot round trip: write -> verify -> read -> byte-compare ---
run_step("${SUBLET_BIN}" snapshot write "${DATA}/leases-a.csv"
         "${DATA}/leases.snap")
if(NOT STEP_OUTPUT MATCHES "records to")
  message(FATAL_ERROR "snapshot write printed no summary: ${STEP_OUTPUT}")
endif()

run_step("${SUBLET_BIN}" snapshot verify "${DATA}/leases.snap")
if(NOT STEP_OUTPUT MATCHES "ok: version 1")
  message(FATAL_ERROR "snapshot verify rejected fresh file: ${STEP_OUTPUT}")
endif()

run_step("${SUBLET_BIN}" snapshot read "${DATA}/leases.snap"
         -o "${DATA}/leases-roundtrip.csv")
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                "${DATA}/leases-a.csv" "${DATA}/leases-roundtrip.csv"
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "snapshot read is not byte-identical to the artifact")
endif()

# A damaged snapshot must be refused (not crash).
file(READ "${DATA}/leases.snap" SNAP_HEX LIMIT 256 HEX)
string(SUBSTRING "${SNAP_HEX}" 0 100 SNAP_HEX)
file(WRITE "${DATA}/leases-truncated.snap" "${SNAP_HEX}")
execute_process(COMMAND "${SUBLET_BIN}" snapshot verify
                "${DATA}/leases-truncated.snap"
                RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(code EQUAL 0)
  message(FATAL_ERROR "snapshot verify accepted a truncated file")
endif()

# --- catalog: multi-epoch build -> ls -> deep verify -> CSV append ---
set(CAT "${DATA}/catalog")
run_step("${SUBLET_BIN}" catalog build "${CAT}" --epochs 4 --scale 0.03
         --seed 11 --start 1704067200 --step 2592000)
if(NOT STEP_OUTPUT MATCHES "epoch 1704067200: full")
  message(FATAL_ERROR "catalog build did not anchor a full snapshot: ${STEP_OUTPUT}")
endif()
if(NOT STEP_OUTPUT MATCHES "4 epochs")
  message(FATAL_ERROR "catalog build epoch count wrong: ${STEP_OUTPUT}")
endif()

run_step("${SUBLET_BIN}" catalog ls "${CAT}")
if(NOT STEP_OUTPUT MATCHES "4 epochs")
  message(FATAL_ERROR "catalog ls epoch count wrong: ${STEP_OUTPUT}")
endif()

# Deep verify replays every chain and re-encodes: byte-identity checked.
run_step("${SUBLET_BIN}" catalog verify "${CAT}" --deep)
if(NOT STEP_OUTPUT MATCHES "ok: 4 epochs \\(deep\\)")
  message(FATAL_ERROR "catalog deep verify failed: ${STEP_OUTPUT}")
endif()

# Append a fifth epoch from a pipeline artifact CSV.
run_step("${SUBLET_BIN}" catalog append "${CAT}" "${DATA}/leases-a.csv"
         --epoch 1800000000)
if(NOT STEP_OUTPUT MATCHES "epoch 1800000000:")
  message(FATAL_ERROR "catalog append did not report its epoch: ${STEP_OUTPUT}")
endif()
run_step("${SUBLET_BIN}" catalog ls "${CAT}")
if(NOT STEP_OUTPUT MATCHES "5 epochs")
  message(FATAL_ERROR "appended epoch missing from ls: ${STEP_OUTPUT}")
endif()
run_step("${SUBLET_BIN}" catalog verify "${CAT}")
if(NOT STEP_OUTPUT MATCHES "ok: 5 epochs")
  message(FATAL_ERROR "catalog verify failed after append: ${STEP_OUTPUT}")
endif()

run_fail("${SUBLET_BIN}" catalog)
run_fail("${SUBLET_BIN}" catalog frob "${CAT}")
run_fail("${SUBLET_BIN}" catalog append "${CAT}" "${DATA}/leases-a.csv")
run_fail("${SUBLET_BIN}" catalog build "${CAT}" --epochs junk)

# --- serving: background server -> port file -> query -> shutdown ---
find_program(SH_BIN sh)
if(SH_BIN)
  file(REMOVE "${DATA}/port.txt")
  execute_process(
    COMMAND "${SH_BIN}" -c
      "'${SUBLET_BIN}' serve '${DATA}/leases.snap' --shards 2 --port-file '${DATA}/port.txt' > '${DATA}/serve.log' 2>&1 &"
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "failed to launch background server")
  endif()
  set(PORT "")
  foreach(attempt RANGE 100)
    if(EXISTS "${DATA}/port.txt")
      file(READ "${DATA}/port.txt" PORT)
      string(STRIP "${PORT}" PORT)
      if(NOT PORT STREQUAL "")
        break()
      endif()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  endforeach()
  if(PORT STREQUAL "")
    file(READ "${DATA}/serve.log" SERVE_LOG)
    message(FATAL_ERROR "server never published its port:\n${SERVE_LOG}")
  endif()

  run_step("${SUBLET_BIN}" query "127.0.0.1:${PORT}" 20.0.0.0/24)
  if(NOT STEP_OUTPUT MATCHES "\"found\":true")
    message(FATAL_ERROR "query missed a known leaf: ${STEP_OUTPUT}")
  endif()
  if(NOT STEP_OUTPUT MATCHES "\"prefix\":\"20.0.0.0/24\"")
    message(FATAL_ERROR "query returned the wrong record: ${STEP_OUTPUT}")
  endif()

  run_step("${SUBLET_BIN}" query "127.0.0.1:${PORT}" --lpm 20.0.0.99)
  if(NOT STEP_OUTPUT MATCHES "\"prefix\":\"20.0.0.0/24\"")
    message(FATAL_ERROR "LPM did not resolve to the covering leaf: ${STEP_OUTPUT}")
  endif()

  # --bin sends the addresses as one binary LPM frame; the hit must agree
  # with the text LPM above, and the miss must come back found:false.
  run_step("${SUBLET_BIN}" query "127.0.0.1:${PORT}" --bin 20.0.0.99
           203.0.113.9)
  if(NOT STEP_OUTPUT MATCHES "\"addr\":\"20.0.0.99\",\"found\":true,\"prefix\":\"20.0.0.0/24\"")
    message(FATAL_ERROR "binary LPM disagrees with text LPM: ${STEP_OUTPUT}")
  endif()
  if(NOT STEP_OUTPUT MATCHES "\"addr\":\"203.0.113.9\",\"found\":false")
    message(FATAL_ERROR "binary LPM invented a record for a miss: ${STEP_OUTPUT}")
  endif()

  # --- robustness surface: HEALTH, hot RELOAD, generation bump ---
  run_step("${SUBLET_BIN}" query "127.0.0.1:${PORT}" --health)
  if(NOT STEP_OUTPUT MATCHES "\"generation\":1")
    message(FATAL_ERROR "HEALTH missing generation 1: ${STEP_OUTPUT}")
  endif()
  if(NOT STEP_OUTPUT MATCHES "\"draining\":false")
    message(FATAL_ERROR "HEALTH claims draining on a live server: ${STEP_OUTPUT}")
  endif()

  run_step("${SUBLET_BIN}" query "127.0.0.1:${PORT}"
           --reload "${DATA}/leases.snap" --timeout-ms 10000 --retries 3)
  if(NOT STEP_OUTPUT MATCHES "\"ok\":true")
    message(FATAL_ERROR "RELOAD was not acknowledged: ${STEP_OUTPUT}")
  endif()
  if(NOT STEP_OUTPUT MATCHES "\"generation\":2")
    message(FATAL_ERROR "RELOAD did not advance the generation: ${STEP_OUTPUT}")
  endif()

  run_step("${SUBLET_BIN}" query "127.0.0.1:${PORT}" --health)
  if(NOT STEP_OUTPUT MATCHES "\"generation\":2")
    message(FATAL_ERROR "HEALTH does not reflect the reload: ${STEP_OUTPUT}")
  endif()

  # A RELOAD pointing at garbage is refused and generation 2 keeps serving.
  execute_process(COMMAND "${SUBLET_BIN}" query "127.0.0.1:${PORT}"
                  --reload "${DATA}/leases-truncated.snap"
                  OUTPUT_VARIABLE RELOAD_BAD ERROR_QUIET)
  if(NOT RELOAD_BAD MATCHES "reload failed")
    message(FATAL_ERROR "bad RELOAD was not rejected: ${RELOAD_BAD}")
  endif()
  run_step("${SUBLET_BIN}" query "127.0.0.1:${PORT}" 20.0.0.0/24)
  if(NOT STEP_OUTPUT MATCHES "\"found\":true")
    message(FATAL_ERROR "server stopped serving after a bad RELOAD: ${STEP_OUTPUT}")
  endif()

  # METRICS: Prometheus text covering the serve, snapshot, and pipeline
  # families (pipeline families are pre-registered at zero in a serve-only
  # process), framed by the "# EOF" terminator line.
  run_step("${SUBLET_BIN}" query "127.0.0.1:${PORT}" --metrics)
  foreach(family "sublet_serve_requests_total" "sublet_serve_latency_ns"
          "sublet_snapshot_loads_total" "sublet_classify_leaves_total"
          "sublet_whois_records_total")
    if(NOT STEP_OUTPUT MATCHES "# TYPE ${family}")
      message(FATAL_ERROR "METRICS missing family ${family}: ${STEP_OUTPUT}")
    endif()
  endforeach()
  if(NOT STEP_OUTPUT MATCHES "# EOF")
    message(FATAL_ERROR "METRICS body not terminated by # EOF")
  endif()

  # INSPECT: one JSON line of per-shard introspection — live connection
  # table, timer depths, flight-recorder ring tail (docs/OBSERVABILITY.md).
  run_step("${SUBLET_BIN}" query "127.0.0.1:${PORT}" --inspect)
  if(NOT STEP_OUTPUT MATCHES "\"ok\":true")
    message(FATAL_ERROR "INSPECT did not answer ok: ${STEP_OUTPUT}")
  endif()
  if(NOT STEP_OUTPUT MATCHES "\"shard_count\":2")
    message(FATAL_ERROR "INSPECT shard count wrong: ${STEP_OUTPUT}")
  endif()
  foreach(key "\"connections\"" "\"timers\"" "\"ring_tail\"" "\"recorded\""
          "\"exemplars\"")
    if(NOT STEP_OUTPUT MATCHES "${key}")
      message(FATAL_ERROR "INSPECT missing ${key}: ${STEP_OUTPUT}")
    endif()
  endforeach()
  # The inspecting connection itself must show up as a live row.
  if(NOT STEP_OUTPUT MATCHES "\"peer\":\"127.0.0.1:")
    message(FATAL_ERROR "INSPECT has no live connection row: ${STEP_OUTPUT}")
  endif()

  # `sublet top --once`: one plain (no ANSI) dashboard sample polled from
  # METRICS + INSPECT — the scriptable form.
  run_step("${SUBLET_BIN}" top "127.0.0.1:${PORT}" --once)
  if(NOT STEP_OUTPUT MATCHES "sublet top")
    message(FATAL_ERROR "top --once printed no header: ${STEP_OUTPUT}")
  endif()
  if(NOT STEP_OUTPUT MATCHES "shards=2")
    message(FATAL_ERROR "top --once missing shard count: ${STEP_OUTPUT}")
  endif()
  if(NOT STEP_OUTPUT MATCHES "recorder=on")
    message(FATAL_ERROR "top --once missing recorder state: ${STEP_OUTPUT}")
  endif()
  if(NOT STEP_OUTPUT MATCHES "verb     requests")
    message(FATAL_ERROR "top --once missing the verb table: ${STEP_OUTPUT}")
  endif()
  run_fail("${SUBLET_BIN}" top)
  run_fail("${SUBLET_BIN}" top "127.0.0.1:${PORT}" --interval-ms junk)

  run_step("${SUBLET_BIN}" query "127.0.0.1:${PORT}" --stats --shutdown)
  if(NOT STEP_OUTPUT MATCHES "\"requests\":")
    message(FATAL_ERROR "STATS returned no counters: ${STEP_OUTPUT}")
  endif()
  if(NOT STEP_OUTPUT MATCHES "\"stopping\":true")
    message(FATAL_ERROR "SHUTDOWN was not acknowledged: ${STEP_OUTPUT}")
  endif()

  # The server exits after SHUTDOWN; a fresh connect must now fail.
  foreach(attempt RANGE 50)
    execute_process(COMMAND "${SUBLET_BIN}" query "127.0.0.1:${PORT}"
                    20.0.0.0/24
                    RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
    if(NOT code EQUAL 0)
      break()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  endforeach()
  if(code EQUAL 0)
    message(FATAL_ERROR "server still accepting after SHUTDOWN")
  endif()

  # --- time travel: serve --catalog -> STATS epochs -> AT -> HISTORY ---
  file(REMOVE "${DATA}/port.txt")
  execute_process(
    COMMAND "${SH_BIN}" -c
      "'${SUBLET_BIN}' serve --catalog '${CAT}' --shards 2 --port-file '${DATA}/port.txt' > '${DATA}/serve-catalog.log' 2>&1 &"
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "failed to launch catalog-mode server")
  endif()
  set(PORT "")
  foreach(attempt RANGE 100)
    if(EXISTS "${DATA}/port.txt")
      file(READ "${DATA}/port.txt" PORT)
      string(STRIP "${PORT}" PORT)
      if(NOT PORT STREQUAL "")
        break()
      endif()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  endforeach()
  if(PORT STREQUAL "")
    file(READ "${DATA}/serve-catalog.log" SERVE_LOG)
    message(FATAL_ERROR "catalog server never published its port:\n${SERVE_LOG}")
  endif()

  run_step("${SUBLET_BIN}" query "127.0.0.1:${PORT}" --stats)
  if(NOT STEP_OUTPUT MATCHES "\"epochs\":{\"count\":5,\"first\":1704067200,\"last\":1800000000}")
    message(FATAL_ERROR "catalog STATS missing the epoch range: ${STEP_OUTPUT}")
  endif()

  # AT pins the answer to epoch 1 and echoes the resolved epoch.
  run_step("${SUBLET_BIN}" query "127.0.0.1:${PORT}" --at 1704067200
           20.0.0.0/24)
  if(NOT STEP_OUTPUT MATCHES "\"epoch\":1704067200")
    message(FATAL_ERROR "AT did not resolve to the first epoch: ${STEP_OUTPUT}")
  endif()
  # Between epochs 1 and 2: as-of resolves back to epoch 1.
  run_step("${SUBLET_BIN}" query "127.0.0.1:${PORT}" --at 1704067201
           --lpm 20.0.0.99)
  if(NOT STEP_OUTPUT MATCHES "\"epoch\":1704067200")
    message(FATAL_ERROR "AT as-of semantics broken: ${STEP_OUTPUT}")
  endif()

  # HISTORY replays the prefix across all five epochs in one line.
  run_step("${SUBLET_BIN}" query "127.0.0.1:${PORT}" --history 20.0.0.0/24)
  if(NOT STEP_OUTPUT MATCHES "\"query\":\"20.0.0.0/24\"")
    message(FATAL_ERROR "HISTORY did not echo the query: ${STEP_OUTPUT}")
  endif()
  if(NOT STEP_OUTPUT MATCHES "\"epochs\":5")
    message(FATAL_ERROR "HISTORY replayed the wrong epoch count: ${STEP_OUTPUT}")
  endif()
  if(NOT STEP_OUTPUT MATCHES "\"transitions\":")
    message(FATAL_ERROR "HISTORY output missing transitions: ${STEP_OUTPUT}")
  endif()

  # The binary frame carries the epoch field too.
  run_step("${SUBLET_BIN}" query "127.0.0.1:${PORT}" --bin
           --at 1704067200 20.0.0.99)
  if(NOT STEP_OUTPUT MATCHES "\"addr\":\"20.0.0.99\"")
    message(FATAL_ERROR "binary AT batch returned nothing: ${STEP_OUTPUT}")
  endif()

  run_step("${SUBLET_BIN}" query "127.0.0.1:${PORT}" --shutdown)
  if(NOT STEP_OUTPUT MATCHES "\"stopping\":true")
    message(FATAL_ERROR "catalog server SHUTDOWN not acknowledged: ${STEP_OUTPUT}")
  endif()
  foreach(attempt RANGE 50)
    execute_process(COMMAND "${SUBLET_BIN}" query "127.0.0.1:${PORT}"
                    20.0.0.0/24
                    RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
    if(NOT code EQUAL 0)
      break()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  endforeach()
  if(code EQUAL 0)
    message(FATAL_ERROR "catalog server still accepting after SHUTDOWN")
  endif()
else()
  message(STATUS "sh not found; skipping background server smoke")
endif()

# --- mini-soak: ~5s of `sublet load` with chaos, gated on the SLO ---
# (docs/ROBUSTNESS.md "Soak & chaos"; exit code mirrors slo.pass).
# Called directly, not via run_step: the scenario string contains `;`,
# which would be re-split as a list by ${ARGV} inside a function.
execute_process(COMMAND "${SUBLET_BIN}" load --seed 23 --workers 2
                --duration-ms 4000 --qps 250 --world-scale 0.02
                --world-epochs 3 --world-pending 2
                --scenario "append@1200;reload@2200;churn@3000:10"
                --spot-every 16 --report "${DATA}/soak-report.json"
                RESULT_VARIABLE code
                OUTPUT_VARIABLE STEP_OUTPUT
                ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "mini-soak failed (${code}):\n${STEP_OUTPUT}\n${err}")
endif()
foreach(key "\"schedule_digest\"" "\"spot_checks\"" "\"wrong_answers\":0"
        "\"uninjected_errors\":0" "\"pass\":true" "\"appends\":1")
  if(NOT STEP_OUTPUT MATCHES "${key}")
    message(FATAL_ERROR "mini-soak report missing ${key}: ${STEP_OUTPUT}")
  endif()
endforeach()
if(NOT EXISTS "${DATA}/soak-report.json")
  message(FATAL_ERROR "mini-soak did not write --report file")
endif()

run_fail("${SUBLET_BIN}" load --bogus-flag)
run_fail("${SUBLET_BIN}" load --workers junk)
run_fail("${SUBLET_BIN}" load --workers 0)
run_fail("${SUBLET_BIN}" serve nope.snap --max-outbuf-bytes junk)
execute_process(COMMAND "${SUBLET_BIN}" load --scenario "meteor@1000"
                RESULT_VARIABLE code OUTPUT_QUIET ERROR_VARIABLE err)
if(code EQUAL 0)
  message(FATAL_ERROR "load accepted an unknown chaos kind")
endif()

file(REMOVE_RECURSE "${DATA}")
message(STATUS "cli smoke ok")
