# End-to-end smoke test for the `sublet` CLI, run under ctest:
#   generate -> infer -> evaluate -> abuse -> report -> explain -> dump -> churn
if(NOT DEFINED SUBLET_BIN)
  message(FATAL_ERROR "pass -DSUBLET_BIN=<path to sublet>")
endif()

set(WORK "$ENV{TMPDIR}")
if(WORK STREQUAL "")
  set(WORK "/tmp")
endif()
set(DATA "${WORK}/sublet-cli-smoke")
file(REMOVE_RECURSE "${DATA}")

function(run_step)
  execute_process(COMMAND ${ARGV}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}\n${err}")
  endif()
  set(STEP_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

run_step("${SUBLET_BIN}" generate "${DATA}" --scale 0.03 --seed 11)

run_step("${SUBLET_BIN}" infer "${DATA}" -o "${DATA}/leases-a.csv")
if(NOT STEP_OUTPUT MATCHES "inferred leased")
  message(FATAL_ERROR "infer produced no summary: ${STEP_OUTPUT}")
endif()

run_step("${SUBLET_BIN}" evaluate "${DATA}")
if(NOT STEP_OUTPUT MATCHES "precision")
  message(FATAL_ERROR "evaluate printed no metrics: ${STEP_OUTPUT}")
endif()

run_step("${SUBLET_BIN}" abuse "${DATA}")
if(NOT STEP_OUTPUT MATCHES "risk ratio")
  message(FATAL_ERROR "abuse printed no ratio: ${STEP_OUTPUT}")
endif()

run_step("${SUBLET_BIN}" report "${DATA}")
if(NOT STEP_OUTPUT MATCHES "Inference groups per region")
  message(FATAL_ERROR "report missing sections: ${STEP_OUTPUT}")
endif()

run_step("${SUBLET_BIN}" explain "${DATA}" 20.0.0.0/24)
if(NOT STEP_OUTPUT MATCHES "verdict")
  message(FATAL_ERROR "explain printed no verdict: ${STEP_OUTPUT}")
endif()

file(GLOB MRT_FILES "${DATA}/bgp/*.mrt")
list(GET MRT_FILES 0 FIRST_MRT)
run_step("${SUBLET_BIN}" dump "${FIRST_MRT}")
if(NOT STEP_OUTPUT MATCHES "TABLE_DUMP2")
  message(FATAL_ERROR "dump produced no bgpdump lines")
endif()

# churn against itself: everything stable.
run_step("${SUBLET_BIN}" churn "${DATA}/leases-a.csv" "${DATA}/leases-a.csv")
if(NOT STEP_OUTPUT MATCHES "churn rate:      0.0%")
  message(FATAL_ERROR "self-churn should be zero: ${STEP_OUTPUT}")
endif()

file(REMOVE_RECURSE "${DATA}")
message(STATUS "cli smoke ok")
