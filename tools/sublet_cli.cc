// sublet — command-line front end to the lease-inference library.
//
//   sublet generate <dir> [--scale S] [--seed N]   emit a synthetic dataset
//   sublet infer <dataset> [-o leases.csv]         run the pipeline
//   sublet explain <dataset> <prefix>...           verdict walkthroughs
//   sublet evaluate <dataset>                      Table-2 style evaluation
//   sublet abuse <dataset>                         blocklist cross-reference
//   sublet timeline <updates.mrt> <rpki-dir> <prefix> [from] [to]
//                                                  lease-history (Figure 3)
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "asgraph/as_graph.h"
#include "bgp/origin_tracker.h"
#include "mrt/bgpdump_text.h"
#include "leasing/abuse_analysis.h"
#include "leasing/dataset.h"
#include "leasing/evaluation.h"
#include "leasing/pipeline.h"
#include "leasing/churn.h"
#include "leasing/report.h"
#include "leasing/summary.h"
#include "leasing/timeline.h"
#include "simnet/builder.h"
#include "simnet/emit.h"
#include "util/log.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "util/table.h"

using namespace sublet;

namespace {

int usage() {
  std::cerr <<
      "usage: sublet [--threads N] <command> [args]\n"
      "  --threads N   worker threads for parse/load/classify/emit\n"
      "                (default: hardware concurrency; 1 = serial)\n"
      "  generate <dir> [--scale S] [--seed N]   emit a synthetic dataset\n"
      "  infer <dataset> [-o leases.csv]         classify and export\n"
      "  explain <dataset> <prefix>...           per-prefix walkthrough\n"
      "  evaluate <dataset>                      broker/ISP reference eval\n"
      "  abuse <dataset>                         blocklist cross-reference\n"
      "  timeline <updates.mrt> <rpki-dir> <prefix> [from] [to]\n"
      "                                          lease-history reconstruction\n"
      "  churn <leases-a.csv> <leases-b.csv>     diff two inference exports\n"
      "  report <dataset>                        full measurement summary\n"
      "  dump <rib.mrt>                          MRT -> bgpdump -m text\n";
  return 2;
}

struct LoadedRun {
  leasing::DatasetBundle bundle;
  asgraph::AsGraph graph;
  std::vector<leasing::LeaseInference> results;

  explicit LoadedRun(const std::string& dir)
      : bundle(leasing::load_dataset(dir)),
        graph(&bundle.as_rel, &bundle.as2org) {
    leasing::Pipeline pipeline(bundle.rib, graph);
    for (const whois::WhoisDb& db : bundle.whois) {
      auto partial = pipeline.classify(db);
      results.insert(results.end(), partial.begin(), partial.end());
    }
  }
};

int cmd_generate(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  sim::WorldConfig config;
  config.scale = 0.1;
  config.seed = 42;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--scale" && i + 1 < args.size()) {
      config.scale = std::stod(args[++i]);
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      config.seed = std::stoull(args[++i]);
    } else {
      std::cerr << "unknown option " << args[i] << "\n";
      return usage();
    }
  }
  sim::World world = sim::build_world(config);
  sim::emit_world(world, args[0]);
  std::cout << "wrote dataset with " << world.leaves.size() << " leaves / "
            << world.ases.size() << " ASes to " << args[0] << "\n";
  return 0;
}

int cmd_infer(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  std::optional<std::string> out_path;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) out_path = args[++i];
  }
  LoadedRun run(args[0]);
  auto counts = leasing::Pipeline::count_groups(run.results);
  std::cout << "classified " << with_commas(counts.total())
            << " sub-allocations; " << with_commas(counts.leased())
            << " inferred leased\n";
  if (out_path) {
    leasing::save_inferences_csv(*out_path, run.results);
    std::cout << "inferences written to " << *out_path << "\n";
  } else {
    leasing::write_inferences_csv(std::cout, run.results);
  }
  return 0;
}

int cmd_explain(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  leasing::DatasetBundle bundle = leasing::load_dataset(args[0]);
  asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);
  leasing::Pipeline pipeline(bundle.rib, graph);
  for (std::size_t i = 1; i < args.size(); ++i) {
    auto prefix = Prefix::parse(args[i]);
    if (!prefix) {
      std::cerr << "bad prefix '" << args[i] << "'\n";
      continue;
    }
    bool found = false;
    for (const whois::WhoisDb& db : bundle.whois) {
      auto tree = whois::AllocationTree::build(db);
      if (!tree.root_of(*prefix)) continue;
      std::cout << pipeline.explain(*prefix, db) << "\n";
      found = true;
      break;
    }
    if (!found) {
      std::cout << prefix->to_string()
                << ": not in any RIR's allocation tree\n\n";
    }
  }
  return 0;
}

int cmd_evaluate(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  LoadedRun run(args[0]);
  leasing::ReferenceDataset reference;
  for (const whois::WhoisDb& db : run.bundle.whois) {
    auto brokers = run.bundle.brokers.find(db.rir());
    if (brokers != run.bundle.brokers.end()) {
      auto match =
          leasing::match_brokers(db, brokers->second, run.bundle.rib);
      for (const Prefix& p : match.prefixes) reference.add(p, true);
    }
    auto isps = run.bundle.eval_isp_orgs.find(db.rir());
    if (isps != run.bundle.eval_isp_orgs.end()) {
      auto tree = whois::AllocationTree::build(db);
      for (const Prefix& p :
           leasing::isp_negatives(db, isps->second, tree, run.bundle.rib)) {
        reference.add(p, false);
      }
    }
  }
  if (reference.labels.empty()) {
    std::cerr << "dataset has no broker/ISP reference lists\n";
    return 1;
  }
  auto m = leasing::evaluate(run.results, reference);
  std::cout << "reference: " << with_commas(reference.positives())
            << " positives, " << with_commas(reference.negatives())
            << " negatives\n";
  std::cout << "TP=" << m.tp << " FN=" << m.fn << " FP=" << m.fp
            << " TN=" << m.tn << "\n";
  std::cout << "precision " << fixed(m.precision(), 3) << ", recall "
            << fixed(m.recall(), 3) << ", specificity "
            << fixed(m.specificity(), 3) << ", accuracy "
            << fixed(m.accuracy(), 3) << "\n";
  return 0;
}

int cmd_abuse(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  LoadedRun run(args[0]);
  leasing::AbuseAnalysis analysis(run.results, run.bundle.rib);
  auto drop = analysis.prefix_overlap(run.bundle.drop);
  std::cout << "DROP-originated: leased " << percent(drop.leased_fraction())
            << " vs non-leased " << percent(drop.nonleased_fraction())
            << " (risk ratio " << fixed(drop.risk_ratio(), 1) << "x)\n";
  auto hijack = analysis.prefix_overlap(run.bundle.hijackers);
  std::cout << "hijacker-originated: leased "
            << percent(hijack.leased_fraction()) << " vs non-leased "
            << percent(hijack.nonleased_fraction()) << "\n";
  if (const rpki::VrpSet* vrps = run.bundle.current_vrps()) {
    auto roa = analysis.roa_overlap(*vrps, run.bundle.drop);
    if (roa.leased_roas_total) {
      std::cout << "ROAs authorizing DROP ASes: leased "
                << percent(static_cast<double>(roa.leased_roas_listed) /
                           roa.leased_roas_total)
                << "\n";
    }
  }
  return 0;
}

int cmd_timeline(const std::vector<std::string>& args) {
  if (args.size() < 3) return usage();
  auto prefix = Prefix::parse(args[2]);
  if (!prefix) {
    std::cerr << "bad prefix '" << args[2] << "'\n";
    return 1;
  }
  bgp::OriginTracker tracker;
  auto applied = bgp::replay_updates_file(args[0], tracker);
  if (!applied) {
    std::cerr << applied.error().to_string() << "\n";
    return 1;
  }
  auto archive = rpki::RpkiArchive::load_directory(args[1]);
  auto timestamps = archive.timestamps();
  std::uint32_t from = args.size() > 3
                           ? static_cast<std::uint32_t>(std::stoul(args[3]))
                           : (timestamps.empty() ? 0 : timestamps.front());
  std::uint32_t to = args.size() > 4
                         ? static_cast<std::uint32_t>(std::stoul(args[4]))
                         : (timestamps.empty() ? UINT32_MAX
                                               : timestamps.back());
  auto history = leasing::LeaseTimeline::history_from_tracker(tracker,
                                                              *prefix);
  auto events =
      leasing::LeaseTimeline::collect(*prefix, archive, history, from, to);
  std::cout << leasing::LeaseTimeline::render(events, from, to);
  for (const auto& period : leasing::LeaseTimeline::segment(events)) {
    std::cout << (period.is_as0_gap() ? "AS0 quarantine"
                                      : "lease " + period.asn.to_string())
              << "  [" << period.start << " .. " << period.end << "]\n";
  }
  return 0;
}

int cmd_report(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  LoadedRun run(args[0]);
  std::cout << leasing::render_summary(run.bundle, run.results);
  return 0;
}

int cmd_dump(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  auto snapshot = mrt::read_rib_file(args[0]);
  if (!snapshot) {
    std::cerr << snapshot.error().to_string() << "\n";
    return 1;
  }
  mrt::write_bgpdump_text(std::cout, *snapshot);
  return 0;
}

int cmd_churn(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  auto before = leasing::load_inferences_csv(args[0]);
  auto after = leasing::load_inferences_csv(args[1]);
  if (!before || !after) {
    std::cerr << (before ? after.error() : before.error()).to_string()
              << "\n";
    return 1;
  }
  auto churn = leasing::diff_inferences(*before, *after);
  std::cout << "new leases:      " << churn.started.size() << "\n";
  std::cout << "ended leases:    " << churn.ended.size() << "\n";
  std::cout << "lessee changed:  " << churn.lessee_changed.size() << "\n";
  std::cout << "stable:          " << churn.stable.size() << "\n";
  std::cout << "churn rate:      " << percent(churn.churn_rate()) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  // Global --threads flag: accepted anywhere, consumed before dispatch.
  std::vector<std::string> all(argv + 1, argv + argc);
  for (std::size_t i = 0; i < all.size();) {
    std::optional<std::uint32_t> threads;
    if (all[i] == "--threads" && i + 1 < all.size()) {
      threads = parse_u32(all[i + 1]);
      if (!threads || *threads == 0) {
        std::cerr << "--threads expects a positive integer\n";
        return 2;
      }
      all.erase(all.begin() + static_cast<std::ptrdiff_t>(i),
                all.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (all[i].rfind("--threads=", 0) == 0) {
      threads = parse_u32(std::string_view(all[i]).substr(10));
      if (!threads || *threads == 0) {
        std::cerr << "--threads expects a positive integer\n";
        return 2;
      }
      all.erase(all.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
      continue;
    }
    par::set_default_threads(*threads);
  }
  if (all.empty()) return usage();
  std::string command = all[0];
  std::vector<std::string> args(all.begin() + 1, all.end());
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "infer") return cmd_infer(args);
    if (command == "explain") return cmd_explain(args);
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "abuse") return cmd_abuse(args);
    if (command == "timeline") return cmd_timeline(args);
    if (command == "churn") return cmd_churn(args);
    if (command == "report") return cmd_report(args);
    if (command == "dump") return cmd_dump(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
