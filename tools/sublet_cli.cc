// sublet — command-line front end to the lease-inference library.
//
//   sublet generate <dir> [--scale S] [--seed N]   emit a synthetic dataset
//   sublet infer <dataset> [-o leases.csv]         run the pipeline
//   sublet explain <dataset> <prefix>...           verdict walkthroughs
//   sublet evaluate <dataset>                      Table-2 style evaluation
//   sublet abuse <dataset>                         blocklist cross-reference
//   sublet timeline <updates.mrt> <rpki-dir> <prefix> [from] [to]
//                                                  lease-history (Figure 3)
//   sublet snapshot write|read|verify ...          binary inference snapshots
//   sublet catalog build|append|ls|verify ...      multi-epoch catalogs
//   sublet serve <file.snap> [--port N]            TCP prefix-query server
//   sublet serve --catalog <dir> [--port N]        time-travel serving
//   sublet query <host:port> <prefix>...           one-shot protocol client
#include <atomic>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "asgraph/as_graph.h"
#include "bgp/origin_tracker.h"
#include "catalog/catalog.h"
#include "mrt/bgpdump_text.h"
#include "obs/trace.h"
#include "leasing/abuse_analysis.h"
#include "leasing/dataset.h"
#include "leasing/evaluation.h"
#include "leasing/pipeline.h"
#include "leasing/churn.h"
#include "leasing/report.h"
#include "leasing/summary.h"
#include "leasing/timeline.h"
#include "serve/client.h"
#include "serve/engine_state.h"
#include "serve/server.h"
#include "loadgen/loadgen.h"
#include "simnet/builder.h"
#include "simnet/emit.h"
#include "simnet/timeline_scenario.h"
#include "snapshot/snapshot.h"
#include "snapshot/writer.h"
#include "top.h"
#include "util/log.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "util/table.h"

using namespace sublet;

namespace {

int usage() {
  std::cerr <<
      "usage: sublet [--threads N] [--trace-json F] [--log-json] <command> [args]\n"
      "  --threads N     worker threads for parse/load/classify/emit\n"
      "                  (default: hardware concurrency; 1 = serial)\n"
      "  --trace-json F  write a Chrome trace-viewer span file for the run\n"
      "                  (docs/OBSERVABILITY.md)\n"
      "  --log-json      one-line JSON log records instead of [LEVEL] text\n"
      "  generate <dir> [--scale S] [--seed N]   emit a synthetic dataset\n"
      "  infer <dataset> [-o leases.csv]         classify and export\n"
      "  explain <dataset> <prefix>...           per-prefix walkthrough\n"
      "  evaluate <dataset>                      broker/ISP reference eval\n"
      "  abuse <dataset>                         blocklist cross-reference\n"
      "  timeline <updates.mrt> <rpki-dir> <prefix> [from] [to]\n"
      "                                          lease-history reconstruction\n"
      "  churn <leases-a.csv> <leases-b.csv>     diff two inference exports\n"
      "  report <dataset>                        full measurement summary\n"
      "  dump <rib.mrt>                          MRT -> bgpdump -m text\n"
      "  snapshot write <leases.csv> <out.snap>  pack inferences for serving\n"
      "  snapshot read <in.snap> [-o out.csv]    unpack back to the artifact\n"
      "  snapshot verify <in.snap>               check magic/version/CRC\n"
      "  catalog build <dir> [--epochs N] [--scale S] [--seed N]\n"
      "        [--start TS] [--step SECONDS]     synthesize a multi-epoch\n"
      "                                          catalog (docs/TIMETRAVEL.md)\n"
      "  catalog append <dir> <leases.csv> --epoch TS [--max-delta-frac F]\n"
      "        [--full]                          append one epoch (delta or\n"
      "                                          full per the size guard)\n"
      "  catalog ls <dir>                        list epochs\n"
      "  catalog verify <dir> [--deep]           check every epoch + chain\n"
      "  serve <in.snap> [--port N] [--port-file F] [--shards N]\n"
      "        [--max-conns N] [--idle-timeout-ms N] [--io-timeout-ms N]\n"
      "        [--drain-ms N] [--max-outbuf-bytes N] [--slow-threshold-us N]\n"
      "        [--reload-on-sighup]\n"
      "                                          prefix-query server (see\n"
      "                                          docs/SERVING.md and\n"
      "                                          docs/ROBUSTNESS.md)\n"
      "  serve --catalog <dir> [same flags]      time-travel server: AT and\n"
      "                                          HISTORY answer from any\n"
      "                                          epoch; RELOAD re-scans the\n"
      "                                          catalog for appended epochs\n"
      "  load [--seed N] [--workers N] [--duration-ms N] [--qps F]\n"
      "        [--zipf-alpha F] [--scenario S] [--world-scale F]\n"
      "        [--world-seed N] [--world-epochs N] [--world-pending N]\n"
      "        [--catalog <dir>] [--shards N] [--batch N] [--depth N]\n"
      "        [--p99-us F] [--heavy-p99-us F] [--spot-every N]\n"
      "        [--max-outbuf-bytes N] [--report F] [--run-dir D]\n"
      "        [--keep-run-dir] [--fork-server]    seed-keyed soak + chaos\n"
      "                                          driver; prints the SLO\n"
      "                                          report JSON and exits 0\n"
      "                                          only if slo.pass (see\n"
      "                                          docs/ROBUSTNESS.md)\n"
      "  query <host:port> [--lpm|--bin|--stats|--health|--metrics|--shutdown]\n"
      "        [--inspect] [--at TS] [--history] [--reload <path.snap>]\n"
      "        [--timeout-ms N] [--retries N]\n"
      "        <prefix>...                       one-shot loopback client\n"
      "                                          (--bin batches the addresses\n"
      "                                          into one binary LPM frame;\n"
      "                                          --at / --history need a\n"
      "                                          catalog-mode server;\n"
      "                                          --inspect dumps the per-shard\n"
      "                                          flight-recorder JSON)\n"
      "  top <host:port> [--interval-ms N] [--count N] [--once]\n"
      "                                          live dashboard: per-verb QPS\n"
      "                                          and p50/p99, per-shard conns,\n"
      "                                          slow-request table (--once\n"
      "                                          prints one plain sample)\n";
  return 2;
}

struct LoadedRun {
  leasing::DatasetBundle bundle;
  asgraph::AsGraph graph;
  std::vector<leasing::LeaseInference> results;

  explicit LoadedRun(const std::string& dir)
      : bundle(leasing::load_dataset(dir)),
        graph(&bundle.as_rel, &bundle.as2org) {
    leasing::Pipeline pipeline(bundle.rib, graph);
    for (const whois::WhoisDb& db : bundle.whois) {
      auto partial = pipeline.classify(db);
      results.insert(results.end(), partial.begin(), partial.end());
    }
  }
};

int cmd_generate(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  sim::WorldConfig config;
  config.scale = 0.1;
  config.seed = 42;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--scale" && i + 1 < args.size()) {
      config.scale = std::stod(args[++i]);
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      config.seed = std::stoull(args[++i]);
    } else {
      std::cerr << "unknown option " << args[i] << "\n";
      return usage();
    }
  }
  sim::World world = sim::build_world(config);
  sim::emit_world(world, args[0]);
  std::cout << "wrote dataset with " << world.leaves.size() << " leaves / "
            << world.ases.size() << " ASes to " << args[0] << "\n";
  return 0;
}

int cmd_infer(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  std::optional<std::string> out_path;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) {
      out_path = args[++i];
    } else {
      std::cerr << "unknown option " << args[i] << "\n";
      return usage();
    }
  }
  LoadedRun run(args[0]);
  auto counts = leasing::Pipeline::count_groups(run.results);
  std::cout << "classified " << with_commas(counts.total())
            << " sub-allocations; " << with_commas(counts.leased())
            << " inferred leased\n";
  if (out_path) {
    leasing::save_inferences_csv(*out_path, run.results);
    std::cout << "inferences written to " << *out_path << "\n";
  } else {
    leasing::write_inferences_csv(std::cout, run.results);
  }
  return 0;
}

int cmd_explain(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  leasing::DatasetBundle bundle = leasing::load_dataset(args[0]);
  asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);
  leasing::Pipeline pipeline(bundle.rib, graph);
  for (std::size_t i = 1; i < args.size(); ++i) {
    auto prefix = Prefix::parse(args[i]);
    if (!prefix) {
      std::cerr << "bad prefix '" << args[i] << "'\n";
      continue;
    }
    bool found = false;
    for (const whois::WhoisDb& db : bundle.whois) {
      auto tree = whois::AllocationTree::build(db);
      if (!tree.root_of(*prefix)) continue;
      std::cout << pipeline.explain(*prefix, db) << "\n";
      found = true;
      break;
    }
    if (!found) {
      std::cout << prefix->to_string()
                << ": not in any RIR's allocation tree\n\n";
    }
  }
  return 0;
}

int cmd_evaluate(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  LoadedRun run(args[0]);
  leasing::ReferenceDataset reference;
  for (const whois::WhoisDb& db : run.bundle.whois) {
    auto brokers = run.bundle.brokers.find(db.rir());
    if (brokers != run.bundle.brokers.end()) {
      auto match =
          leasing::match_brokers(db, brokers->second, run.bundle.rib);
      for (const Prefix& p : match.prefixes) reference.add(p, true);
    }
    auto isps = run.bundle.eval_isp_orgs.find(db.rir());
    if (isps != run.bundle.eval_isp_orgs.end()) {
      auto tree = whois::AllocationTree::build(db);
      for (const Prefix& p :
           leasing::isp_negatives(db, isps->second, tree, run.bundle.rib)) {
        reference.add(p, false);
      }
    }
  }
  if (reference.labels.empty()) {
    std::cerr << "dataset has no broker/ISP reference lists\n";
    return 1;
  }
  auto m = leasing::evaluate(run.results, reference);
  std::cout << "reference: " << with_commas(reference.positives())
            << " positives, " << with_commas(reference.negatives())
            << " negatives\n";
  std::cout << "TP=" << m.tp << " FN=" << m.fn << " FP=" << m.fp
            << " TN=" << m.tn << "\n";
  std::cout << "precision " << fixed(m.precision(), 3) << ", recall "
            << fixed(m.recall(), 3) << ", specificity "
            << fixed(m.specificity(), 3) << ", accuracy "
            << fixed(m.accuracy(), 3) << "\n";
  return 0;
}

int cmd_abuse(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  LoadedRun run(args[0]);
  leasing::AbuseAnalysis analysis(run.results, run.bundle.rib);
  auto drop = analysis.prefix_overlap(run.bundle.drop);
  std::cout << "DROP-originated: leased " << percent(drop.leased_fraction())
            << " vs non-leased " << percent(drop.nonleased_fraction())
            << " (risk ratio " << fixed(drop.risk_ratio(), 1) << "x)\n";
  auto hijack = analysis.prefix_overlap(run.bundle.hijackers);
  std::cout << "hijacker-originated: leased "
            << percent(hijack.leased_fraction()) << " vs non-leased "
            << percent(hijack.nonleased_fraction()) << "\n";
  if (const rpki::VrpSet* vrps = run.bundle.current_vrps()) {
    auto roa = analysis.roa_overlap(*vrps, run.bundle.drop);
    if (roa.leased_roas_total) {
      std::cout << "ROAs authorizing DROP ASes: leased "
                << percent(static_cast<double>(roa.leased_roas_listed) /
                           roa.leased_roas_total)
                << "\n";
    }
  }
  return 0;
}

int cmd_timeline(const std::vector<std::string>& args) {
  if (args.size() < 3) return usage();
  auto prefix = Prefix::parse(args[2]);
  if (!prefix) {
    std::cerr << "bad prefix '" << args[2] << "'\n";
    return 1;
  }
  bgp::OriginTracker tracker;
  auto applied = bgp::replay_updates_file(args[0], tracker);
  if (!applied) {
    std::cerr << applied.error().to_string() << "\n";
    return 1;
  }
  auto archive = rpki::RpkiArchive::load_directory(args[1]);
  auto timestamps = archive.timestamps();
  std::uint32_t from = args.size() > 3
                           ? static_cast<std::uint32_t>(std::stoul(args[3]))
                           : (timestamps.empty() ? 0 : timestamps.front());
  std::uint32_t to = args.size() > 4
                         ? static_cast<std::uint32_t>(std::stoul(args[4]))
                         : (timestamps.empty() ? UINT32_MAX
                                               : timestamps.back());
  auto history = leasing::LeaseTimeline::history_from_tracker(tracker,
                                                              *prefix);
  auto events =
      leasing::LeaseTimeline::collect(*prefix, archive, history, from, to);
  std::cout << leasing::LeaseTimeline::render(events, from, to);
  for (const auto& period : leasing::LeaseTimeline::segment(events)) {
    std::cout << (period.is_as0_gap() ? "AS0 quarantine"
                                      : "lease " + period.asn.to_string())
              << "  [" << period.start << " .. " << period.end << "]\n";
  }
  return 0;
}

int cmd_report(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  LoadedRun run(args[0]);
  std::cout << leasing::render_summary(run.bundle, run.results);
  return 0;
}

int cmd_dump(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  auto snapshot = mrt::read_rib_file(args[0]);
  if (!snapshot) {
    std::cerr << snapshot.error().to_string() << "\n";
    return 1;
  }
  mrt::write_bgpdump_text(std::cout, *snapshot);
  return 0;
}

int cmd_churn(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  auto before = leasing::load_inferences_csv(args[0]);
  auto after = leasing::load_inferences_csv(args[1]);
  if (!before || !after) {
    std::cerr << (before ? after.error() : before.error()).to_string()
              << "\n";
    return 1;
  }
  auto churn = leasing::diff_inferences(*before, *after);
  std::cout << "new leases:      " << churn.started.size() << "\n";
  std::cout << "ended leases:    " << churn.ended.size() << "\n";
  std::cout << "lessee changed:  " << churn.lessee_changed.size() << "\n";
  std::cout << "stable:          " << churn.stable.size() << "\n";
  std::cout << "churn rate:      " << percent(churn.churn_rate()) << "\n";
  return 0;
}

int cmd_snapshot(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string& verb = args[0];
  if (verb == "write") {
    if (args.size() != 3) return usage();
    auto inferences = leasing::load_inferences_csv(args[1]);
    if (!inferences) {
      std::cerr << inferences.error().to_string() << "\n";
      return 1;
    }
    snapshot::write_snapshot_file(args[2], *inferences);
    std::cout << "wrote " << with_commas(inferences->size())
              << " records to " << args[2] << "\n";
    return 0;
  }
  if (verb == "read") {
    std::optional<std::string> out_path;
    std::vector<std::string> rest;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "-o" && i + 1 < args.size()) {
        out_path = args[++i];
      } else if (!args[i].empty() && args[i][0] == '-') {
        std::cerr << "unknown option " << args[i] << "\n";
        return usage();
      } else {
        rest.push_back(args[i]);
      }
    }
    if (rest.size() != 1) return usage();
    auto snap = snapshot::Snapshot::open(rest[0]);
    if (!snap) {
      std::cerr << snap.error().to_string() << "\n";
      return 1;
    }
    std::vector<leasing::LeaseInference> inferences;
    inferences.reserve(snap->record_count());
    for (std::size_t i = 0; i < snap->record_count(); ++i) {
      inferences.push_back(snap->materialize(i));
    }
    if (out_path) {
      leasing::save_inferences_csv(*out_path, inferences);
      std::cout << "inferences written to " << *out_path << "\n";
    } else {
      leasing::write_inferences_csv(std::cout, inferences);
    }
    return 0;
  }
  if (verb == "verify") {
    if (args.size() != 2) return usage();
    auto snap =
        snapshot::Snapshot::open(args[1], snapshot::Snapshot::Mode::kRead);
    if (!snap) {
      std::cerr << "invalid snapshot: " << snap.error().to_string() << "\n";
      return 1;
    }
    std::cout << "ok: version " << snap->version() << ", "
              << with_commas(snap->record_count()) << " records, "
              << with_commas(snap->string_count()) << " strings, "
              << with_commas(snap->file_bytes()) << " bytes\n";
    return 0;
  }
  std::cerr << "unknown snapshot verb '" << verb << "'\n";
  return usage();
}

int cmd_catalog(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string& verb = args[0];
  if (verb == "build") {
    // Synthesize a catalog from an evolving simnet world: epoch 1 is a
    // full snapshot, later epochs go through the append path (delta or
    // full per the size guard) — the same code a production ingest runs.
    if (args.size() < 2) return usage();
    const std::string& dir = args[1];
    sim::WorldConfig config;
    config.scale = 0.05;
    config.seed = 42;
    sim::EpochSeriesOptions series_options;
    for (std::size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--epochs" && i + 1 < args.size()) {
        auto n = parse_u32(args[++i]);
        if (!n || *n == 0) {
          std::cerr << "--epochs expects a positive integer\n";
          return usage();
        }
        series_options.epochs = *n;
      } else if (args[i] == "--scale" && i + 1 < args.size()) {
        config.scale = std::stod(args[++i]);
      } else if (args[i] == "--seed" && i + 1 < args.size()) {
        config.seed = std::stoull(args[++i]);
      } else if (args[i] == "--start" && i + 1 < args.size()) {
        auto ts = parse_u32(args[++i]);
        if (!ts || *ts == 0) {
          std::cerr << "--start expects a positive unix timestamp\n";
          return usage();
        }
        series_options.start = *ts;
      } else if (args[i] == "--step" && i + 1 < args.size()) {
        auto step = parse_u32(args[++i]);
        if (!step || *step == 0) {
          std::cerr << "--step expects a positive number of seconds\n";
          return usage();
        }
        series_options.step = *step;
      } else {
        std::cerr << "unknown option " << args[i] << "\n";
        return usage();
      }
    }
    sim::EpochSeries series = sim::build_epoch_series(config, series_options);
    for (std::size_t k = 0; k < series.timestamps.size(); ++k) {
      auto entry = k == 0
                       ? catalog::catalog_init(dir, series.timestamps[k],
                                               std::move(series.inferences[k]))
                       : catalog::catalog_append(
                             dir, series.timestamps[k],
                             std::move(series.inferences[k]));
      if (!entry) {
        std::cerr << entry.error().to_string() << "\n";
        return 1;
      }
      std::cout << "epoch " << entry->epoch << ": "
                << (entry->kind == catalog::EpochKind::kFull ? "full" : "delta")
                << ", " << with_commas(entry->records) << " records, "
                << with_commas(entry->bytes) << " bytes (" << entry->name
                << ")\n";
    }
    std::cout << "catalog " << dir << ": " << series.timestamps.size()
              << " epochs\n";
    return 0;
  }
  if (verb == "append") {
    if (args.size() < 3) return usage();
    const std::string& dir = args[1];
    const std::string& csv = args[2];
    std::optional<std::uint32_t> epoch;
    catalog::AppendOptions options;
    for (std::size_t i = 3; i < args.size(); ++i) {
      if (args[i] == "--epoch" && i + 1 < args.size()) {
        epoch = parse_u32(args[++i]);
        if (!epoch || *epoch == 0) {
          std::cerr << "--epoch expects a positive unix timestamp\n";
          return usage();
        }
      } else if (args[i] == "--max-delta-frac" && i + 1 < args.size()) {
        options.max_delta_fraction = std::stod(args[++i]);
      } else if (args[i] == "--full") {
        options.force_full = true;
      } else {
        std::cerr << "unknown option " << args[i] << "\n";
        return usage();
      }
    }
    if (!epoch) {
      std::cerr << "catalog append requires --epoch TS\n";
      return usage();
    }
    auto inferences = leasing::load_inferences_csv(csv);
    if (!inferences) {
      std::cerr << inferences.error().to_string() << "\n";
      return 1;
    }
    auto entry = catalog::read_index(dir)
                     ? catalog::catalog_append(dir, *epoch,
                                               std::move(*inferences), options)
                     : catalog::catalog_init(dir, *epoch,
                                             std::move(*inferences));
    if (!entry) {
      std::cerr << entry.error().to_string() << "\n";
      return 1;
    }
    std::cout << "epoch " << entry->epoch << ": "
              << (entry->kind == catalog::EpochKind::kFull ? "full" : "delta")
              << ", " << with_commas(entry->records) << " records, "
              << with_commas(entry->bytes) << " bytes (" << entry->name
              << ")\n";
    return 0;
  }
  if (verb == "ls") {
    if (args.size() != 2) return usage();
    auto entries = catalog::read_index(args[1]);
    if (!entries) {
      std::cerr << entries.error().to_string() << "\n";
      return 1;
    }
    for (const catalog::EpochEntry& entry : *entries) {
      std::cout << entry.epoch << "  "
                << (entry.kind == catalog::EpochKind::kFull ? "full " : "delta")
                << "  base=" << entry.base_epoch << "  records="
                << entry.records << "  bytes=" << entry.bytes << "  "
                << entry.name << "\n";
    }
    std::cout << entries->size() << " epochs\n";
    return 0;
  }
  if (verb == "verify") {
    if (args.size() < 2) return usage();
    bool deep = false;
    for (std::size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--deep") {
        deep = true;
      } else {
        std::cerr << "unknown option " << args[i] << "\n";
        return usage();
      }
    }
    auto opened = catalog::Catalog::open(args[1]);
    if (!opened) {
      std::cerr << "invalid catalog: " << opened.error().to_string() << "\n";
      return 1;
    }
    auto report = (*opened)->verify(deep);
    for (const auto& check : report.checks) {
      std::cout << check.epoch << "  "
                << (check.ok ? "ok" : "BROKEN: " + check.detail) << "\n";
    }
    if (!report.ok()) {
      std::cerr << report.broken << " of " << report.checks.size()
                << " epochs broken\n";
      return 1;
    }
    std::cout << "ok: " << report.checks.size() << " epochs"
              << (deep ? " (deep)" : "") << "\n";
    return 0;
  }
  std::cerr << "unknown catalog verb '" << verb << "'\n";
  return usage();
}

// Signal handlers may only touch lock-free atomics; the server's wait()
// polls this flag so SIGTERM/SIGINT still dump the final counters.
std::atomic<int> g_signal{0};

extern "C" void sublet_on_signal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
}

int cmd_serve(const std::vector<std::string>& args) {
  serve::QueryServer::Options options;
  std::optional<std::string> port_file;
  std::optional<std::string> catalog_dir;
  bool reload_on_sighup = false;
  std::vector<std::string> rest;
  auto int_flag = [&](std::size_t& i, const char* name,
                      int* out) -> bool {  // consumes the value on success
    auto value = parse_u32(args[++i]);
    if (!value) {
      std::cerr << name << " expects a non-negative integer\n";
      return false;
    }
    *out = static_cast<int>(*value);
    return true;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--port" && i + 1 < args.size()) {
      auto port = parse_u32(args[++i]);
      if (!port || *port > 65535) {
        std::cerr << "--port expects an integer in [0, 65535]\n";
        return usage();
      }
      options.port = static_cast<std::uint16_t>(*port);
    } else if (args[i] == "--port-file" && i + 1 < args.size()) {
      port_file = args[++i];
    } else if (args[i] == "--catalog" && i + 1 < args.size()) {
      catalog_dir = args[++i];
    } else if (args[i] == "--shards" && i + 1 < args.size()) {
      auto shards = parse_u32(args[++i]);
      if (!shards || *shards == 0) {
        std::cerr << "--shards expects a positive integer\n";
        return usage();
      }
      options.shards = *shards;
    } else if (args[i] == "--max-conns" && i + 1 < args.size()) {
      auto cap = parse_u32(args[++i]);
      if (!cap) {
        std::cerr << "--max-conns expects a non-negative integer\n";
        return usage();
      }
      options.max_conns = *cap;
    } else if (args[i] == "--max-outbuf-bytes" && i + 1 < args.size()) {
      auto cap = parse_u64(args[++i]);
      if (!cap || *cap == 0) {
        std::cerr << "--max-outbuf-bytes expects a positive integer\n";
        return usage();
      }
      options.max_outbuf_bytes = *cap;
    } else if (args[i] == "--slow-threshold-us" && i + 1 < args.size()) {
      auto threshold = parse_u64(args[++i]);
      if (!threshold || *threshold == 0) {
        std::cerr << "--slow-threshold-us expects a positive integer\n";
        return usage();
      }
      options.slow_threshold_us = *threshold;
    } else if (args[i] == "--idle-timeout-ms" && i + 1 < args.size()) {
      if (!int_flag(i, "--idle-timeout-ms", &options.idle_timeout_ms)) {
        return usage();
      }
    } else if (args[i] == "--io-timeout-ms" && i + 1 < args.size()) {
      if (!int_flag(i, "--io-timeout-ms", &options.io_timeout_ms)) {
        return usage();
      }
    } else if (args[i] == "--drain-ms" && i + 1 < args.size()) {
      if (!int_flag(i, "--drain-ms", &options.drain_timeout_ms)) {
        return usage();
      }
    } else if (args[i] == "--reload-on-sighup") {
      reload_on_sighup = true;
    } else if (!args[i].empty() && args[i][0] == '-') {
      std::cerr << "unknown option " << args[i] << "\n";
      return usage();
    } else {
      rest.push_back(args[i]);
    }
  }
  if (rest.size() != (catalog_dir ? 0u : 1u)) return usage();
  std::shared_ptr<serve::EpochSource> source;
  std::shared_ptr<const serve::EngineState> initial;
  std::string snapshot_path;
  if (catalog_dir) {
    // Time-travel mode: materialize the latest epoch up front so startup
    // fails loudly on a broken catalog, then serve AT / HISTORY / binary
    // epoch frames through the catalog's LRU (docs/TIMETRAVEL.md).
    auto opened = catalog::Catalog::open(*catalog_dir);
    if (!opened) {
      std::cerr << opened.error().to_string() << "\n";
      return 1;
    }
    source = std::shared_ptr<serve::EpochSource>(std::move(*opened));
    auto latest = source->epoch_at(0);
    if (!latest) {
      std::cerr << latest.error().to_string() << "\n";
      return 1;
    }
    initial = std::move(*latest);
  } else {
    snapshot_path = rest[0];
    auto state = serve::EngineState::load(snapshot_path);
    if (!state) {
      std::cerr << state.error().to_string() << "\n";
      return 1;
    }
    initial = std::move(*state);
  }
  auto server_ptr =
      catalog_dir
          ? std::make_unique<serve::QueryServer>(source, std::move(initial),
                                                 options)
          : std::make_unique<serve::QueryServer>(std::move(initial), options);
  serve::QueryServer& server = *server_ptr;
  auto port = server.start();
  if (!port) {
    std::cerr << port.error().to_string() << "\n";
    return 1;
  }
  if (port_file) {
    std::ofstream out(*port_file);
    if (!out) {
      std::cerr << "cannot write " << *port_file << "\n";
      return 1;
    }
    out << *port << "\n";
  }
  std::cout << "serving "
            << with_commas(server.engine()->snapshot().record_count())
            << " records on 127.0.0.1:" << *port << "\n"
            << std::flush;
  std::signal(SIGTERM, sublet_on_signal);
  std::signal(SIGINT, sublet_on_signal);
  if (reload_on_sighup) std::signal(SIGHUP, sublet_on_signal);
  for (;;) {
    server.wait(
        [] { return g_signal.load(std::memory_order_relaxed) != 0; });
    int sig = g_signal.exchange(0, std::memory_order_relaxed);
    if (sig == SIGHUP && reload_on_sighup && !server.stop_requested()) {
      if (catalog_dir) {
        // Catalog mode: re-scan the index for appended epochs — the text
        // RELOAD verb does exactly that, counters included.
        std::cout << server.handle_request("RELOAD") << "\n" << std::flush;
        continue;
      }
      // Hot reload: re-read the snapshot path we were started with. A
      // failed load logs and keeps the old generation serving.
      auto generation = server.reload(snapshot_path);
      if (generation) {
        std::cout << "reloaded " << snapshot_path << " (generation "
                  << *generation << ")\n"
                  << std::flush;
      } else {
        std::cerr << "reload failed: " << generation.error().to_string()
                  << "\n";
      }
      continue;
    }
    break;
  }
  server.stop();
  std::cout << server.stats().to_json() << "\n";
  return 0;
}

int cmd_query(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  bool lpm = false, stats = false, health = false, shutdown = false;
  bool metrics = false, bin = false, history = false, inspect = false;
  std::optional<std::uint32_t> at_epoch;
  std::optional<std::string> reload_path;
  serve::QueryClient::Timeouts timeouts;
  serve::QueryClient::RetryPolicy retry;
  retry.attempts = 1;
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--lpm") {
      lpm = true;
    } else if (arg == "--bin") {
      bin = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--health") {
      health = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else if (arg == "--inspect") {
      inspect = true;
    } else if (arg == "--history") {
      history = true;
    } else if (arg == "--at") {
      if (i + 1 >= args.size()) {
        std::cerr << "--at expects an epoch timestamp\n";
        return usage();
      }
      at_epoch = parse_u32(args[++i]);
      if (!at_epoch || *at_epoch == 0) {
        std::cerr << "--at expects a positive unix timestamp\n";
        return usage();
      }
    } else if (arg == "--reload") {
      if (i + 1 >= args.size()) {
        std::cerr << "--reload expects a snapshot path\n";
        return usage();
      }
      reload_path = args[++i];
    } else if (arg == "--timeout-ms" && i + 1 < args.size()) {
      auto ms = parse_u32(args[++i]);
      if (!ms) {
        std::cerr << "--timeout-ms expects a non-negative integer\n";
        return usage();
      }
      timeouts.connect_ms = static_cast<int>(*ms);
      timeouts.io_ms = static_cast<int>(*ms);
    } else if (arg == "--retries" && i + 1 < args.size()) {
      auto n = parse_u32(args[++i]);
      if (!n || *n == 0) {
        std::cerr << "--retries expects a positive integer\n";
        return usage();
      }
      retry.attempts = static_cast<int>(*n);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return usage();
    } else {
      rest.push_back(arg);
    }
  }
  if (rest.empty()) return usage();
  std::size_t colon = rest[0].rfind(':');
  std::optional<std::uint32_t> port;
  if (colon != std::string::npos) {
    port = parse_u32(std::string_view(rest[0]).substr(colon + 1));
  }
  if (!port || *port == 0 || *port > 65535) {
    std::cerr << "expected <host:port>, got '" << rest[0] << "'\n";
    return usage();
  }
  std::string host = rest[0].substr(0, colon);
  std::vector<std::string> prefixes(rest.begin() + 1, rest.end());
  if (prefixes.empty() && !stats && !health && !metrics && !reload_path &&
      !shutdown && !inspect) {
    return usage();
  }
  auto port16 = static_cast<std::uint16_t>(*port);
  auto round_trip = [&](const std::string& line) -> bool {
    auto response =
        retry.attempts > 1
            ? serve::QueryClient::request_with_retry(host, port16, line,
                                                     retry, timeouts)
            : [&]() -> Expected<std::string> {
                auto client =
                    serve::QueryClient::connect(host, port16, timeouts);
                if (!client) return client.error();
                return client->request(line);
              }();
    if (!response) {
      std::cerr << response.error().to_string() << "\n";
      return false;
    }
    std::cout << *response << "\n";
    return true;
  };
  if (bin && !prefixes.empty()) {
    // One binary LPM frame carrying every address (serve/wire.h); answers
    // print in argument order as one-line JSON, mirroring the text verbs.
    std::vector<std::uint32_t> addrs;
    addrs.reserve(prefixes.size());
    for (const std::string& text : prefixes) {
      auto addr = Ipv4Addr::parse(text);
      if (!addr) {
        // Accept "a.b.c.d/len" too: a binary LPM looks up the network bits.
        auto prefix = Prefix::parse(text, /*canonicalize=*/true);
        if (!prefix) {
          std::cerr << "bad address '" << text << "'\n";
          return 1;
        }
        addr = prefix->network();
      }
      addrs.push_back(addr->value());
    }
    auto client = serve::QueryClient::connect(host, port16, timeouts);
    if (!client) {
      std::cerr << client.error().to_string() << "\n";
      return 1;
    }
    auto response = client->request_binary_batch(addrs, at_epoch.value_or(0));
    if (!response) {
      std::cerr << response.error().to_string() << "\n";
      return 1;
    }
    if (response->status != 0) {
      std::cerr << "binary frame rejected (status "
                << static_cast<int>(response->status) << ")\n";
      return 1;
    }
    for (std::size_t i = 0; i < response->results.size(); ++i) {
      const serve::BinResult& result = response->results[i];
      std::cout << "{\"addr\":\"" << Ipv4Addr(addrs[i]).to_string() << "\",";
      if (!result.found) {
        std::cout << "\"found\":false}\n";
        continue;
      }
      auto matched = Prefix::make(Ipv4Addr(result.prefix_addr),
                                  result.prefix_len);
      std::cout << "\"found\":true,\"prefix\":\""
                << (matched ? matched->to_string() : "?") << "\",\"group\":\""
                << leasing::group_name(
                       static_cast<leasing::InferenceGroup>(result.group))
                << "\",\"leased\":" << (result.leased ? "true" : "false")
                << "}\n";
    }
    prefixes.clear();
  }
  for (const std::string& prefix : prefixes) {
    std::string line = history ? "HISTORY " + prefix
                               : (lpm ? "LPM " : "EXACT ") + prefix;
    if (at_epoch && !history) line += " AT " + std::to_string(*at_epoch);
    if (!round_trip(line)) return 1;
  }
  if (reload_path && !round_trip("RELOAD " + *reload_path)) return 1;
  if (health && !round_trip("HEALTH")) return 1;
  if (stats && !round_trip("STATS")) return 1;
  if (inspect && !round_trip("INSPECT")) return 1;
  if (metrics) {
    // METRICS is the one multi-line verb: read until the "# EOF" line.
    auto client = serve::QueryClient::connect(host, port16, timeouts);
    if (!client) {
      std::cerr << client.error().to_string() << "\n";
      return 1;
    }
    auto body = client->request_multiline("METRICS");
    if (!body) {
      std::cerr << body.error().to_string() << "\n";
      return 1;
    }
    std::cout << *body;
  }
  if (shutdown && !round_trip("SHUTDOWN")) return 1;
  return 0;
}

int cmd_load(const std::vector<std::string>& args) {
  loadgen::LoadOptions options;
  auto f64_flag = [&](std::size_t& i, const char* name,
                      double* out) -> bool {
    char* end = nullptr;
    const std::string& text = args[++i];
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || value < 0.0) {
      std::cerr << name << " expects a non-negative number\n";
      return false;
    }
    *out = value;
    return true;
  };
  auto u64_flag = [&](std::size_t& i, const char* name,
                      std::uint64_t* out) -> bool {
    auto value = parse_u64(args[++i]);
    if (!value) {
      std::cerr << name << " expects a non-negative integer\n";
      return false;
    }
    *out = *value;
    return true;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::uint64_t u = 0;
    if (args[i] == "--seed" && i + 1 < args.size()) {
      if (!u64_flag(i, "--seed", &options.seed)) return usage();
    } else if (args[i] == "--workers" && i + 1 < args.size()) {
      if (!u64_flag(i, "--workers", &u) || u == 0) return usage();
      options.workers = static_cast<unsigned>(u);
    } else if (args[i] == "--duration-ms" && i + 1 < args.size()) {
      if (!u64_flag(i, "--duration-ms", &options.duration_ms)) {
        return usage();
      }
    } else if (args[i] == "--qps" && i + 1 < args.size()) {
      if (!f64_flag(i, "--qps", &options.qps)) return usage();
    } else if (args[i] == "--zipf-alpha" && i + 1 < args.size()) {
      if (!f64_flag(i, "--zipf-alpha", &options.zipf_alpha)) return usage();
    } else if (args[i] == "--scenario" && i + 1 < args.size()) {
      options.scenario = args[++i];
    } else if (args[i] == "--world-scale" && i + 1 < args.size()) {
      if (!f64_flag(i, "--world-scale", &options.world.scale)) {
        return usage();
      }
    } else if (args[i] == "--world-seed" && i + 1 < args.size()) {
      if (!u64_flag(i, "--world-seed", &options.world.seed)) return usage();
    } else if (args[i] == "--world-epochs" && i + 1 < args.size()) {
      if (!u64_flag(i, "--world-epochs", &u) || u == 0) return usage();
      options.world.epochs = u;
    } else if (args[i] == "--world-pending" && i + 1 < args.size()) {
      if (!u64_flag(i, "--world-pending", &u)) return usage();
      options.world.pending = u;
    } else if (args[i] == "--catalog" && i + 1 < args.size()) {
      options.catalog_dir = args[++i];
    } else if (args[i] == "--shards" && i + 1 < args.size()) {
      if (!u64_flag(i, "--shards", &u)) return usage();
      options.shards = static_cast<unsigned>(u);
    } else if (args[i] == "--batch" && i + 1 < args.size()) {
      if (!u64_flag(i, "--batch", &u) || u == 0 || u > 65536) {
        return usage();
      }
      options.batch_size = u;
    } else if (args[i] == "--depth" && i + 1 < args.size()) {
      if (!u64_flag(i, "--depth", &u) || u == 0) return usage();
      options.pipeline_depth = u;
    } else if (args[i] == "--p99-us" && i + 1 < args.size()) {
      if (!f64_flag(i, "--p99-us", &options.p99_bound_us)) return usage();
    } else if (args[i] == "--heavy-p99-us" && i + 1 < args.size()) {
      if (!f64_flag(i, "--heavy-p99-us", &options.heavy_p99_bound_us)) {
        return usage();
      }
    } else if (args[i] == "--spot-every" && i + 1 < args.size()) {
      if (!u64_flag(i, "--spot-every", &u)) return usage();
      options.spot_check_every = static_cast<std::uint32_t>(u);
    } else if (args[i] == "--max-outbuf-bytes" && i + 1 < args.size()) {
      if (!u64_flag(i, "--max-outbuf-bytes", &u) || u == 0) return usage();
      options.max_outbuf_bytes = u;
    } else if (args[i] == "--report" && i + 1 < args.size()) {
      options.report_path = args[++i];
    } else if (args[i] == "--run-dir" && i + 1 < args.size()) {
      options.run_dir = args[++i];
    } else if (args[i] == "--keep-run-dir") {
      options.keep_run_dir = true;
    } else if (args[i] == "--fork-server") {
      options.server_argv = {"/proc/self/exe", "serve"};
    } else {
      std::cerr << "unknown option " << args[i] << "\n";
      return usage();
    }
  }
  auto report = loadgen::run_load(options);
  if (!report) {
    std::cerr << report.error().to_string() << "\n";
    return 1;
  }
  std::cout << report->to_json() << "\n" << std::flush;
  // The exit code IS the SLO verdict — CI gates on it directly.
  return report->slo.pass ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  // Global flags: accepted anywhere, consumed before dispatch.
  std::vector<std::string> all(argv + 1, argv + argc);
  std::optional<std::string> trace_path;
  for (std::size_t i = 0; i < all.size();) {
    std::optional<std::uint32_t> threads;
    if (all[i] == "--threads" && i + 1 < all.size()) {
      threads = parse_u32(all[i + 1]);
      if (!threads || *threads == 0) {
        std::cerr << "--threads expects a positive integer\n";
        return 2;
      }
      all.erase(all.begin() + static_cast<std::ptrdiff_t>(i),
                all.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (all[i].rfind("--threads=", 0) == 0) {
      threads = parse_u32(std::string_view(all[i]).substr(10));
      if (!threads || *threads == 0) {
        std::cerr << "--threads expects a positive integer\n";
        return 2;
      }
      all.erase(all.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (all[i] == "--trace-json" && i + 1 < all.size()) {
      trace_path = all[i + 1];
      all.erase(all.begin() + static_cast<std::ptrdiff_t>(i),
                all.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      continue;
    } else if (all[i].rfind("--trace-json=", 0) == 0) {
      trace_path = all[i].substr(13);
      all.erase(all.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    } else if (all[i] == "--log-json") {
      set_log_format(LogFormat::kJson);
      all.erase(all.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    } else {
      ++i;
      continue;
    }
    par::set_default_threads(*threads);
  }
  if (trace_path && trace_path->empty()) {
    std::cerr << "--trace-json expects a file path\n";
    return 2;
  }
  if (trace_path) obs::Tracer::global().set_enabled(true);
  if (all.empty()) return usage();
  std::string command = all[0];
  std::vector<std::string> args(all.begin() + 1, all.end());
  int rc = -1;
  try {
    if (command == "generate") rc = cmd_generate(args);
    else if (command == "infer") rc = cmd_infer(args);
    else if (command == "explain") rc = cmd_explain(args);
    else if (command == "evaluate") rc = cmd_evaluate(args);
    else if (command == "abuse") rc = cmd_abuse(args);
    else if (command == "timeline") rc = cmd_timeline(args);
    else if (command == "churn") rc = cmd_churn(args);
    else if (command == "report") rc = cmd_report(args);
    else if (command == "dump") rc = cmd_dump(args);
    else if (command == "snapshot") rc = cmd_snapshot(args);
    else if (command == "catalog") rc = cmd_catalog(args);
    else if (command == "serve") rc = cmd_serve(args);
    else if (command == "query") rc = cmd_query(args);
    else if (command == "top") rc = cli::cmd_top(args);
    else if (command == "load") rc = cmd_load(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    rc = 1;
  }
  if (rc == -1) return usage();
  // Spans are flushed even when the command failed — a trace of the run up
  // to the failure is exactly what the flag is for.
  if (trace_path &&
      !obs::Tracer::global().write_chrome_trace(*trace_path)) {
    std::cerr << "warning: could not write trace to " << *trace_path << "\n";
  }
  return rc;
}
