// `sublet top` — refresh-loop dashboard over a running query server
// (docs/OBSERVABILITY.md). Split out of sublet_cli.cc: the dashboard is
// the only part of the CLI that parses METRICS/INSPECT responses back.
#pragma once

#include <string>
#include <vector>

namespace sublet::cli {

/// `sublet top <host:port> [--interval-ms N] [--count N] [--once]`.
/// Polls METRICS + INSPECT, renders per-verb QPS/p50/p99, per-shard
/// connection and park counts, and the slow-request table. --once prints
/// one plain (no ANSI) sample and exits — the scriptable form.
int cmd_top(const std::vector<std::string>& args);

}  // namespace sublet::cli
