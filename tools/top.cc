// `sublet top`: a small text dashboard over the wire protocol. Each
// refresh opens one connection and issues METRICS (Prometheus text) plus
// INSPECT (per-shard JSON), then renders:
//
//   - per-verb request totals, windowed QPS, and windowed p50/p99 derived
//     from the latency histogram's le-bucket deltas between refreshes
//     (the first sample, and --once, fall back to lifetime quantiles);
//   - per-shard live-connection/parked/timer/work-queue counts from the
//     INSPECT connection table;
//   - the slowest recorded requests across all shards, with the
//     read/parse/engine/write stage breakdown and request text.
//
// Everything is computed client-side from public verbs — `sublet top`
// needs no more server support than a curl loop would.
#include "top.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "util/jsonr.h"
#include "util/strings.h"

namespace sublet::cli {

namespace {

constexpr const char* kVerbs[] = {"exact", "lpm",     "mlpm", "bin",
                                 "at",    "history", "other"};

struct MetricsSample {
  std::map<std::string, double, std::less<>> series;
  std::chrono::steady_clock::time_point taken{};
};

MetricsSample parse_metrics(std::string_view text) {
  MetricsSample out;
  out.taken = std::chrono::steady_clock::now();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string_view::npos) continue;
    const std::string value_text(line.substr(sp + 1));
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str()) continue;
    out.series.emplace(std::string(line.substr(0, sp)), value);
  }
  return out;
}

double series_value(const MetricsSample& sample, std::string_view name) {
  auto it = sample.series.find(name);
  return it == sample.series.end() ? 0.0 : it->second;
}

/// Cumulative latency buckets for one verb: (le, cumulative count),
/// ascending by bound. The "+Inf" bucket is included with le = -1.
std::vector<std::pair<double, double>> verb_buckets(
    const MetricsSample& sample, std::string_view verb) {
  std::vector<std::pair<double, double>> out;
  const std::string prefix = "sublet_serve_latency_ns_bucket{verb=\"" +
                             std::string(verb) + "\",le=\"";
  for (auto it = sample.series.lower_bound(prefix);
       it != sample.series.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    std::string_view le_text(it->first);
    le_text.remove_prefix(prefix.size());
    le_text.remove_suffix(2);  // trailing '"}'
    if (le_text == "+Inf") {
      out.emplace_back(-1.0, it->second);
      continue;
    }
    const std::string le(le_text);
    out.emplace_back(std::strtod(le.c_str(), nullptr), it->second);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.first < 0) return false;  // +Inf last
    if (b.first < 0) return true;
    return a.first < b.first;
  });
  return out;
}

/// Quantile over per-bucket counts using the server's own estimate rule:
/// bucket 0 (le=0) reports 0, bucket b reports 0.75*(le+1) = 1.5*2^(b-1).
double bucket_quantile(const std::vector<std::pair<double, double>>& counts,
                       double q) {
  double total = 0;
  for (const auto& [le, n] : counts) total += n;
  if (total <= 0) return 0.0;
  double target = q * total;
  if (target >= total) target = total - 1;
  double seen = 0;
  double last_le = 0;
  for (const auto& [le, n] : counts) {
    seen += n;
    if (seen > target) {
      if (le < 0) return 1.5 * (last_le + 1);  // +Inf: past the top bucket
      if (le <= 0) return 0.0;
      return 0.75 * (le + 1);
    }
    if (le > 0) last_le = le;
  }
  return 0.0;
}

/// Windowed per-bucket counts: current minus previous cumulative (counter
/// resets — a restarted server — fall back to the current totals).
std::vector<std::pair<double, double>> window_buckets(
    const std::vector<std::pair<double, double>>& now,
    const std::vector<std::pair<double, double>>* prev) {
  // Cumulative-over-le to per-bucket first.
  auto to_counts = [](const std::vector<std::pair<double, double>>& cum) {
    std::vector<std::pair<double, double>> counts;
    counts.reserve(cum.size());
    double before = 0;
    for (const auto& [le, c] : cum) {
      counts.emplace_back(le, c - before);
      before = c;
    }
    return counts;
  };
  std::vector<std::pair<double, double>> counts = to_counts(now);
  if (prev == nullptr) return counts;
  const std::vector<std::pair<double, double>> old = to_counts(*prev);
  std::size_t j = 0;
  for (auto& [le, n] : counts) {
    while (j < old.size() && old[j].first >= 0 && le >= 0 &&
           old[j].first < le) {
      ++j;
    }
    if (j < old.size() && old[j].first == le) {
      n -= old[j].second;
      if (n < 0) return to_counts(now);  // counter reset
      ++j;
    }
  }
  return counts;
}

std::string fixed1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

void render(const std::string& target, const MetricsSample& now,
            const MetricsSample* prev, const JsonValue& inspect,
            bool ansi) {
  std::string out;
  if (ansi) out += "\x1b[H\x1b[2J";  // home + clear
  const double dt =
      prev == nullptr
          ? 0.0
          : std::chrono::duration_cast<std::chrono::duration<double>>(
                now.taken - prev->taken)
                .count();

  out += "sublet top — " + target;
  out += "  gen=" + std::to_string(inspect["generation"].as_u64());
  out += "  shards=" + std::to_string(inspect["shard_count"].as_u64());
  out += "  conns=" + std::to_string(inspect["active_conns"].as_u64());
  const JsonValue& recorder = inspect["recorder"];
  out += "  recorder=";
  out += recorder["enabled"].as_bool() ? "on" : "off";
  out += "\n\n";

  // ---- per-verb table ----
  out += "  verb     requests        qps    p50_us     p99_us\n";
  for (const char* verb : kVerbs) {
    const std::string count_key =
        "sublet_serve_latency_ns_count{verb=\"" + std::string(verb) + "\"}";
    const double count = series_value(now, count_key);
    if (count <= 0) continue;
    const double qps =
        (prev != nullptr && dt > 0)
            ? (count - series_value(*prev, count_key)) / dt
            : 0.0;
    const std::vector<std::pair<double, double>> cum = verb_buckets(now, verb);
    std::vector<std::pair<double, double>> prev_cum;
    if (prev != nullptr) prev_cum = verb_buckets(*prev, verb);
    std::vector<std::pair<double, double>> counts = window_buckets(
        cum, prev != nullptr && !prev_cum.empty() ? &prev_cum : nullptr);
    double window_total = 0;
    for (const auto& [le, n] : counts) window_total += n;
    // An idle window has nothing to rank: show the lifetime quantiles.
    if (window_total <= 0) counts = window_buckets(cum, nullptr);
    char row[128];
    std::snprintf(row, sizeof(row), "  %-7s %9.0f %10.1f %9.1f %10.1f\n",
                  verb, count, qps, bucket_quantile(counts, 0.50) / 1000.0,
                  bucket_quantile(counts, 0.99) / 1000.0);
    out += row;
  }

  // ---- close reasons (labeled counter family) ----
  {
    std::string closes;
    const std::string prefix = "sublet_serve_conn_closed_total{reason=\"";
    for (auto it = now.series.lower_bound(prefix); it != now.series.end();
         ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      if (it->second <= 0) continue;
      std::string_view reason(it->first);
      reason.remove_prefix(prefix.size());
      reason.remove_suffix(2);
      if (!closes.empty()) closes += "  ";
      closes += std::string(reason) + "=" +
                std::to_string(static_cast<std::uint64_t>(it->second));
    }
    if (!closes.empty()) out += "\n  closed: " + closes + "\n";
  }

  // ---- per-shard table ----
  out += "\n  shard   conns  parked  closing  idle_t  write_t  work  "
         "recorded\n";
  for (const JsonValue& shard : inspect["shards"].items()) {
    std::uint64_t parked = 0;
    std::uint64_t closing = 0;
    for (const JsonValue& conn : shard["connections"].items()) {
      if (conn["parked"].as_bool()) ++parked;
      if (conn["closing"].as_bool()) ++closing;
    }
    char row[160];
    std::snprintf(row, sizeof(row),
                  "  %-5llu %7zu %7llu %8llu %7llu %8llu %5llu %9llu%s\n",
                  static_cast<unsigned long long>(shard["shard"].as_u64()),
                  shard["connections"].size(),
                  static_cast<unsigned long long>(parked),
                  static_cast<unsigned long long>(closing),
                  static_cast<unsigned long long>(
                      shard["timers"]["idle"].as_u64()),
                  static_cast<unsigned long long>(
                      shard["timers"]["write"].as_u64()),
                  static_cast<unsigned long long>(
                      shard["work_queue"].as_u64()),
                  static_cast<unsigned long long>(
                      shard["recorded"].as_u64()),
                  shard["stale"].as_bool() ? "  (stale)" : "");
    out += row;
  }

  // ---- slow-request table (merged across shards, worst first) ----
  struct SlowRow {
    std::uint64_t shard = 0;
    const JsonValue* record = nullptr;
  };
  std::vector<SlowRow> slow;
  for (const JsonValue& shard : inspect["shards"].items()) {
    for (const JsonValue& record : shard["slow_requests"].items()) {
      slow.push_back({shard["shard"].as_u64(), &record});
    }
  }
  std::sort(slow.begin(), slow.end(), [](const SlowRow& a, const SlowRow& b) {
    return (*a.record)["total_us"].as_double() >
           (*b.record)["total_us"].as_double();
  });
  if (!slow.empty()) {
    out += "\n  slowest requests (total_us = read+parse+engine+write):\n";
    out += "  shard  verb     total_us    read   parse  engine   write  "
           "detail\n";
    const std::size_t limit = std::min<std::size_t>(slow.size(), 10);
    for (std::size_t i = 0; i < limit; ++i) {
      const JsonValue& r = *slow[i].record;
      std::string detail = r["detail"].as_string();
      if (detail.size() > 40) detail = detail.substr(0, 37) + "...";
      char row[256];
      std::snprintf(row, sizeof(row),
                    "  %-6llu %-8s %8s %7s %7s %7s %7s  %s\n",
                    static_cast<unsigned long long>(slow[i].shard),
                    r["verb"].as_string().c_str(),
                    fixed1(r["total_us"].as_double()).c_str(),
                    fixed1(r["read_us"].as_double()).c_str(),
                    fixed1(r["parse_us"].as_double()).c_str(),
                    fixed1(r["engine_us"].as_double()).c_str(),
                    fixed1(r["write_us"].as_double()).c_str(),
                    detail.c_str());
      out += row;
    }
  }
  std::cout << out << std::flush;
}

int top_usage() {
  std::cerr
      << "usage: sublet top <host:port> [--interval-ms N] [--count N] "
         "[--once]\n"
         "  polls METRICS + INSPECT and renders per-verb QPS/p50/p99,\n"
         "  per-shard connection/park counts, and the slow-request table\n"
         "  (docs/OBSERVABILITY.md). --once prints one plain sample and\n"
         "  exits; --count N stops after N refreshes.\n";
  return 2;
}

}  // namespace

int cmd_top(const std::vector<std::string>& args) {
  std::uint32_t interval_ms = 1000;
  std::uint64_t count = 0;  // 0 = until interrupted
  bool once = false;
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--interval-ms" && i + 1 < args.size()) {
      auto value = parse_u32(args[++i]);
      if (!value || *value == 0) {
        std::cerr << "--interval-ms expects a positive integer\n";
        return top_usage();
      }
      interval_ms = *value;
    } else if (args[i] == "--count" && i + 1 < args.size()) {
      auto value = parse_u64(args[++i]);
      if (!value || *value == 0) {
        std::cerr << "--count expects a positive integer\n";
        return top_usage();
      }
      count = *value;
    } else if (args[i] == "--once") {
      once = true;
    } else if (!args[i].empty() && args[i][0] == '-') {
      std::cerr << "unknown option " << args[i] << "\n";
      return top_usage();
    } else {
      rest.push_back(args[i]);
    }
  }
  if (rest.size() != 1) return top_usage();
  const std::size_t colon = rest[0].rfind(':');
  std::optional<std::uint32_t> port;
  if (colon != std::string::npos) {
    port = parse_u32(std::string_view(rest[0]).substr(colon + 1));
  }
  if (!port || *port == 0 || *port > 65535) {
    std::cerr << "expected <host:port>, got '" << rest[0] << "'\n";
    return top_usage();
  }
  const std::string host = rest[0].substr(0, colon);
  const auto port16 = static_cast<std::uint16_t>(*port);
  if (once) count = 1;

  std::optional<MetricsSample> prev;
  for (std::uint64_t tick = 0; count == 0 || tick < count; ++tick) {
    if (tick > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    auto client = serve::QueryClient::connect(host, port16);
    if (!client) {
      std::cerr << client.error().to_string() << "\n";
      return 1;
    }
    auto metrics_body = client->request_multiline("METRICS");
    if (!metrics_body) {
      std::cerr << metrics_body.error().to_string() << "\n";
      return 1;
    }
    auto inspect_body = client->request("INSPECT");
    if (!inspect_body) {
      std::cerr << inspect_body.error().to_string() << "\n";
      return 1;
    }
    auto inspect = JsonValue::parse(*inspect_body);
    if (!inspect) {
      std::cerr << "INSPECT: " << inspect.error().to_string() << "\n";
      return 1;
    }
    MetricsSample sample = parse_metrics(*metrics_body);
    render(rest[0], sample, prev ? &*prev : nullptr, *inspect, !once);
    prev = std::move(sample);
  }
  return 0;
}

}  // namespace sublet::cli
